"""Setup shim for environments whose setuptools lacks PEP 517 wheels.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines.
"""

from setuptools import setup

setup()
