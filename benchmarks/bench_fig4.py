"""Figure 4 — quality vs data redundancy, decision-making datasets.

Protocol (paper §6.3.1): for each redundancy r, randomly keep r answers
per task, run all 14 decision-making methods, average over repeats.

Paper reference shape: quality climbs steeply with the first few
answers per task (D_PosSent gains ~20 accuracy points between r=1 and
r=10) and then saturates; confusion-matrix methods separate from the
rest on D_Product's F1 axis.
"""

from repro.experiments.charts import ascii_chart
from repro.experiments.redundancy import sweep_redundancy
from repro.experiments.reporting import format_series

from .conftest import save_report

#: Sampled redundancy grid for D_PosSent (the paper plots every r in
#: [1, 20]; the curve shape is fully visible on this grid).
POSSENT_GRID = (1, 2, 3, 5, 10, 15, 20)
N_REPEATS = 3


def test_figure4_d_product(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")
    sweep = benchmark.pedantic(
        lambda: sweep_redundancy(dataset, redundancies=(1, 2, 3),
                                 n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("r", sweep.redundancies, sweep.series_for("accuracy"),
                      title="Figure 4(a) D_Product: Accuracy vs redundancy"),
        format_series("r", sweep.redundancies, sweep.series_for("f1"),
                      title="Figure 4(b) D_Product: F1 vs redundancy"),
    ]
    save_report("figure4_d_product", "\n\n".join(sections))

    f1 = sweep.series_for("f1")
    # Quality increases with r for the leading methods.
    assert f1["D&S"][-1] > f1["D&S"][0]
    # Confusion-matrix methods lead MV on F1 at full redundancy.
    assert max(f1["D&S"][-1], f1["LFC"][-1], f1["BCC"][-1]) > f1["MV"][-1]


def test_figure4_d_possent(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_PosSent")
    sweep = benchmark.pedantic(
        lambda: sweep_redundancy(dataset, redundancies=POSSENT_GRID,
                                 n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("r", sweep.redundancies, sweep.series_for("accuracy"),
                      title="Figure 4(c) D_PosSent: Accuracy vs redundancy"),
        ascii_chart(sweep.redundancies,
                    {name: sweep.series_for("accuracy")[name]
                     for name in ("MV", "D&S", "Minimax")},
                    title="Figure 4(c) rendered (steep rise, saturation):",
                    y_label="accuracy"),
        format_series("r", sweep.redundancies, sweep.series_for("f1"),
                      title="Figure 4(d) D_PosSent: F1 vs redundancy"),
    ]
    save_report("figure4_d_possent", "\n\n".join(sections))

    acc = sweep.series_for("accuracy")["MV"]
    # Steep early gain, then saturation (paper: +20 points by r=10,
    # minor change afterwards).
    assert acc[4] - acc[0] > 0.08          # r=1 -> r=10 climbs
    assert abs(acc[-1] - acc[4]) < 0.03    # r=10 -> r=20 flat
