"""Fault-recovery latency, degrade parity and unarmed-hook overhead.

The measured claims (PR 10 acceptance) on a synthetic decision-making
stream at 4 shards:

* **Recovery is invisible in the numbers** — a worker SIGKILLed
  mid-E-step (a scripted ``kill`` trigger on the third ``e_block``
  dispatch) costs at least one pool respawn, and the recovered fit is
  **bit-identical** to the uninterrupted one.  The extra wall time is
  the recovery latency, reported in ``BENCH_faults.json``.
* **Degradation stays exact** — with the retry budget exhausted
  (``kill`` every dispatch, one retry), the orphaned shards fall back
  to the master's serial spec path and the posterior still matches the
  clean fit to 1e-6 (deterministic phases make it bit-identical; the
  tolerance covers the sampling family's contract).
* **Unarmed hooks are free** — deadline-bounded future waits plus the
  per-dispatch plan check (the whole fault plane when nothing is
  armed) cost **< 2%** against a fit with the deadline disabled,
  min-of-N on alternating warm refits.

Run ``python -m benchmarks.bench_faults`` for the full size,
``--smoke`` for the CI-sized variant; the pytest entry point runs the
smoke size through the shared report fixture.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.policy import FaultPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.runtime import ShardRuntime
from repro.experiments.reporting import format_table
from repro.faults import FaultPlan

from .conftest import save_json, save_report

FULL_ANSWERS = 120_000
SMOKE_ANSWERS = 20_000
N_SHARDS = 4
MAX_WORKERS = 2
MAX_ITER = 25
OVERHEAD_ROUNDS = 5
OVERHEAD_LIMIT = 0.02
DEGRADE_TOLERANCE = 1e-6


def synthetic_answers(n_answers: int, seed: int = 0) -> AnswerSet:
    rng = np.random.default_rng(seed)
    n_tasks = max(1, n_answers // 8)
    n_workers = max(8, n_tasks // 300)
    truth = rng.integers(0, 2, n_tasks)
    accuracy = rng.beta(6.0, 2.0, n_workers)
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < accuracy[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


def timed_fit(answers, plan=None, policy=None, method: str = "D&S"):
    """One fit on a private runtime; returns (result, events, seconds)."""
    spec = MethodSpec(method, seed=0, max_iter=MAX_ITER)
    with ShardRuntime(n_shards=N_SHARDS,
                      max_workers=MAX_WORKERS) as runtime:
        t0 = time.perf_counter()
        with runtime.lease(answers, spec, fault_policy=policy,
                           faults=plan) as lease:
            result = create(spec).fit(answers, shard_runner=lease)
            events = dict(lease.fault_events)
        return result, events, time.perf_counter() - t0


def unarmed_overhead(answers) -> tuple[float, float, float]:
    """Min-of-N alternating warm refits: hooks on (default policy,
    deadline-bounded waits) vs hooks off (no deadline).  Returns
    (armed_s, bare_s, overhead fraction)."""
    spec = MethodSpec("D&S", seed=0, max_iter=MAX_ITER)
    armed, bare = [], []
    with ShardRuntime(n_shards=N_SHARDS,
                      max_workers=MAX_WORKERS) as runtime:
        for _ in range(OVERHEAD_ROUNDS):
            for policy, bucket in ((FaultPolicy(), armed),
                                   (FaultPolicy(deadline=None), bare)):
                t0 = time.perf_counter()
                with runtime.lease(answers, spec,
                                   stream_key="bench-faults",
                                   fault_policy=policy) as lease:
                    create(spec).fit(answers, shard_runner=lease)
                bucket.append(time.perf_counter() - t0)
    armed_s, bare_s = min(armed), min(bare)
    return armed_s, bare_s, armed_s / max(bare_s, 1e-9) - 1.0


def run_benchmark(n_answers: int):
    answers = synthetic_answers(n_answers)

    clean, clean_events, clean_s = timed_fit(answers)
    assert not any(clean_events.values())

    kill_plan = FaultPlan.parse("kill:phase=e_block,on=3")
    killed, kill_events, killed_s = timed_fit(
        answers, plan=kill_plan, policy=FaultPolicy(deadline=60.0))
    kill_identical = bool(np.array_equal(clean.posterior,
                                         killed.posterior))
    recovery_s = max(0.0, killed_s - clean_s)

    degrade_plan = FaultPlan.parse("kill:shard=1,count=999")
    degraded, degrade_events, degraded_s = timed_fit(
        answers, plan=degrade_plan,
        policy=FaultPolicy(deadline=60.0, retries=1))
    degrade_diff = float(
        np.abs(clean.posterior - degraded.posterior).max())

    armed_s, bare_s, overhead = unarmed_overhead(answers)

    rows = [
        ["clean", f"{clean_s * 1000:.0f}ms", "-", "-", "-", "-"],
        ["kill mid-E-step", f"{killed_s * 1000:.0f}ms",
         str(kill_events["respawns"]), str(kill_events["retries"]),
         "0", "bit-identical" if kill_identical else "DIVERGED"],
        ["degrade (budget spent)", f"{degraded_s * 1000:.0f}ms",
         str(degrade_events["respawns"]), str(degrade_events["retries"]),
         str(degrade_events["degraded"]), f"{degrade_diff:.1e}"],
    ]
    title = (
        f"Fault recovery — D&S, {N_SHARDS} shards, "
        f"{os.cpu_count() or 1} cpu(s), {answers.n_answers:,} answers | "
        f"recovery latency {recovery_s * 1000:.0f}ms | unarmed hooks "
        f"{armed_s * 1000:.0f}ms vs {bare_s * 1000:.0f}ms bare "
        f"({overhead:+.1%})"
    )
    report = format_table(
        ["scenario", "wall", "respawns", "retries", "degraded",
         "max |dposterior|"],
        rows, title=title)
    checks = {
        "kill_respawns": kill_events["respawns"],
        "kill_identical": kill_identical,
        "degraded_phases": degrade_events["degraded"],
        "degrade_diff": degrade_diff,
        "overhead": overhead,
    }
    payload = {
        "n_answers": answers.n_answers,
        "n_shards": N_SHARDS,
        "clean_s": clean_s,
        "killed_s": killed_s,
        "degraded_s": degraded_s,
        "recovery_latency_s": recovery_s,
        "armed_s": armed_s,
        "bare_s": bare_s,
        **checks,
    }
    return report, checks, payload


def enforce(checks: dict) -> None:
    assert checks["kill_respawns"] >= 1, (
        "the scripted mid-E-step kill never triggered a pool respawn"
    )
    assert checks["kill_identical"], (
        "the recovered fit diverged from the uninterrupted one"
    )
    assert checks["degraded_phases"] >= 1, (
        "exhausting the retry budget never degraded a phase"
    )
    assert checks["degrade_diff"] <= DEGRADE_TOLERANCE, (
        f"degraded posterior diverged: max diff "
        f"{checks['degrade_diff']:.2e} > {DEGRADE_TOLERANCE}"
    )
    assert checks["overhead"] < OVERHEAD_LIMIT, (
        f"unarmed fault hooks cost {checks['overhead']:.1%}; "
        f"the budget is {OVERHEAD_LIMIT:.0%}"
    )


def test_fault_recovery(benchmark):
    """CI entry point: smoke size through the report fixture."""
    report, checks, payload = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_ANSWERS), rounds=1, iterations=1)
    save_report("fault_recovery", report)
    save_json("faults", payload)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load ({SMOKE_ANSWERS:,} answers) "
                             f"for CI smoke runs")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"answer count (default {FULL_ANSWERS:,})")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_faults.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    n = args.answers or (SMOKE_ANSWERS if args.smoke else FULL_ANSWERS)
    report, checks, payload = run_benchmark(n)
    save_report("fault_recovery", report)
    save_json("faults", payload, args.json_path)
    enforce(checks)
    print("all fault-recovery checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
