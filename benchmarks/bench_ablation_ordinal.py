"""Ablation — ordinal parameter tying in minimax entropy (Ext-4).

Compares plain Minimax (l² free multipliers per worker) against the
ordinal extension Minimax-Ord (4(l−1) split-tied multipliers) on S_Rel,
whose relevance grades are genuinely ordinal, and on a synthetic
strictly-adjacent-error workload where the ordinal inductive bias is
exactly right.
"""

import numpy as np

from repro.core import create
from repro.core.answers import AnswerSet
from repro.core.tasktypes import TaskType
from repro.experiments.reporting import format_table
from repro.metrics import accuracy

from .conftest import save_report


def _adjacent_error_workload(seed=0, n_tasks=800, n_choices=4):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, n_choices, size=n_tasks)
    tasks, workers, values = [], [], []
    error_rates = rng.uniform(0.2, 0.55, size=16)
    for task in range(n_tasks):
        for worker in rng.choice(16, size=5, replace=False):
            answer = truth[task]
            if rng.random() < error_rates[worker]:
                step = rng.choice([-1, 1])
                answer = int(np.clip(answer + step, 0, n_choices - 1))
            tasks.append(task)
            workers.append(int(worker))
            values.append(int(answer))
    answers = AnswerSet(tasks, workers, values, TaskType.SINGLE_CHOICE,
                        n_choices=n_choices, n_tasks=n_tasks, n_workers=16)
    return answers, truth


def test_ablation_ordinal_minimax(benchmark, sweep_dataset):
    s_rel = sweep_dataset("S_Rel")
    synth_answers, synth_truth = _adjacent_error_workload()

    def run():
        rows = []
        for name in ("Minimax", "Minimax-Ord"):
            synth = create(name, seed=0, max_iter=10).fit(synth_answers)
            rel = create(name, seed=0, max_iter=10).fit(s_rel.answers)
            rows.append([
                name,
                round(accuracy(synth_truth, synth.truths), 4),
                round(s_rel.score(rel)["accuracy"], 4),
                round(synth.elapsed_seconds + rel.elapsed_seconds, 2),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_ordinal", format_table(
        ["method", "synthetic ordinal acc", "S_Rel acc", "seconds"],
        rows,
        title="Ablation Ext-4: ordinal parameter tying in minimax"))

    by_method = {row[0]: row for row in rows}
    # The tied model must stay competitive where its bias is exact.
    assert by_method["Minimax-Ord"][1] > by_method["Minimax"][1] - 0.05
