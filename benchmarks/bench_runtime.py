"""Persistent shard runtime vs per-fit process runners on a grown stream.

The measured claim (PR 3 acceptance): on a stream of refits at 8
shards, the persistent :class:`~repro.engine.runtime.ShardRuntime`
cuts the **non-EM overhead per refit** — process-pool spawn, shared
-memory allocation and answer placement, teardown — by **>= 5x**
against the per-fit :class:`~repro.engine.sharded.ProcessShardRunner`
path, while producing posteriors that match the per-fit path to 1e-10.

Protocol: one synthetic decision-making stream grows ~3% per step.
Each step is refit twice —

* **per-fit** — construct a fresh ``ProcessShardRunner`` (which spawns
  the pinned single-worker pools *eagerly* and copies the task-sorted
  arrays into fresh ``/dev/shm`` segments), fit, tear it down;
* **warm** — lease the one persistent runtime (``stream_key`` pinned),
  which reuses the warm pools and *appends* only the new answer tail
  to the placed segments.

Overhead is the lifecycle time around the fit (construct/lease +
close), EM time is the fit call itself; both are reported per refit.

Run ``python -m benchmarks.bench_runtime`` for the full-size stream,
``--smoke`` for the CI-sized variant; the pytest entry point runs the
smoke size through the shared report fixture.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy, MethodSpec
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.runtime import ShardRuntime
from repro.engine.sharded import ProcessShardRunner
from repro.experiments.reporting import format_table

from .conftest import save_json, save_report

FULL_BASE_ANSWERS = 400_000
SMOKE_BASE_ANSWERS = 30_000
GROWTH_STEPS = 5
GROWTH_FRACTION = 0.03
N_SHARDS = 8
MAX_ITER = 25
OVERHEAD_TARGET = 5.0
POSTERIOR_TOLERANCE = 1e-10


def synthetic_stream(base_answers: int, seed: int = 0):
    """Arrival-order snapshots of a growing stream (each a prefix of
    the next — the append-only property the extend path relies on)."""
    rng = np.random.default_rng(seed)
    total = int(base_answers * (1 + GROWTH_FRACTION * GROWTH_STEPS)) + 1
    n_tasks = max(1, base_answers // 8)
    n_workers = max(8, n_tasks // 300)
    truth = rng.integers(0, 2, n_tasks)
    accuracy = rng.beta(6.0, 2.0, n_workers)
    tasks = rng.integers(0, n_tasks, total)
    workers = rng.integers(0, n_workers, total)
    correct = rng.random(total) < accuracy[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    counts = [base_answers]
    for _ in range(GROWTH_STEPS):
        counts.append(min(total,
                          counts[-1] + int(base_answers * GROWTH_FRACTION)))
    return [
        AnswerSet(tasks[:n], workers[:n], values[:n],
                  TaskType.DECISION_MAKING,
                  n_tasks=n_tasks, n_workers=n_workers)
        for n in counts
    ]


def run_benchmark(base_answers: int, n_shards: int = N_SHARDS,
                  method: str = "D&S"):
    snapshots = synthetic_stream(base_answers)
    # The policy-configured spelling: what to run is a MethodSpec, how
    # to run is an ExecutionPolicy resolved to a concrete process plan
    # (both paths below execute that same plan).
    spec = MethodSpec(method, seed=0, max_iter=MAX_ITER)
    plan = ExecutionPolicy(n_shards=n_shards,
                           executor="process").resolve(snapshots[0])
    rows = []
    overhead_perfit, overhead_warm = [], []
    parity = []
    with ShardRuntime(n_shards=plan.n_shards,
                      max_workers=plan.max_workers) as runtime:
        for step, answers in enumerate(snapshots):
            # Per-fit path: spawn + place + fit + teardown, every time.
            t0 = time.perf_counter()
            runner = ProcessShardRunner(answers, spec,
                                        n_shards=plan.n_shards,
                                        max_workers=plan.max_workers)
            t1 = time.perf_counter()
            cold = create(spec).fit(answers, shard_runner=runner)
            t2 = time.perf_counter()
            runner.close()
            t3 = time.perf_counter()
            perfit_over = (t1 - t0) + (t3 - t2)
            perfit_em = t2 - t1

            # Warm path: lease the persistent runtime; growth appends.
            t0 = time.perf_counter()
            lease = runtime.lease(answers, spec,
                                  stream_key="bench-stream")
            t1 = time.perf_counter()
            warm = create(spec).fit(answers, shard_runner=lease)
            t2 = time.perf_counter()
            lease.close()
            t3 = time.perf_counter()
            warm_over = (t1 - t0) + (t3 - t2)
            warm_em = t2 - t1

            diff = float(np.abs(cold.posterior - warm.posterior).max())
            parity.append(diff)
            overhead_perfit.append(perfit_over)
            overhead_warm.append(warm_over)
            rows.append([
                step, f"{answers.n_answers:,}", runtime.last_placement,
                f"{perfit_over * 1000:.1f}ms", f"{warm_over * 1000:.1f}ms",
                f"{perfit_over / max(warm_over, 1e-9):.1f}x",
                f"{perfit_em * 1000:.0f}ms", f"{warm_em * 1000:.0f}ms",
                f"{diff:.1e}",
            ])
        spawns = runtime.pool_spawns
        extends = runtime.extends
    # The enforced ratio covers the *refits* (steps 1+): on step 0 both
    # paths perform the same first placement, which only dilutes the
    # steady-state claim the persistent runtime makes.
    mean_perfit = float(np.mean(overhead_perfit[1:]))
    mean_warm = float(np.mean(overhead_warm[1:]))
    ratio = mean_perfit / max(mean_warm, 1e-9)
    title = (
        f"Persistent runtime vs per-fit process runners — {method}, "
        f"{n_shards} shards, {os.cpu_count() or 1} cpu(s); "
        f"{len(snapshots) - 1} refits on a stream growing "
        f"{GROWTH_FRACTION:.0%}/step | warm path: {spawns} pool spawn(s), "
        f"{extends} segment extend(s) | mean non-EM overhead per refit "
        f"{mean_perfit * 1000:.1f}ms -> {mean_warm * 1000:.1f}ms "
        f"({ratio:.1f}x lower)"
    )
    report = format_table(
        ["refit", "answers", "placement", "per-fit overhead",
         "warm overhead", "ratio", "per-fit EM", "warm EM",
         "max |dposterior|"],
        rows, title=title)
    checks = {
        "ratio": ratio,
        "parity": max(parity),
        "spawns": spawns,
        "extends": extends,
    }
    payload = {
        "base_answers": base_answers,
        "n_shards": n_shards,
        "method": method,
        "growth_fraction": GROWTH_FRACTION,
        "mean_overhead_perfit_s": mean_perfit,
        "mean_overhead_warm_s": mean_warm,
        **checks,
    }
    return report, checks, payload


def enforce(checks: dict) -> None:
    assert checks["spawns"] == 1, (
        f"warm path spawned pools {checks['spawns']} times; the whole "
        f"stream must spawn exactly once"
    )
    assert checks["extends"] >= 1, (
        "stream growth never took the segment-extend path"
    )
    assert checks["parity"] < POSTERIOR_TOLERANCE, (
        f"warm posteriors diverged from the per-fit path: "
        f"max diff {checks['parity']:.2e} >= {POSTERIOR_TOLERANCE}"
    )
    assert checks["ratio"] >= OVERHEAD_TARGET, (
        f"non-EM overhead only {checks['ratio']:.1f}x lower; "
        f"target is {OVERHEAD_TARGET}x"
    )


def test_runtime_overhead(benchmark):
    """CI entry point: smoke-sized stream through the report fixture."""
    report, checks, payload = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_BASE_ANSWERS), rounds=1, iterations=1)
    save_report("runtime_overhead", report)
    save_json("runtime", payload)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load ({SMOKE_BASE_ANSWERS:,} base "
                             f"answers) for CI smoke runs")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"base answer count "
                             f"(default {FULL_BASE_ANSWERS:,})")
    parser.add_argument("--shards", type=int, default=N_SHARDS)
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_runtime.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    base = args.answers or (SMOKE_BASE_ANSWERS if args.smoke
                            else FULL_BASE_ANSWERS)
    report, checks, payload = run_benchmark(base, n_shards=args.shards)
    save_report("runtime_overhead", report)
    save_json("runtime", payload, args.json_path)
    enforce(checks)
    print("all persistent-runtime checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
