"""Figure 9 — the effect of hidden test, numeric dataset (N_Emotion).

Paper reference shape: "the errors (MAE and RMSE) decrease slightly
with the increasing p" for the three numeric methods that can clamp
golden tasks (LFC_N, CATD, PM).
"""

from repro.experiments.hidden import hidden_test_experiment
from repro.experiments.reporting import format_series

from .conftest import save_report

PERCENTAGES = (0, 10, 20, 30, 40, 50)
N_REPEATS = 3
METHODS = ("CATD", "PM", "LFC_N")


def test_figure9_n_emotion(benchmark, sweep_dataset):
    dataset = sweep_dataset("N_Emotion")
    sweep = benchmark.pedantic(
        lambda: hidden_test_experiment(dataset, percentages=PERCENTAGES,
                                       methods=METHODS,
                                       n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("p%", sweep.percentages, sweep.series_for("mae"),
                      title="Figure 9(a) N_Emotion: MAE vs hidden-test p%"),
        format_series("p%", sweep.percentages, sweep.series_for("rmse"),
                      title="Figure 9(b) N_Emotion: RMSE vs hidden-test p%"),
    ]
    save_report("figure9_n_emotion", "\n\n".join(sections))

    mae_series = sweep.series_for("mae")
    # Errors decrease (at most a slight wobble) as p grows.
    for name, series in mae_series.items():
        assert series[-1] <= series[0] + 0.3, name
