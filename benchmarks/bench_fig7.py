"""Figure 7 — the effect of hidden test, decision-making datasets.

Protocol (paper §6.3.3): plant p% of the labelled tasks as golden,
clamp their truth inside the iteration, evaluate on the rest,
p ∈ {0, 10, 20, 30, 40, 50}.

Paper reference shape: quality generally rises with p on D_Product;
D_PosSent barely moves (each task already has 20 answers).
"""

from repro.experiments.hidden import hidden_test_experiment
from repro.experiments.reporting import format_series

from .conftest import save_report

PERCENTAGES = (0, 10, 20, 30, 40, 50)
N_REPEATS = 3
#: The 8 decision-making methods of the paper's Figure 7.
METHODS = ("ZC", "GLAD", "D&S", "Minimax", "LFC", "CATD", "PM", "VI-MF")


def test_figure7_d_product(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")
    sweep = benchmark.pedantic(
        lambda: hidden_test_experiment(dataset, percentages=PERCENTAGES,
                                       methods=METHODS,
                                       n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("p%", sweep.percentages,
                      sweep.series_for("accuracy"),
                      title="Figure 7(a) D_Product: Accuracy vs hidden-test p%"),
        format_series("p%", sweep.percentages, sweep.series_for("f1"),
                      title="Figure 7(b) D_Product: F1 vs hidden-test p%"),
    ]
    save_report("figure7_d_product", "\n\n".join(sections))

    acc = sweep.series_for("accuracy")
    # Knowing half the truths should never hurt, and helps at least
    # some methods visibly.
    gains = [series[-1] - series[0] for series in acc.values()]
    assert max(gains) > 0.0
    assert min(gains) > -0.05


def test_figure7_d_possent(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_PosSent")
    sweep = benchmark.pedantic(
        lambda: hidden_test_experiment(dataset, percentages=PERCENTAGES,
                                       methods=METHODS,
                                       n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("p%", sweep.percentages,
                      sweep.series_for("accuracy"),
                      title="Figure 7(c) D_PosSent: Accuracy vs hidden-test p%"),
        format_series("p%", sweep.percentages, sweep.series_for("f1"),
                      title="Figure 7(d) D_PosSent: F1 vs hidden-test p%"),
    ]
    save_report("figure7_d_possent", "\n\n".join(sections))

    acc = sweep.series_for("accuracy")
    # The paper: "methods on D_PosSent do not have significant gains".
    for name, series in acc.items():
        assert abs(series[-1] - series[0]) < 0.05, name
