"""Ablation — MV tie-breaking policy at low redundancy.

DESIGN.md §7: with redundancy 1–2, ties are common; random tie-breaking
is unbiased while first-choice tie-breaking systematically favours the
lowest label index (which on imbalanced binary data happens to be the
majority class, inflating accuracy while erasing recall).
"""

import numpy as np

from repro.core import create
from repro.experiments.reporting import format_table
from repro.metrics import accuracy, f1_score

from .conftest import save_report


def test_ablation_tie_breaking(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")
    rng = np.random.default_rng(0)
    sparse = dataset.subsample_redundancy(2, rng)

    def run():
        rows = []
        for label, random_ties in (("random", True), ("first-label", False)):
            result = create("MV", seed=0,
                            random_ties=random_ties).fit(sparse.answers)
            rows.append([label,
                         round(accuracy(sparse.truth, result.truths), 4),
                         round(f1_score(sparse.truth, result.truths), 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_ties", format_table(
        ["tie policy", "accuracy", "f1"], rows,
        title="Ablation: MV tie-breaking at redundancy 2 (D_Product)"))

    by_policy = {row[0]: row for row in rows}
    # First-label ties favour the majority class F: accuracy up, F1 down.
    assert by_policy["first-label"][1] >= by_policy["random"][1] - 0.01
    assert by_policy["first-label"][2] <= by_policy["random"][2] + 0.01
