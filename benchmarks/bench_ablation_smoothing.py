"""Ablation — D&S smoothing / LFC prior strength.

DESIGN.md §7: D&S with (near-)zero smoothing vs LFC's MAP priors.
Priors act as insurance at low redundancy (sparse per-worker counts)
and become a liability when they are strong enough to distort the
minority-class rows.
"""

import numpy as np

from repro.core.policy import MethodSpec
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_method

from .conftest import save_report

PRIOR_GRID = (0.0, 0.2, 1.0, 5.0, 25.0)


def test_ablation_prior_strength(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")
    rng = np.random.default_rng(0)
    sparse = dataset.subsample_redundancy(1, rng)

    def run():
        rows = []
        for strength in PRIOR_GRID:
            spec = MethodSpec("LFC",
                              prior_strength=max(strength, 1e-6),
                              diagonal_bonus=strength)
            full = run_method(spec, dataset, seed=0)
            low = run_method(spec, sparse, seed=0)
            rows.append([strength,
                         round(full.scores["f1"], 4),
                         round(low.scores["f1"], 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_smoothing", format_table(
        ["prior pseudo-count", "F1 (r=3)", "F1 (r=1)"], rows,
        title="Ablation: LFC prior strength on D_Product"))

    full_f1 = {row[0]: row[1] for row in rows}
    # A crushing prior hurts at full redundancy.
    assert full_f1[25.0] < max(full_f1.values())
