"""Ablation — convergence-threshold sensitivity for EM methods.

DESIGN.md §7: the paper mentions a 1e-3 threshold in passing.  This
ablation shows the final quality is insensitive to the threshold across
three orders of magnitude while iteration counts (≈ runtime) are not —
the practical justification for the library's 1e-4 default.
"""

from repro.core import create
from repro.experiments.reporting import format_table
from repro.metrics import f1_score

from .conftest import save_report

TOLERANCES = (1e-2, 1e-3, 1e-4, 1e-5)


def test_ablation_convergence_threshold(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")

    def run():
        rows = []
        for tolerance in TOLERANCES:
            result = create("D&S", seed=0,
                            tolerance=tolerance).fit(dataset.answers)
            rows.append([tolerance,
                         round(f1_score(dataset.truth, result.truths), 4),
                         result.n_iterations,
                         round(result.elapsed_seconds, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_convergence", format_table(
        ["tolerance", "F1", "iterations", "seconds"], rows,
        title="Ablation: D&S convergence threshold on D_Product"))

    f1s = [row[1] for row in rows]
    iterations = [row[2] for row in rows]
    # Quality stable across thresholds; work monotone (weakly) in them.
    assert max(f1s) - min(f1s) < 0.03
    assert iterations[-1] >= iterations[0]
