"""Method-zoo sharding benchmark: the rest of the zoo vs its old loops.

The method-zoo sharding pass (CATD, PM, KOS, Minimax, Minimax-Ord,
BCC, CBCC, VI-MF, VI-BP) is measured against the frozen pre-refactor
implementations in :mod:`benchmarks.reference_em`, enforcing:

1. **Exactness** — every method's single-shard fit reproduces its
   pre-refactor loop bit-for-bit.
2. **Agreement** — the 8-shard fit agrees with the single-shard fit on
   at least 99.9% of inferred truths (the Gibbs samplers compare at
   one shard, where the chain is bit-identical; their multi-shard
   chains are statistically equivalent, not comparable truth-by-truth).
3. **Speedup** — CATD and PM, the tentpole targets, beat their
   pre-refactor loops by >= 2x wall-clock at the full 1M-answer load
   even on a single core.  The fused shard kernels alone carry that,
   so the gate times the single-shard tier; the multi-shard column
   adds the sorted shard layout's one-time construction, which only
   pays off under the thread/process executors on real cores.  The
   smoke load only gates a no-collapse floor.  The other methods
   report their speedups without a hard target — their loads are
   scaled down because the pre-refactor loops are the bottleneck.

Run ``python -m benchmarks.bench_method_zoo`` for the full load,
``--smoke`` for the CI-sized variant; the pytest entry point runs the
smoke size through the shared report fixture.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.experiments.reporting import format_table

from .bench_sharded import synthetic_answers
from .conftest import save_json, save_report
from .reference_em import (
    reference_bcc,
    reference_catd,
    reference_cbcc,
    reference_kos,
    reference_minimax,
    reference_minimax_ordinal,
    reference_pm,
    reference_vi_bp,
    reference_vi_mf,
)

FULL_ANSWERS = 1_000_000
SMOKE_ANSWERS = 100_000
N_SHARDS = 8

#: Per-method slice of the base load.  CATD/PM carry the speedup gate
#: at full scale; the others shrink so their (deliberately unoptimised)
#: reference loops keep the benchmark's wall-clock sane.
LOAD_FRACTION = {
    "CATD": 1.0, "PM": 1.0,
    "KOS": 0.2, "VI-MF": 0.2, "VI-BP": 0.2,
    "Minimax": 0.02, "Minimax-Ord": 0.02,
    "BCC": 0.05, "CBCC": 0.05,
}

#: Methods whose multi-shard run is only statistically equivalent to
#: the single-shard chain (merge order steers the rejection samplers),
#: so the agreement check compares the tiers at one shard instead.
GIBBS = ("BCC", "CBCC")


def _timed(fn, rounds: int = 2):
    """Best-of-``rounds`` wall-clock timing (first round's result)."""
    result = None
    best = float("inf")
    for attempt in range(rounds):
        started = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - started)
        if attempt == 0:
            result = out
    return result, best


def _reference_posterior(name, method, answers):
    tol, it = method.tolerance, method.max_iter
    if name == "CATD":
        return reference_catd(answers, tol, it, seed=0)[2]
    if name == "PM":
        return reference_pm(answers, tol, it, seed=0)[2]
    if name == "KOS":
        return reference_kos(answers, method.n_rounds, seed=0)[2]
    if name == "Minimax":
        return reference_minimax(answers, tol, it, seed=0)[2]
    if name == "Minimax-Ord":
        return reference_minimax_ordinal(answers, tol, it, seed=0)[2]
    if name == "BCC":
        return reference_bcc(answers, method.n_samples, method.burn_in,
                             seed=0)[2]
    if name == "CBCC":
        return reference_cbcc(answers, method.n_communities,
                              method.n_samples, method.burn_in, seed=0)[2]
    if name == "VI-MF":
        return reference_vi_mf(answers, tol, it, seed=0)[2]
    if name == "VI-BP":
        return reference_vi_bp(answers, tol, it, seed=0)[2]
    raise ValueError(name)


def run_benchmark(n_answers: int, n_shards: int = N_SHARDS):
    cpus = os.cpu_count() or 1
    full_scale = n_answers >= 500_000
    # CATD/PM's >=2x is a claim about the large-load regime; the smoke
    # load (fits of a few milliseconds, dominated by fixed per-fit
    # costs) gates correctness plus a no-collapse floor.
    tentpole_target = 2.0 if full_scale else 0.3
    policy = ExecutionPolicy(
        n_shards=n_shards,
        max_workers=min(n_shards, cpus),
        executor="process" if (cpus > 1 and full_scale) else "serial",
    )
    rows, checks = [], []
    for name, fraction in LOAD_FRACTION.items():
        answers = synthetic_answers(max(2_000, int(n_answers * fraction)))
        method = create(name, seed=0)
        naive_posterior, naive_s = _timed(
            lambda: _reference_posterior(name, method, answers))
        one_shard, one_s = _timed(
            lambda: create(name, seed=0).fit(answers))
        sharded, sharded_s = _timed(
            lambda: create(name, seed=0, policy=policy).fit(answers))
        bitwise = np.array_equal(naive_posterior, one_shard.posterior)
        if name in GIBBS:
            # Multi-shard Gibbs chains are statistically equivalent but
            # not truth-comparable; pin the seeded determinism of the
            # single-shard chain instead.
            repeat = create(name, seed=0).fit(answers)
            agreement = float((repeat.truths == one_shard.truths).mean())
        else:
            agreement = float((sharded.truths == one_shard.truths).mean())
        speedup = naive_s / max(one_s, 1e-9)
        target = tentpole_target if name in ("CATD", "PM") else 0.0
        rows.append([
            name, f"{answers.n_answers:,}", f"{naive_s:.2f}s",
            f"{one_s:.2f}s", f"{sharded_s:.2f}s", f"{speedup:.2f}x",
            f"{agreement:.4f}", "yes" if bitwise else "NO",
        ])
        checks.append((name, bitwise, agreement, speedup, target))
    title = (
        f"Method-zoo sharding vs pre-refactor loops — base load "
        f"{n_answers:,} answers | {n_shards} shards, "
        f"executor={policy.executor}, {cpus} cpu(s)"
    )
    report = format_table(
        ["method", "answers", "pre-refactor", "sharded(1)",
         f"sharded({n_shards})", "kernel speedup", "truth agreement",
         "1-shard bitwise"],
        rows, title=title)
    payload = {
        "base_answers": n_answers,
        "n_shards": n_shards,
        "executor": policy.executor,
        "methods": [
            {"method": name, "bitwise": bool(bitwise),
             "agreement": agreement, "speedup": speedup, "target": target}
            for name, bitwise, agreement, speedup, target in checks
        ],
    }
    return report, checks, payload


def enforce(checks) -> None:
    for name, bitwise, agreement, speedup, target in checks:
        assert bitwise, (
            f"{name}: single-shard path diverged bit-wise from the "
            f"pre-refactor loop")
        # KOS decodes the sign of near-zero message scores, so the
        # last-ulp merge-order differences can flip the odd tie-grade
        # task; every other method's agreement is effectively exact.
        floor = 0.995 if name == "KOS" else 0.999
        assert agreement >= floor, (
            f"{name}: sharded truth agreement {agreement:.4f} < {floor}")
        assert speedup >= target, (
            f"{name}: speedup {speedup:.2f}x below the "
            f"{target:.1f}x target for this machine")


def test_method_zoo_sharding(benchmark):
    """CI entry point: smoke-sized load through the report fixture."""
    (report, checks, payload) = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_ANSWERS), rounds=1, iterations=1)
    save_report("method_zoo", report)
    save_json("method_zoo", payload)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load ({SMOKE_ANSWERS:,} base "
                             f"answers) for CI smoke runs")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"base answer count (default "
                             f"{FULL_ANSWERS:,})")
    parser.add_argument("--shards", type=int, default=N_SHARDS)
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_method_zoo.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    n_answers = args.answers or (SMOKE_ANSWERS if args.smoke
                                 else FULL_ANSWERS)
    report, checks, payload = run_benchmark(n_answers,
                                            n_shards=args.shards)
    save_report("method_zoo", report)
    save_json("method_zoo", payload, args.json_path)
    enforce(checks)
    print("all method-zoo sharding checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
