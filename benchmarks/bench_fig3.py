"""Figure 3 — worker-quality histograms.

Per-dataset histograms of each worker's accuracy against ground truth
(categorical) or RMSE (numeric).  Paper reference: mean worker accuracy
0.79 / 0.79 / 0.53 / 0.65 for the four categorical datasets and mean
RMSE ≈ 28.9 (range [20, 45]) for N_Emotion.
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.stats import figure3
from repro.metrics import worker_accuracy, worker_rmse

from .conftest import save_report


def test_figure3(benchmark, full_datasets):
    hists = benchmark.pedantic(lambda: figure3(full_datasets),
                               rounds=1, iterations=1)

    sections = []
    means = {}
    for name, dataset in full_datasets.items():
        if dataset.task_type.is_categorical:
            quality = worker_accuracy(dataset.answers, dataset.truth,
                                      dataset.truth_mask)
            label = "accuracy"
        else:
            quality = worker_rmse(dataset.answers, dataset.truth)
            label = "RMSE"
        means[name] = float(np.nanmean(quality))
        rows = [[f"{lo:.2f}–{hi:.2f}", count]
                for lo, hi, count in hists[name].rows()]
        sections.append(format_table(
            [label, "#workers"], rows,
            title=(f"Figure 3 ({name}): worker {label} histogram — "
                   f"mean {means[name]:.3f}"),
        ))
    save_report("figure3", "\n\n".join(sections))

    # Shape checks against the paper's reported means.
    assert 0.70 < means["D_Product"] < 0.90      # paper 0.79
    assert 0.70 < means["D_PosSent"] < 0.90      # paper 0.79
    assert means["S_Rel"] < means["D_Product"]   # S_Rel pool is worse
    assert 20 < means["N_Emotion"] < 40          # paper 28.9
