"""Delta refits across the method zoo: KOS, minimax, VI and Gibbs.

The measured claim (PR 8 acceptance): the per-family incremental
contracts — KOS message warm-restarts, minimax gradient restarts from
cached ``tau/sigma``, VI variational warm-starts from cached counts,
BCC Gibbs chain continuation — make ``ExecutionPolicy(refit="delta")``
**>= 2x faster per refit** than the ``refit="full"`` stream on a
cohort-arrival scenario, for every family, while staying correct in
the sense each family can promise:

* **Minimax / VI-MF** are deterministic fixed-point loops with soft
  posteriors, so the delta stream's final posterior must match the
  full stream's to <= 1e-6 with label agreement >= 0.999 (same gate
  as the EM family in ``bench_delta_refit``).
* **KOS** emits *sign decisions* (one-hot posteriors): a warm message
  restart converges to the same fixed point on decisively-separable
  tasks (pinned exactly by the engine-level parity tests) but may
  land marginal tasks on the other side.  At benchmark scale a
  percent of tasks are marginal by construction, so KOS is gated on
  label agreement >= 0.99 against the full stream, truth accuracy no
  more than 0.5% below the full stream's, and bitwise run-to-run
  determinism.
* **BCC** is a Gibbs sampler: the delta refit *continues* the cached
  chain (restored rng state, zero burn-in, half the sweep budget), a
  different — equally valid — trajectory than a cold resample.  It is
  gated like KOS (agreement >= 0.98, accuracy, determinism).

Every gated refit must actually have run in delta mode — a silent
demotion to full (layout mismatch, missing session) fails the run
rather than hiding inside a 1x "speedup".

Run ``python -m benchmarks.bench_delta_zoo`` for the full-size run,
``--smoke`` for the CI-sized gate, ``--json PATH`` for the
machine-readable ``BENCH_delta_zoo.json`` trajectory point.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core.policy import ExecutionPolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.experiments.reporting import format_table

from .conftest import save_json, save_report

N_SHARDS = 8
GROWTH_STEPS = 3
GROWTH_FRACTION = 0.03
FREEZE_TOL = 3e-8
VERIFY_EVERY = 10
SPEEDUP_TARGET = 2.0
PARITY_TOLERANCE = 1e-6
AGREEMENT_FLOOR = 0.999
SIGN_AGREEMENT_FLOOR = 0.99
CHAIN_AGREEMENT_FLOOR = 0.98
ACCURACY_SLACK = 0.005

#: Per-family scenario: answer counts sized so each refit is real work
#: (the gradient and sampling families cost far more per answer than
#: message passing does), and the gate each family can honestly meet.
#: KOS verifies on a slower cadence — its rounds are so cheap that the
#: verify passes, not the dirty-shard rounds, dominate a delta refit.
FAMILIES = [
    {"method": "KOS", "gate": "sign", "smoke": 480_000, "full": 960_000,
     "kwargs": {"tolerance": 1e-7, "max_iter": 500},
     "policy": {"verify_every": 25}},
    # Minimax refits run tens of seconds — a second stream would double
    # the bench for nothing (long runs are relatively noise-free).
    {"method": "Minimax", "gate": "parity", "smoke": 24_000,
     "full": 96_000, "repeats": 1,
     "kwargs": {"tolerance": 1e-7, "max_iter": 500}},
    {"method": "VI-MF", "gate": "parity", "smoke": 120_000,
     "full": 480_000, "kwargs": {"tolerance": 1e-7, "max_iter": 500}},
    {"method": "BCC", "gate": "chain", "smoke": 36_000, "full": 144_000,
     "kwargs": {"n_samples": 50, "burn_in": 20}},
]


def zoo_stream(base_answers: int, seed: int = 1, redundancy: int = 8,
               steps: int = GROWTH_STEPS, growth: float = GROWTH_FRACTION):
    """Converged base corpus + a new task cohort with its own noisier
    worker pool arriving over ``steps`` batches.  Returns
    ``(batches, truth)`` — the ground truth feeds the accuracy gate of
    the sign-decision and sampling families."""
    rng = np.random.default_rng(seed)
    n_tasks = base_answers // redundancy
    n_workers = max(32, base_answers // 600)
    g = int(base_answers * growth)
    new_tasks = max(2, g // redundancy)
    new_workers = max(6, new_tasks // 20)
    truth = rng.integers(0, 2, n_tasks + new_tasks)
    acc = np.concatenate([rng.beta(8, 2, n_workers),
                          rng.beta(6, 2, new_workers)])
    base_t = np.sort(rng.integers(0, n_tasks, base_answers), kind="stable")
    base_w = rng.integers(0, n_workers, base_answers)
    batches = [(base_t, base_w)]
    chunk = g // steps
    for s in range(steps):
        size = chunk if s < steps - 1 else g - chunk * (steps - 1)
        batches.append((n_tasks + rng.integers(0, new_tasks, size),
                        n_workers + rng.integers(0, new_workers, size)))
    out = []
    for t, w in batches:
        correct = rng.random(len(t)) < acc[w]
        v = np.where(correct, truth[t], 1 - truth[t])
        out.append(list(zip(t.tolist(), w.tolist(), v.tolist())))
    # The engine indexes tasks by first appearance (unanswered ids never
    # get a row), so re-order ``truth`` to match ``result.truths``.
    seen = {}
    for batch in out:
        for t, _, _ in batch:
            if t not in seen:
                seen[t] = len(seen)
    ids = np.empty(len(seen), dtype=np.int64)
    for t, i in seen.items():
        ids[i] = t
    return out, truth[ids]


def run_stream(batches, method: str, refit: str, *, repeats: int = 1,
               policy_overrides: dict | None = None, **kwargs):
    """Feed a stream through ``repeats`` identical engines.

    Returns ``(final result, rows, deterministic)``: per-refit seconds
    are the **min across runs** (interference-robust, the standard
    repeated-measurement estimator), and ``deterministic`` reports
    whether every run reproduced every refit's posterior bitwise — so
    the repeated stream doubles as the determinism gate.
    """
    options = {"freeze_tol": FREEZE_TOL, "verify_every": VERIFY_EVERY}
    options.update(policy_overrides or {})
    policy = ExecutionPolicy(n_shards=N_SHARDS, executor="serial",
                             refit=refit, **options)
    runs = []
    for _ in range(repeats):
        rows = []
        with InferenceEngine(TaskType.DECISION_MAKING, label_order=[0, 1],
                             policy=policy, seed=0) as engine:
            engine.add_answers(batches[0])
            result = engine.infer(method, **kwargs)
            for batch in batches[1:]:
                engine.add_answers(batch)
                started = time.perf_counter()
                result = engine.infer(method, **kwargs)
                rows.append({
                    "seconds": time.perf_counter() - started,
                    "posterior": result.posterior,
                    "fit_stats": result.fit_stats,
                })
        runs.append((result, rows))
    result, rows = runs[0]
    deterministic = True
    for _, other in runs[1:]:
        for row, orow in zip(rows, other):
            row["seconds"] = min(row["seconds"], orow["seconds"])
            deterministic &= bool(
                np.array_equal(row["posterior"], orow["posterior"]))
    return result, rows, deterministic


def _accuracy(result, truth: np.ndarray) -> float:
    return float((np.asarray(result.truths) == truth).mean())


def run_family(spec: dict, base_answers: int):
    """One family's full-vs-delta comparison; returns (row, checks,
    json point)."""
    method = spec["method"]
    overrides = spec.get("policy")
    repeats = spec.get("repeats", 2)
    batches, truth = zoo_stream(base_answers)
    full, full_rows, _ = run_stream(batches, method, "full",
                                    repeats=repeats,
                                    policy_overrides=overrides,
                                    **spec["kwargs"])
    # A different-but-valid trajectory still has to be *the same*
    # trajectory every time: the repeated delta stream must reproduce
    # every refit's posterior bitwise.
    delta, delta_rows, deterministic = run_stream(
        batches, method, "delta", repeats=repeats,
        policy_overrides=overrides, **spec["kwargs"])

    delta_modes = [r["fit_stats"].mode for r in delta_rows]
    speedups = [f["seconds"] / d["seconds"]
                for f, d in zip(full_rows, delta_rows)]
    speedup = float(np.mean(speedups))
    parity = float(np.abs(full.posterior - delta.posterior).max())
    agreement = float((full.truths == delta.truths).mean())
    acc_full = _accuracy(full, truth)
    acc_delta = _accuracy(delta, truth)

    last = delta_rows[-1]["fit_stats"]
    row = [
        method, spec["gate"], f"{base_answers:,}",
        f"{np.mean([r['seconds'] for r in full_rows]) * 1e3:.0f}ms",
        f"{np.mean([r['seconds'] for r in delta_rows]) * 1e3:.0f}ms",
        f"{speedup:.2f}x",
        f"{last.dirty_shards}/{last.n_shards}",
        f"{parity:.1e}" if spec["gate"] == "parity" else "-",
        f"{agreement:.4f}",
        f"{acc_full:.4f}/{acc_delta:.4f}",
        "yes" if all(m == "delta" for m in delta_modes) else "NO",
    ]
    checks = {
        "method": method,
        "gate": spec["gate"],
        "speedup": speedup,
        "parity": parity,
        "agreement": agreement,
        "accuracy_full": acc_full,
        "accuracy_delta": acc_delta,
        "all_delta": all(m == "delta" for m in delta_modes),
        "deterministic": deterministic,
    }
    point = {
        **checks,
        "base_answers": base_answers,
        "refit_seconds_full": [r["seconds"] for r in full_rows],
        "refit_seconds_delta": [r["seconds"] for r in delta_rows],
        "delta_fit_stats": [r["fit_stats"].as_dict() for r in delta_rows],
    }
    return row, checks, point


def enforce(all_checks: list[dict]) -> None:
    floors = {"parity": AGREEMENT_FLOOR, "sign": SIGN_AGREEMENT_FLOOR,
              "chain": CHAIN_AGREEMENT_FLOOR}
    for checks in all_checks:
        method = checks["method"]
        assert checks["all_delta"], (
            f"{method}: a refit silently demoted to full mode"
        )
        assert checks["deterministic"], (
            f"{method}: two identical delta streams diverged bitwise"
        )
        if checks["gate"] == "parity":
            assert checks["parity"] < PARITY_TOLERANCE, (
                f"{method}: delta-vs-full posterior parity "
                f"{checks['parity']:.2e} >= {PARITY_TOLERANCE}"
            )
        else:
            assert (checks["accuracy_delta"]
                    >= checks["accuracy_full"] - ACCURACY_SLACK), (
                f"{method}: delta truth accuracy "
                f"{checks['accuracy_delta']:.4f} fell more than "
                f"{ACCURACY_SLACK} below full's "
                f"{checks['accuracy_full']:.4f}"
            )
        assert checks["agreement"] >= floors[checks["gate"]], (
            f"{method}: label agreement {checks['agreement']:.4f} "
            f"< {floors[checks['gate']]}"
        )
        assert checks["speedup"] >= SPEEDUP_TARGET, (
            f"{method}: delta refits only {checks['speedup']:.2f}x "
            f"faster; target is {SPEEDUP_TARGET}x"
        )


def run_benchmark(scale: str, json_path: str | None = None):
    rows, all_checks, points = [], [], []
    for spec in FAMILIES:
        row, checks, point = run_family(spec, spec[scale])
        rows.append(row)
        all_checks.append(checks)
        points.append(point)
    worst = min(c["speedup"] for c in all_checks)
    title = (
        f"Delta refits across the zoo — {N_SHARDS} shards, serial tier, "
        f"new-cohort stream (+{GROWTH_FRACTION:.0%} over {GROWTH_STEPS} "
        f"refits) | worst family {worst:.2f}x (target >= "
        f"{SPEEDUP_TARGET}x) | parity gate {PARITY_TOLERANCE:.0e} "
        f"(soft fixed-point families); agreement + truth accuracy + "
        f"bitwise determinism (sign/Gibbs families)"
    )
    report = format_table(
        ["method", "gate", "answers", "full refit", "delta refit",
         "speedup", "dirty", "parity", "agreement", "acc full/delta",
         "all delta"],
        rows, title=title)
    save_report("delta_zoo", report)
    save_json("delta_zoo", {
        "scenario": "cohort_arrival_zoo",
        "scale": scale,
        "n_shards": N_SHARDS,
        "growth": GROWTH_FRACTION,
        "speedup_target": SPEEDUP_TARGET,
        "families": points,
    }, json_path)
    return all_checks


def test_delta_zoo(benchmark):
    """CI entry point: smoke-sized gate through the report fixture."""
    all_checks = benchmark.pedantic(
        lambda: run_benchmark("smoke"),
        rounds=1, iterations=1)
    enforce(all_checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized gate (reduced per-family sizes)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_delta_zoo.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    all_checks = run_benchmark("smoke" if args.smoke else "full",
                               args.json_path)
    enforce(all_checks)
    print("all delta-zoo checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
