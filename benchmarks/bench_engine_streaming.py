"""Engine benchmark — warm vs cold refit on a grown answer stream.

The streaming scenario the engine targets: a method has converged on a
snapshot, then ~5% more answers arrive (including unseen tasks/workers)
and the truth must be refreshed.  A cold refit pays the full EM cost; a
warm refit resumes from the previous state and should converge in
strictly fewer iterations.  The report records iterations, wall-clock
time and the label agreement between both refits for every warm-capable
categorical method, plus LFC_N on the numeric replica.
"""

import time

import numpy as np

from repro.core.registry import create
from repro.engine import StreamingAnswerSet
from repro.experiments.reporting import format_table

from .conftest import save_report

GROWTH = 0.05
CATEGORICAL_METHODS = ("D&S", "ZC", "GLAD", "LFC")


def _grown_snapshots(answers, seed=0):
    """Feed a replica's answers through a stream, withholding the last
    ~5% (in random arrival order) for the growth increment."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(answers.n_answers)
    n_prefix = int(len(order) * (1.0 - GROWTH))
    stream = StreamingAnswerSet.from_answer_set(
        answers.select(np.sort(order[:n_prefix])))
    # from_answer_set keeps the full index spaces, so the "before"
    # snapshot has every task/worker but only 95% of the answers.
    before = stream.snapshot()
    # Re-add the withheld answers under the same task/worker keys
    # from_answer_set registered (external labels when present).
    stream.add_answers(answers.iter_records(order[n_prefix:]))
    after = stream.snapshot()
    assert after.n_tasks == before.n_tasks, "growth must not invent tasks"
    return before, after


def _timed_fit(method, answers, warm_start=None):
    started = time.perf_counter()
    result = method.fit(answers, warm_start=warm_start)
    return result, time.perf_counter() - started


def test_engine_streaming(benchmark, sweep_dataset):
    categorical = sweep_dataset("D_PosSent")
    numeric = sweep_dataset("N_Emotion")

    def run():
        rows = []
        jobs = [(name, categorical) for name in CATEGORICAL_METHODS]
        jobs.append(("LFC_N", numeric))
        for name, dataset in jobs:
            before, after = _grown_snapshots(dataset.answers)
            method = create(name, seed=0, max_iter=200)
            previous = method.fit(before)
            cold, cold_s = _timed_fit(method, after)
            warm, warm_s = _timed_fit(method, after, warm_start=previous)
            if dataset.task_type.is_categorical:
                agree = float((cold.truths == warm.truths).mean())
            else:
                agree = float(np.mean(
                    np.abs(cold.truths - warm.truths) < 1e-2))
            rows.append([
                name, dataset.name,
                cold.n_iterations, f"{cold_s * 1000:.1f}ms",
                warm.n_iterations, f"{warm_s * 1000:.1f}ms",
                f"{cold.n_iterations / max(warm.n_iterations, 1):.1f}x",
                f"{cold_s / max(warm_s, 1e-9):.1f}x",
                f"{agree:.4f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("engine_streaming", format_table(
        ["method", "dataset", "cold it", "cold time", "warm it",
         "warm time", "it speedup", "time speedup", "truth agreement"],
        rows,
        title=(f"Streaming engine: warm vs cold refit after "
               f"{GROWTH:.0%} answer growth"),
    ))

    for row in rows:
        name, _, cold_it, _, warm_it = row[:5]
        assert warm_it < cold_it, (
            f"{name}: warm refit used {warm_it} iterations, "
            f"cold used {cold_it}"
        )
