"""Ablation — worker-model expressiveness on imbalanced binary data.

The paper's central modelling finding (§6.3.4): a confusion matrix
captures per-class behaviour that a scalar worker probability cannot,
and this is what wins D_Product's F1.  The ablation isolates the factor
by comparing ZC (scalar) against D&S (matrix) — the two methods share
the same EM structure and differ only in the worker model — plus the
degenerate LFC configured so heavily toward the diagonal that it
behaves like a scalar model again.
"""

from repro.core.policy import MethodSpec
from repro.experiments.runner import run_method

from .conftest import save_report
from repro.experiments.reporting import format_table


def test_ablation_worker_model(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")

    def run():
        rows = []
        for label, spec in (
            ("scalar probability (ZC)", MethodSpec("ZC")),
            ("confusion matrix (D&S)", MethodSpec("D&S")),
            ("matrix, crushed to scalar (LFC diag prior 10k)",
             MethodSpec("LFC", prior_strength=0.1,
                        diagonal_bonus=10_000.0)),
        ):
            run_result = run_method(spec, dataset, seed=0)
            rows.append([label,
                         round(run_result.scores["accuracy"], 4),
                         round(run_result.scores["f1"], 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_worker_model", format_table(
        ["worker model", "accuracy", "f1"], rows,
        title="Ablation: worker-model expressiveness on D_Product"))

    by_label = {row[0]: row for row in rows}
    matrix_f1 = by_label["confusion matrix (D&S)"][2]
    scalar_f1 = by_label["scalar probability (ZC)"][2]
    crushed_f1 = by_label["matrix, crushed to scalar (LFC diag prior 10k)"][2]
    # The matrix wins, and destroying its off-diagonal freedom destroys
    # the win — the advantage comes from the model, not the inference.
    assert matrix_f1 > scalar_f1
    assert crushed_f1 < matrix_f1
