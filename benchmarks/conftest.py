"""Shared benchmark fixtures and report output.

Every benchmark regenerates one table or figure of the paper and writes
the rows/series to ``benchmarks/results/<name>.txt`` (the textual
equivalent of the paper's plots), while pytest-benchmark captures the
wall-clock cost of the underlying experiment.

Scales: the statistics benchmarks (Table 5, Figures 2–3) and the
complete-data comparison (Table 6) run on FULL-SIZE replicas.  The
sweep benchmarks (Figures 4–9, Table 7) run on reduced-scale replicas
with fewer repeats than the paper's 30/100 — the sweeps repeat whole
Table-6-sized workloads dozens of times, and the reduced runs already
reproduce the reported shapes.  Scale factors are recorded in each
report header.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.datasets import all_paper_datasets, load_paper_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Reduced scales used by the sweep benchmarks, per dataset.
SWEEP_SCALE = {
    "D_Product": 0.3,
    "D_PosSent": 0.3,
    "S_Rel": 0.12,
    "S_Adult": 0.12,
    "N_Emotion": 1.0,
}


def save_report(name: str, text: str) -> pathlib.Path:
    """Write a reproduction report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


def save_json(name: str, payload: dict,
              json_path: str | None = None) -> pathlib.Path:
    """Write a machine-readable ``BENCH_<name>.json`` next to the text
    report (the perf-trajectory emitter shared by the perf benchmarks).

    ``json_path`` may name a directory (the file keeps its canonical
    ``BENCH_<name>.json`` name inside it — anything without a ``.json``
    suffix is treated as a directory, existing or not) or an exact
    ``.json`` file path; the default is ``benchmarks/results/``, which
    CI uploads as an artifact.  A ``machine`` block (cpu count) is
    stamped so trajectory points from different runners are comparable.
    """
    payload = dict(payload)
    payload.setdefault("bench", name)
    payload.setdefault("machine", {"cpus": os.cpu_count() or 1})
    if json_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
    else:
        path = pathlib.Path(json_path)
        if path.suffix != ".json":
            path.mkdir(parents=True, exist_ok=True)
            path = path / f"BENCH_{name}.json"
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=float) + "\n")
    print(f"[json metrics saved to {path}]")
    return path


@pytest.fixture(scope="session")
def full_datasets():
    """Full-size replicas of all five paper datasets."""
    return all_paper_datasets(seed=0, scale=1.0)


@pytest.fixture(scope="session")
def sweep_dataset():
    """Factory for reduced-scale replicas used by the sweeps."""

    cache = {}

    def build(name: str):
        if name not in cache:
            cache[name] = load_paper_dataset(name, seed=0,
                                             scale=SWEEP_SCALE[name])
        return cache[name]

    return build
