"""Durable answer store: write-through overhead + crash recovery gates.

The measured claims (PR 6 acceptance), on the PR 5 cohort-arrival
delta-refit scenario (400k-answer converged base corpus + a new task
cohort streaming in, 8 shards, serial tier):

* **Write-through is nearly free** — running the whole scenario with a
  :class:`~repro.core.policy.StorePolicy` attached (every batch logged
  durably, snapshots on cadence) costs **< 10% extra wall time** over
  the identical store-less run, and the final posteriors are
  bit-identical (the store must observe, never perturb).
* **Nothing acknowledged is lost** — a writer subprocess streams the
  scenario through a durable engine, printing ``ACK <version>`` after
  every committed batch; the parent ``SIGKILL``\\ s it mid-stream and
  recovers the store.  The recovered version covers every acknowledged
  answer and lands exactly on a batch boundary (batch atomicity).
* **Recovery resumes warm** — the first post-recovery refit is a delta
  refit seeded from the newest snapshot (replay tail only) and beats a
  forced cold fit of the same recovered stream by **>= 3x**, while the
  recovered posterior matches a cadence-matched uninterrupted run to
  **<= 1e-6** with exact truth-label agreement on the gated run.

Run ``python -m benchmarks.bench_store`` for the full-size run,
``--smoke`` for the CI-sized gate, ``--json PATH`` for the
machine-readable ``BENCH_store.json`` point.  (``--writer`` is the
internal child-process mode used by the kill cycle.)
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core.policy import ExecutionPolicy, StorePolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.experiments.reporting import format_table

from .bench_delta_refit import (FREEZE_TOL, MAX_ITER, N_SHARDS, TOLERANCE,
                                VERIFY_EVERY, cohort_stream)
from .conftest import save_json, save_report

SMOKE_BASE_ANSWERS = 400_000
FULL_BASE_ANSWERS = 1_000_000
OVERHEAD_LIMIT_PCT = 10.0
WARM_SPEEDUP_TARGET = 3.0
RECOVERY_PARITY = 1e-6
#: Base corpus is ingested in this many logged batches.
BASE_CHUNKS = 8
#: Writer-mode stream: enough growth batches that the parent always
#: kills the child long before the stream runs dry.
WRITER_STEPS = 200
WRITER_GROWTH = 0.6
#: The writer refits every FIT_EVERY-th growth batch.
FIT_EVERY = 5


def _policy(store: StorePolicy | None = None) -> ExecutionPolicy:
    kwargs = dict(n_shards=N_SHARDS, executor="serial", refit="delta",
                  freeze_tol=FREEZE_TOL, verify_every=VERIFY_EVERY)
    if store is not None:
        kwargs["store"] = store
    return ExecutionPolicy(**kwargs)


def _engine(policy: ExecutionPolicy) -> InferenceEngine:
    return InferenceEngine(TaskType.DECISION_MAKING, label_order=[0, 1],
                           seed=0, policy=policy)


def _chunked(batch: list, n_chunks: int) -> list[list]:
    size = (len(batch) + n_chunks - 1) // n_chunks
    return [batch[i:i + size] for i in range(0, len(batch), size)]


# ----------------------------------------------------------------------
# Write-through overhead
# ----------------------------------------------------------------------

def _run_scenario(batches, store: StorePolicy | None):
    """One pass of the cohort scenario; per-phase wall times."""
    base_chunks = _chunked(batches[0], BASE_CHUNKS)
    t_add = t_fit = 0.0
    started = time.perf_counter()
    with _engine(_policy(store)) as engine:
        for chunk in base_chunks:
            t = time.perf_counter()
            engine.add_answers(chunk)
            t_add += time.perf_counter() - t
        t = time.perf_counter()
        result = engine.infer("D&S", tolerance=TOLERANCE, max_iter=MAX_ITER)
        t_fit += time.perf_counter() - t
        for batch in batches[1:]:
            t = time.perf_counter()
            engine.add_answers(batch)
            t_add += time.perf_counter() - t
            t = time.perf_counter()
            result = engine.infer("D&S", tolerance=TOLERANCE,
                                  max_iter=MAX_ITER)
            t_fit += time.perf_counter() - t
        total = time.perf_counter() - started
        return {"total": total, "add": t_add, "fit": t_fit,
                "posterior": result.posterior.copy()}


def run_overhead(base_answers: int, workdir: str, rounds: int = 2):
    """Store-attached vs store-less scenario runs (best of ``rounds``
    per arm, interleaved so drift hits both arms alike)."""
    batches = cohort_stream(base_answers)
    plain_runs, store_runs = [], []
    for i in range(rounds):
        plain_runs.append(_run_scenario(batches, None))
        path = os.path.join(workdir, f"overhead-{i}")
        store_runs.append(_run_scenario(batches, StorePolicy(path=path)))
    plain = min(plain_runs, key=lambda r: r["total"])
    store = min(store_runs, key=lambda r: r["total"])
    overhead = 100.0 * (store["total"] - plain["total"]) / plain["total"]
    parity = float(np.abs(store["posterior"]
                          - plain["posterior"]).max())
    rows = [
        [arm, f"{r['total']:.2f}s", f"{r['add']:.2f}s", f"{r['fit']:.2f}s"]
        for arm, r in (("store-less", plain), ("write-through", store))
    ]
    checks = {"overhead_pct": overhead, "overhead_parity": parity}
    payload = {
        "plain_seconds": plain["total"], "store_seconds": store["total"],
        "plain_ingest_seconds": plain["add"],
        "store_ingest_seconds": store["add"],
        **checks,
    }
    return rows, checks, payload


# ----------------------------------------------------------------------
# Kill-and-recover cycle
# ----------------------------------------------------------------------

def _writer_stream(base_answers: int) -> list[list[tuple]]:
    """The writer's deterministic stream: the cohort base plus many
    small growth batches (parent re-derives the identical records)."""
    return cohort_stream(base_answers, steps=WRITER_STEPS,
                         growth=WRITER_GROWTH)


def writer_main(path: str, base_answers: int) -> int:
    """Child-process mode: stream batches through a durable engine,
    printing ``ACK <version>`` per committed batch and ``FIT <version>``
    per refit, until the parent kills us."""
    batches = _writer_stream(base_answers)
    # Snapshot at every refit: recovery then resumes from the exact
    # last fitted state, so the recovered posterior is path-identical
    # to the uninterrupted run (delta refits are history-dependent on
    # weakly-covered tasks; an aged snapshot would diverge there).
    store = StorePolicy(path=path, snapshot_every=1)
    with _engine(_policy(store)) as engine:
        for chunk in _chunked(batches[0], BASE_CHUNKS):
            engine.add_answers(chunk)
            print(f"ACK {engine.stream.version}", flush=True)
        engine.infer("D&S", tolerance=TOLERANCE, max_iter=MAX_ITER)
        print(f"FIT {engine.stream.version}", flush=True)
        for i, batch in enumerate(batches[1:]):
            engine.add_answers(batch)
            print(f"ACK {engine.stream.version}", flush=True)
            if i % FIT_EVERY == FIT_EVERY - 1:
                engine.infer("D&S", tolerance=TOLERANCE, max_iter=MAX_ITER)
                print(f"FIT {engine.stream.version}", flush=True)
    print("DONE", flush=True)
    return 0


def _spawn_writer(path: str, base_answers: int) -> subprocess.Popen:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return subprocess.Popen(
        [sys.executable, "-m", "benchmarks.bench_store",
         "--writer", path, "--answers", str(base_answers)],
        stdout=subprocess.PIPE, text=True, cwd=repo_root, env=env)


def _batch_boundaries(batches) -> list[int]:
    """Stream versions at which the writer acknowledges a batch."""
    sizes = [len(c) for c in _chunked(batches[0], BASE_CHUNKS)]
    sizes += [len(b) for b in batches[1:]]
    return list(np.cumsum(sizes))


def run_kill_cycle(base_answers: int, workdir: str):
    """SIGKILL the writer mid-stream; recover; gate loss/warmth/parity."""
    path = os.path.join(workdir, "killed-store")
    proc = _spawn_writer(path, base_answers)
    acked = fits = 0
    try:
        # Kill only after the second refit has committed a snapshot-aged
        # fit AND at least one more batch was acknowledged past it, so
        # recovery must replay a real log tail, not just load a snapshot.
        while not (fits >= 2 and acked > 0):
            line = proc.stdout.readline()
            if not line or line.startswith("DONE"):
                raise RuntimeError(
                    f"writer finished before the kill point: {line!r}")
            kind, version = line.split()
            if kind == "FIT":
                fits += 1
                acked = 0
            elif fits >= 2:
                acked = int(version)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=120)
        proc.stdout.close()
    if proc.returncode != -signal.SIGKILL:
        raise RuntimeError(f"writer exited {proc.returncode}, not killed")

    t = time.perf_counter()
    recovered = InferenceEngine.recover(
        path, policy=_policy(StorePolicy(path=path, snapshot_every=1)))
    recover_seconds = time.perf_counter() - t
    with recovered:
        version = recovered.stream.version
        boundaries = _batch_boundaries(_writer_stream(base_answers))
        on_boundary = version in boundaries
        lost = max(0, acked - version)

        t = time.perf_counter()
        warm = recovered.infer("D&S", tolerance=TOLERANCE,
                               max_iter=MAX_ITER)
        warm_seconds = time.perf_counter() - t
        warm_mode = warm.fit_stats.mode
        was_warm = recovered.last_fit_was_warm("D&S")
        t = time.perf_counter()
        recovered.infer("D&S", force_cold=True, tolerance=TOLERANCE,
                        max_iter=MAX_ITER)
        cold_seconds = time.perf_counter() - t

        if on_boundary:
            # The cadence-matched uninterrupted run: same records, same
            # refit schedule as the writer managed before dying.
            n_batches = boundaries.index(version) + 1
            with _reference_run(base_answers, n_batches) as reference:
                ref = reference.infer("D&S", tolerance=TOLERANCE,
                                      max_iter=MAX_ITER)
                parity = float(np.abs(warm.posterior - ref.posterior).max())
                agreement = float((warm.truths == ref.truths).mean())
        else:  # enforce() reports the broken atomicity
            parity, agreement = float("inf"), 0.0

    speedup = cold_seconds / warm_seconds
    rows = [
        ["acknowledged version at kill", f"{acked:,}"],
        ["recovered version", f"{version:,}"],
        ["lost acknowledged answers", f"{lost}"],
        ["on a batch boundary", "yes" if on_boundary else "NO"],
        ["recover() wall time", f"{recover_seconds:.2f}s"],
        ["first refit", f"{warm_mode} ({'warm' if was_warm else 'COLD'})"],
        ["warm refit", f"{warm_seconds * 1e3:.0f}ms"],
        ["forced cold refit", f"{cold_seconds * 1e3:.0f}ms"],
        ["warm speedup", f"{speedup:.2f}x"],
        ["posterior parity vs uninterrupted", f"{parity:.1e}"],
        ["truth agreement", f"{agreement:.4f}"],
    ]
    checks = {
        "lost_acknowledged": lost,
        "on_batch_boundary": on_boundary,
        "warm_mode": warm_mode,
        "warm_was_warm": was_warm,
        "warm_speedup": speedup,
        "recovery_parity": parity,
        "truth_agreement": agreement,
    }
    payload = {
        "acked_version": acked, "recovered_version": version,
        "recover_seconds": recover_seconds,
        "warm_seconds": warm_seconds, "cold_seconds": cold_seconds,
        **checks,
    }
    return rows, checks, payload


def _reference_run(base_answers: int, n_batches: int) -> InferenceEngine:
    """Replay the writer's exact batches and refit cadence, store-less."""
    batches = _writer_stream(base_answers)
    all_batches = _chunked(batches[0], BASE_CHUNKS) + batches[1:]
    engine = _engine(_policy())
    for i, batch in enumerate(all_batches[:n_batches]):
        engine.add_answers(batch)
        if i == BASE_CHUNKS - 1:
            engine.infer("D&S", tolerance=TOLERANCE, max_iter=MAX_ITER)
        elif i >= BASE_CHUNKS and (i - BASE_CHUNKS) % FIT_EVERY == FIT_EVERY - 1:
            engine.infer("D&S", tolerance=TOLERANCE, max_iter=MAX_ITER)
    return engine


# ----------------------------------------------------------------------
# Gates / entry points
# ----------------------------------------------------------------------

def enforce(checks: dict) -> None:
    assert checks["overhead_parity"] == 0.0, (
        f"write-through perturbed the posterior by "
        f"{checks['overhead_parity']:.2e}; the store must only observe"
    )
    assert checks["overhead_pct"] <= OVERHEAD_LIMIT_PCT, (
        f"write-through overhead {checks['overhead_pct']:.2f}% > "
        f"{OVERHEAD_LIMIT_PCT}%"
    )
    assert checks["lost_acknowledged"] == 0, (
        f"recovery lost {checks['lost_acknowledged']} acknowledged answers"
    )
    assert checks["on_batch_boundary"], (
        "recovered version is not a batch boundary; batch atomicity broke"
    )
    assert checks["warm_was_warm"] and checks["warm_mode"] == "delta", (
        f"first post-recovery refit was "
        f"{checks['warm_mode']!r} (warm={checks['warm_was_warm']}); "
        f"expected a warm delta refit seeded from the snapshot"
    )
    assert checks["warm_speedup"] >= WARM_SPEEDUP_TARGET, (
        f"warm recovery only {checks['warm_speedup']:.2f}x faster than a "
        f"cold refit; target is {WARM_SPEEDUP_TARGET}x"
    )
    assert checks["recovery_parity"] <= RECOVERY_PARITY, (
        f"recovered posterior differs from the uninterrupted run by "
        f"{checks['recovery_parity']:.2e} > {RECOVERY_PARITY}"
    )
    assert checks["truth_agreement"] == 1.0, (
        f"recovered truth labels disagree with the uninterrupted run "
        f"({checks['truth_agreement']:.4f})"
    )


def run_benchmark(base_answers: int, json_path: str | None = None) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-store-") as workdir:
        ov_rows, ov_checks, ov_payload = run_overhead(base_answers, workdir)
        kc_rows, kc_checks, kc_payload = run_kill_cycle(base_answers,
                                                        workdir)
    checks = {**ov_checks, **kc_checks}
    report = format_table(
        ["arm", "total", "ingest", "fit"], ov_rows,
        title=(f"Write-through overhead — cohort-arrival scenario, D&S, "
               f"{N_SHARDS} shards, serial tier, {base_answers:,} base "
               f"answers | overhead {checks['overhead_pct']:+.2f}% "
               f"(limit {OVERHEAD_LIMIT_PCT:.0f}%), posterior parity "
               f"{checks['overhead_parity']:.1e}"))
    report += "\n\n" + format_table(
        ["metric", "value"], kc_rows,
        title=(f"SIGKILL mid-stream + recovery | zero acknowledged loss, "
               f"warm refit >= {WARM_SPEEDUP_TARGET:.0f}x cold, parity "
               f"<= {RECOVERY_PARITY:.0e}"))
    save_report("store", report)
    save_json("store", {"base_answers": base_answers, **ov_payload,
                        **kc_payload}, json_path)
    return checks


def test_store(benchmark):
    """CI entry point: smoke-sized gate through the report fixture."""
    checks = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_BASE_ANSWERS),
        rounds=1, iterations=1)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI-sized gate ({SMOKE_BASE_ANSWERS:,} base "
                             f"answers)")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"base answer count "
                             f"(default {FULL_BASE_ANSWERS:,})")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_store.json to PATH (a directory "
                             "or exact file; default benchmarks/results/)")
    parser.add_argument("--writer", default=None, metavar="STORE_PATH",
                        help=argparse.SUPPRESS)  # internal child mode
    args = parser.parse_args(argv)
    base = args.answers or (SMOKE_BASE_ANSWERS if args.smoke
                            else FULL_BASE_ANSWERS)
    if args.writer:
        return writer_main(args.writer, base)
    checks = run_benchmark(base, args.json_path)
    enforce(checks)
    print("all store checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
