"""Figure 8 — the effect of hidden test, single-choice datasets.

Paper reference shape: accuracy rises moderately with p on S_Rel;
S_Adult stays inside a narrow band (the labelled tasks are trap-like,
so knowing some truths barely transfers to the rest).
"""

from repro.experiments.hidden import hidden_test_experiment
from repro.experiments.reporting import format_series

from .conftest import save_report

PERCENTAGES = (0, 10, 20, 30, 40, 50)
N_REPEATS = 2
#: The 7 single-choice methods of the paper's Figure 8.
METHODS = ("ZC", "GLAD", "D&S", "Minimax", "LFC", "CATD", "PM")


def test_figure8_s_rel(benchmark, sweep_dataset):
    dataset = sweep_dataset("S_Rel")
    sweep = benchmark.pedantic(
        lambda: hidden_test_experiment(dataset, percentages=PERCENTAGES,
                                       methods=METHODS,
                                       n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    text = format_series("p%", sweep.percentages,
                         sweep.series_for("accuracy"),
                         title="Figure 8(a) S_Rel: Accuracy vs hidden-test p%")
    save_report("figure8_s_rel", text)

    acc = sweep.series_for("accuracy")
    gains = {name: series[-1] - series[0] for name, series in acc.items()}
    # Golden tasks help on S_Rel for at least some methods.
    assert max(gains.values()) > 0.01


def test_figure8_s_adult(benchmark, sweep_dataset):
    dataset = sweep_dataset("S_Adult")
    sweep = benchmark.pedantic(
        lambda: hidden_test_experiment(dataset, percentages=PERCENTAGES,
                                       methods=METHODS,
                                       n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    text = format_series("p%", sweep.percentages,
                         sweep.series_for("accuracy"),
                         title="Figure 8(b) S_Adult: Accuracy vs hidden-test p%")
    save_report("figure8_s_adult", text)

    acc = sweep.series_for("accuracy")
    # Gains stay modest — correlated trap errors don't transfer.
    for name, series in acc.items():
        assert series[-1] - series[0] < 0.25, name
