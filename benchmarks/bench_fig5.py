"""Figure 5 — accuracy vs redundancy, single-choice datasets.

Paper reference shape: on S_Rel quality generally rises with r but ZC
and CATD degrade at high r (sensitivity to low-quality workers); on
S_Adult every method moves inside a narrow band and flattens early.
"""

from repro.experiments.redundancy import sweep_redundancy
from repro.experiments.reporting import format_series

from .conftest import save_report

N_REPEATS = 2
#: Minimax dominates sweep wall-clock; the paper's observations about
#: it are covered by Table 6, so the sweeps use the other 9 methods.
SWEEP_METHODS = ("MV", "ZC", "GLAD", "D&S", "BCC", "CBCC", "LFC",
                 "CATD", "PM")


def test_figure5_s_rel(benchmark, sweep_dataset):
    dataset = sweep_dataset("S_Rel")
    sweep = benchmark.pedantic(
        lambda: sweep_redundancy(dataset, redundancies=(1, 2, 3, 4, 5),
                                 methods=SWEEP_METHODS,
                                 n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    text = format_series("r", sweep.redundancies,
                         sweep.series_for("accuracy"),
                         title="Figure 5(a) S_Rel: Accuracy vs redundancy")
    save_report("figure5_s_rel", text)

    acc = sweep.series_for("accuracy")
    # Confusion-matrix family above MV at full redundancy.
    assert acc["D&S"][-1] > acc["MV"][-1]
    # ZC ends below MV (the paper's observation 3 for S_Rel).
    assert acc["ZC"][-1] < acc["MV"][-1] + 0.02


def test_figure5_s_adult(benchmark, sweep_dataset):
    dataset = sweep_dataset("S_Adult")
    sweep = benchmark.pedantic(
        lambda: sweep_redundancy(dataset, redundancies=(1, 3, 5, 7, 8),
                                 methods=SWEEP_METHODS,
                                 n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    text = format_series("r", sweep.redundancies,
                         sweep.series_for("accuracy"),
                         title="Figure 5(b) S_Adult: Accuracy vs redundancy")
    save_report("figure5_s_adult", text)

    acc = sweep.series_for("accuracy")
    finals = [series[-1] for series in acc.values()]
    # The paper's S_Adult signature: all methods inside a narrow band.
    assert max(finals) - min(finals) < 0.12
