"""Pre-refactor reference EM implementations (frozen for parity).

Faithful copies of the global-array EM inner loops the methods had
*before* the sharded map-reduce refactor (``np.add.at`` scatter /
``np.bincount`` closures over one flat answer array).  Two consumers
pin against them and must share one copy so the reference cannot drift:

* ``tests/properties/test_property_sharded.py`` — bit-for-bit parity of
  the single-shard refactored path;
* ``benchmarks/bench_sharded.py`` — wall-clock baseline and the same
  bitwise check at benchmark scale.

Do not "improve" this module: its value is that it stays exactly what
the pre-refactor code computed.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    clamp_golden_values,
    decode_posterior,
    log_normalize_rows,
    normalize_rows,
)
from repro.inference.em import run_em


class ConfusionParams:
    """The (confusion, prior) pair of the pre-refactor D&S/LFC M-step."""

    def __init__(self, confusion, prior):
        self.confusion, self.prior = confusion, prior


def reference_confusion_em(answers, off, bonus, tolerance, max_iter):
    """Pre-refactor D&S/LFC: confusion-matrix EM over global arrays."""
    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices, n_workers = answers.n_choices, answers.n_workers
    diag = np.arange(n_choices)

    def m_step(posterior):
        counts = np.zeros((n_workers, n_choices, n_choices))
        np.add.at(counts, (workers, values), posterior[tasks])
        confusion = counts.transpose(0, 2, 1)
        confusion = confusion + off
        confusion[:, diag, diag] += bonus
        confusion /= confusion.sum(axis=2, keepdims=True)
        prior = posterior.mean(axis=0)
        prior = prior / prior.sum()
        return ConfusionParams(confusion, prior)

    def e_step(params):
        log_conf = np.log(np.clip(params.confusion, 1e-12, None))
        log_post = np.tile(np.log(np.clip(params.prior, 1e-12, None)),
                           (answers.n_tasks, 1))
        contributions = log_conf[workers, :, values]
        np.add.at(log_post, tasks, contributions)
        return log_normalize_rows(log_post)

    start = normalize_rows(answers.vote_counts())
    return run_em(initial_posterior=start, m_step=m_step, e_step=e_step,
                  tolerance=tolerance, max_iter=max_iter)


def reference_zc(answers, tolerance, max_iter):
    """Pre-refactor ZC; returns ``(EMOutcome, final worker quality)``."""
    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices

    def e_step(quality):
        q = np.clip(quality, 1e-10, 1 - 1e-10)
        log_correct = np.log(q)
        log_wrong = np.log((1.0 - q) / max(n_choices - 1, 1))
        log_post = np.zeros((answers.n_tasks, n_choices))
        base = np.bincount(tasks, weights=log_wrong[workers],
                           minlength=answers.n_tasks)
        log_post += base[:, None]
        bonus = (log_correct - log_wrong)[workers]
        np.add.at(log_post, (tasks, values), bonus)
        return log_normalize_rows(log_post)

    def m_step(posterior):
        matched = posterior[tasks, values]
        sums = np.bincount(workers, weights=matched,
                           minlength=answers.n_workers)
        counts = np.maximum(answers.worker_answer_counts(), 1)
        return sums / counts

    start = normalize_rows(answers.vote_counts())
    outcome = run_em(initial_posterior=start, m_step=m_step, e_step=e_step,
                     tolerance=tolerance, max_iter=max_iter)
    return outcome, m_step(outcome.posterior)


def reference_glad(answers, tolerance, max_iter, learning_rate=0.05,
                   gradient_steps=12, prior_strength=0.5):
    """Pre-refactor GLAD (cold start); returns
    ``(posterior, alpha, easiness, tracker)``."""
    from repro.methods.glad import _sigmoid

    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices
    alpha = np.ones(answers.n_workers)
    log_beta = np.zeros(answers.n_tasks)

    def e_step(alpha, log_beta):
        p_correct = _sigmoid(alpha[workers] * np.exp(log_beta[tasks]))
        p_correct = np.clip(p_correct, 1e-10, 1 - 1e-10)
        log_c = np.log(p_correct)
        log_w = np.log((1.0 - p_correct) / max(n_choices - 1, 1))
        log_post = np.zeros((answers.n_tasks, n_choices))
        base = np.bincount(tasks, weights=log_w, minlength=answers.n_tasks)
        log_post += base[:, None]
        np.add.at(log_post, (tasks, values), log_c - log_w)
        return log_normalize_rows(log_post)

    posterior = normalize_rows(answers.vote_counts())
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        match = posterior[tasks, values]
        for _ in range(gradient_steps):
            beta = np.exp(log_beta)
            p = _sigmoid(alpha[workers] * beta[tasks])
            residual = match - p
            grad_alpha = np.bincount(
                workers, weights=residual * beta[tasks],
                minlength=answers.n_workers,
            ) - prior_strength * (alpha - 1.0)
            grad_logbeta = np.bincount(
                tasks, weights=residual * alpha[workers] * beta[tasks],
                minlength=answers.n_tasks,
            ) - prior_strength * log_beta
            alpha = alpha + learning_rate * grad_alpha
            log_beta = log_beta + learning_rate * grad_logbeta
            log_beta = np.clip(log_beta, -5.0, 5.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        posterior = e_step(alpha, log_beta)
        if tracker.update(posterior):
            break
    return posterior, alpha, np.exp(log_beta), tracker


def reference_lfc_n(answers, tolerance, max_iter, min_variance=1e-6,
                    golden=None):
    """Pre-refactor LFC_N; returns ``(truths, variance, tracker)``."""
    tasks, workers, values = answers.tasks, answers.workers, answers.values
    counts_w = np.maximum(answers.worker_answer_counts(), 1)
    counts_t = np.maximum(answers.task_answer_counts(), 1)

    def weighted_truths(variance):
        weights = 1.0 / variance[workers]
        numer = np.bincount(tasks, weights=weights * values,
                            minlength=answers.n_tasks)
        denom = np.bincount(tasks, weights=weights,
                            minlength=answers.n_tasks)
        return numer / np.where(denom > 0, denom, 1.0)

    truths = np.bincount(tasks, weights=values,
                         minlength=answers.n_tasks) / counts_t
    truths = clamp_golden_values(truths, golden)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        residual = (values - truths[tasks]) ** 2
        sums = np.bincount(workers, weights=residual,
                           minlength=answers.n_workers)
        variance = np.maximum(sums / counts_w, min_variance)
        truths = clamp_golden_values(weighted_truths(variance), golden)
        if tracker.update(truths):
            break
    return truths, variance, tracker

# ----------------------------------------------------------------------
# Method-zoo references (frozen pre-sharding copies of the 9 methods
# converted by the map-reduce refactor; consumed by
# tests/properties/test_property_method_zoo.py and
# benchmarks/bench_method_zoo.py).
# ----------------------------------------------------------------------


def _catd_normalize(weights):
    total = weights.sum()
    if total <= 0:
        return np.full_like(weights, 1.0 / max(len(weights), 1))
    return weights * (len(weights) / total)


def reference_catd(answers, tolerance, max_iter, seed=None, golden=None,
                   initial_quality=None, confidence=0.975,
                   regularization=0.01):
    """Pre-refactor CATD; returns
    ``(truths, weights, posterior, tracker)``."""
    from repro.inference.distributions import chi_square_confidence

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    categorical = answers.task_type.is_categorical
    values = answers.values.astype(np.int64) if categorical else answers.values

    coefficient = chi_square_confidence(
        answers.worker_answer_counts(), confidence
    )
    if initial_quality is not None:
        weights = coefficient * np.clip(initial_quality, 0.05, 1.0)
    else:
        weights = np.where(coefficient > 0, coefficient, 0.0)
    weights = _catd_normalize(weights)

    if not categorical:
        scale = np.std(values) if np.std(values) > 0 else 1.0

    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    posterior = None
    while True:
        w = weights[workers]
        if categorical:
            scores = np.zeros((answers.n_tasks, answers.n_choices))
            np.add.at(scores, (tasks, values), w)
            posterior = clamp_golden_posterior(normalize_rows(scores), golden)
            truths = posterior.argmax(axis=1)
            distances = (values != truths[tasks]).astype(np.float64)
        else:
            numer = np.bincount(tasks, weights=w * values,
                                minlength=answers.n_tasks)
            denom = np.bincount(tasks, weights=w, minlength=answers.n_tasks)
            denom = np.where(denom > 0, denom, 1.0)
            truths = clamp_golden_values(numer / denom, golden)
            distances = ((values - truths[tasks]) / scale) ** 2

        losses = np.bincount(workers, weights=distances,
                             minlength=answers.n_workers)
        weights = _catd_normalize(coefficient / (losses + regularization))
        if tracker.update(weights):
            break

    final = decode_posterior(posterior, rng) if categorical else truths
    return final, weights, posterior, tracker


def reference_pm(answers, tolerance, max_iter, seed=None, golden=None,
                 initial_quality=None, regularization=0.01):
    """Pre-refactor PM; returns
    ``(truths, weights, posterior, tracker)``."""
    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers

    if initial_quality is None:
        weights = np.ones(answers.n_workers)
    else:
        miss = np.clip(1.0 - np.asarray(initial_quality, dtype=np.float64),
                       regularization, 1.0)
        weights = np.maximum(-np.log(miss), regularization)

    def quality_step(distances):
        sums = np.bincount(workers, weights=distances,
                           minlength=answers.n_workers)
        sums = sums + regularization
        worst = sums.max()
        return -np.log(sums / worst) + regularization

    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    if answers.task_type.is_categorical:
        values = answers.values.astype(np.int64)
        scores = np.zeros((answers.n_tasks, answers.n_choices))
        while True:
            scores.fill(0.0)
            np.add.at(scores, (tasks, values), weights[workers])
            posterior = clamp_golden_posterior(normalize_rows(scores), golden)
            truths = decode_posterior(posterior, rng)
            distances = (values != truths[tasks]).astype(np.float64)
            weights = quality_step(distances)
            if tracker.update(weights):
                break
        return decode_posterior(posterior, rng), weights, posterior, tracker

    values = answers.values
    scale = np.std(values) if np.std(values) > 0 else 1.0
    while True:
        w = weights[workers]
        numer = np.bincount(tasks, weights=w * values,
                            minlength=answers.n_tasks)
        denom = np.bincount(tasks, weights=w, minlength=answers.n_tasks)
        denom = np.where(denom > 0, denom, 1.0)
        truths = clamp_golden_values(numer / denom, golden)
        distances = ((values - truths[tasks]) / scale) ** 2
        weights = quality_step(distances)
        if tracker.update(weights):
            break
    return truths, weights, None, tracker


def _vi_initial_mu(answers, initial_quality):
    from repro.core.tasktypes import LABEL_TRUE

    counts = answers.vote_counts()
    if initial_quality is None:
        totals = counts.sum(axis=1)
        totals = np.where(totals > 0, totals, 1.0)
        return counts[:, LABEL_TRUE] / totals
    weights = np.clip(initial_quality, 0.05, 0.95)
    said_true = answers.values.astype(np.int64) == LABEL_TRUE
    w_edge = weights[answers.workers]
    score_t = np.bincount(answers.tasks, weights=w_edge * said_true,
                          minlength=answers.n_tasks)
    score_f = np.bincount(answers.tasks, weights=w_edge * ~said_true,
                          minlength=answers.n_tasks)
    total = score_t + score_f
    total = np.where(total > 0, total, 1.0)
    return score_t / total


def _vi_clamp_mu(mu, golden):
    from repro.core.tasktypes import LABEL_TRUE

    if not golden:
        return mu
    for task, label in golden.items():
        mu[task] = 1.0 if int(label) == LABEL_TRUE else 0.0
    return mu


def _vi_accumulate(answers, said_true, mu):
    mu_edge = mu[answers.tasks]
    correct_t = np.bincount(answers.workers, weights=mu_edge * said_true,
                            minlength=answers.n_workers)
    incorrect_t = np.bincount(answers.workers, weights=mu_edge * ~said_true,
                              minlength=answers.n_workers)
    correct_f = np.bincount(answers.workers,
                            weights=(1 - mu_edge) * ~said_true,
                            minlength=answers.n_workers)
    incorrect_f = np.bincount(answers.workers,
                              weights=(1 - mu_edge) * said_true,
                              minlength=answers.n_workers)
    return correct_t, incorrect_t, correct_f, incorrect_f


def _vi_result(answers, mu, counts, tracker, rng, prior):
    from repro.core.tasktypes import LABEL_TRUE  # noqa: F401
    from repro.inference.variational import posterior_mean_accuracy

    correct_t, incorrect_t, correct_f, incorrect_f = counts
    sensitivity = posterior_mean_accuracy(correct_t, incorrect_t, prior)
    specificity = posterior_mean_accuracy(correct_f, incorrect_f, prior)
    posterior = np.column_stack([1.0 - mu, mu])
    truths = decode_posterior(posterior, rng)
    return truths, (sensitivity + specificity) / 2.0, posterior, tracker


def reference_vi_mf(answers, tolerance, max_iter, seed=None, golden=None,
                    initial_quality=None, prior_a=2.0, prior_b=1.0):
    """Pre-refactor VI-MF; returns
    ``(truths, quality, posterior, tracker)``."""
    from repro.core.tasktypes import LABEL_FALSE, LABEL_TRUE
    from repro.inference.variational import (
        BetaPrior,
        expected_log_beta_counts,
    )

    rng = np.random.default_rng(seed)
    prior = BetaPrior(a=prior_a, b=prior_b)
    said_true = answers.values.astype(np.int64) == LABEL_TRUE
    mu = _vi_clamp_mu(_vi_initial_mu(answers, initial_quality), golden)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    counts = _vi_accumulate(answers, said_true, mu)
    while True:
        correct_t, incorrect_t, correct_f, incorrect_f = counts
        els_t, elf_t = expected_log_beta_counts(correct_t, incorrect_t, prior)
        els_f, elf_f = expected_log_beta_counts(correct_f, incorrect_f, prior)
        from scipy.special import digamma

        prev_t = 1.0 + float(mu.sum())
        prev_f = 1.0 + float(len(mu) - mu.sum())
        total = digamma(prev_t + prev_f)
        log_prev_t = np.array([digamma(prev_t) - total])
        log_prev_f = np.array([digamma(prev_f) - total])
        log_t = np.where(said_true, els_t[answers.workers],
                         elf_t[answers.workers])
        log_f = np.where(said_true, elf_f[answers.workers],
                         els_f[answers.workers])
        log_post = np.zeros((answers.n_tasks, 2))
        log_post[:, LABEL_TRUE] = float(log_prev_t[0]) + np.bincount(
            answers.tasks, weights=log_t, minlength=answers.n_tasks)
        log_post[:, LABEL_FALSE] = float(log_prev_f[0]) + np.bincount(
            answers.tasks, weights=log_f, minlength=answers.n_tasks)
        posterior = log_normalize_rows(log_post)
        mu = _vi_clamp_mu(posterior[:, LABEL_TRUE].copy(), golden)
        counts = _vi_accumulate(answers, said_true, mu)
        if tracker.update(mu):
            break
    return _vi_result(answers, mu, counts, tracker, rng, prior)


def reference_vi_bp(answers, tolerance, max_iter, seed=None, golden=None,
                    initial_quality=None, prior_a=2.0, prior_b=1.0):
    """Pre-refactor VI-BP; returns
    ``(truths, quality, posterior, tracker)``."""
    from repro.core.tasktypes import LABEL_FALSE, LABEL_TRUE
    from repro.inference.variational import (
        BetaPrior,
        posterior_mean_accuracy,
    )

    rng = np.random.default_rng(seed)
    prior = BetaPrior(a=prior_a, b=prior_b)
    a = answers
    said_true = a.values.astype(np.int64) == LABEL_TRUE
    mu = _vi_clamp_mu(_vi_initial_mu(a, initial_quality), golden)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    counts = _vi_accumulate(a, said_true, mu)
    while True:
        correct_t, incorrect_t, correct_f, incorrect_f = counts
        mu_edge = mu[a.tasks]
        cav_ct = correct_t[a.workers] - mu_edge * said_true
        cav_it = incorrect_t[a.workers] - mu_edge * ~said_true
        cav_cf = correct_f[a.workers] - (1 - mu_edge) * ~said_true
        cav_if = incorrect_f[a.workers] - (1 - mu_edge) * said_true
        cav = [np.maximum(c, 0.0) for c in (cav_ct, cav_it, cav_cf, cav_if)]

        mean_s = np.clip(posterior_mean_accuracy(cav[0], cav[1], prior),
                         1e-10, 1 - 1e-10)
        mean_t = np.clip(posterior_mean_accuracy(cav[2], cav[3], prior),
                         1e-10, 1 - 1e-10)
        log_msg_t = np.where(said_true, np.log(mean_s), np.log1p(-mean_s))
        log_msg_f = np.where(said_true, np.log1p(-mean_t), np.log(mean_t))

        log_post = np.zeros((a.n_tasks, 2))
        log_post[:, LABEL_TRUE] = np.bincount(a.tasks, weights=log_msg_t,
                                              minlength=a.n_tasks)
        log_post[:, LABEL_FALSE] = np.bincount(a.tasks, weights=log_msg_f,
                                               minlength=a.n_tasks)
        posterior = log_normalize_rows(log_post)
        mu = _vi_clamp_mu(posterior[:, LABEL_TRUE].copy(), golden)
        counts = _vi_accumulate(a, said_true, mu)
        if tracker.update(mu):
            break
    return _vi_result(a, mu, counts, tracker, rng, prior)


def _kos_edge_seed(tasks, workers, entropy):
    """Frozen copy of the library's layout-independent per-edge seed
    (splitmix64 over the (task, worker, entropy) key -> N(1, 1))."""
    from scipy.special import ndtri

    gamma = np.uint64(0x9E3779B97F4A7C15)
    mix1 = np.uint64(0xBF58476D1CE4E5B9)
    mix2 = np.uint64(0x94D049BB133111EB)
    key = (tasks.astype(np.uint64) << np.uint64(32)) ^ workers.astype(
        np.uint64)
    with np.errstate(over="ignore"):
        h = key + gamma * (np.uint64(entropy) + np.uint64(1))
        h ^= h >> np.uint64(30)
        h *= mix1
        h ^= h >> np.uint64(27)
        h *= mix2
        h ^= h >> np.uint64(31)
    u = ((h >> np.uint64(11)).astype(np.float64) + 0.5) / float(1 << 53)
    return 1.0 + ndtri(u)


def reference_kos(answers, n_rounds, seed=None):
    """Pre-refactor KOS loop shape with the layout-independent per-edge
    seeding; returns ``(truths, quality, posterior, scores)``."""
    from repro.core.tasktypes import LABEL_TRUE

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    spins = np.where(answers.values.astype(np.int64) == LABEL_TRUE, 1.0, -1.0)

    entropy = int(rng.integers(0, 2 ** 63))
    y = _kos_edge_seed(tasks, workers, entropy)
    x = np.zeros_like(y)

    for _ in range(n_rounds):
        task_totals = np.bincount(tasks, weights=spins * y,
                                  minlength=answers.n_tasks)
        x = task_totals[tasks] - spins * y
        worker_totals = np.bincount(workers, weights=spins * x,
                                    minlength=answers.n_workers)
        y = worker_totals[workers] - spins * x
        norm = np.sqrt(np.mean(y**2))
        if norm > 0:
            y = y / norm

    scores = np.bincount(tasks, weights=spins * y,
                         minlength=answers.n_tasks)
    truths = np.where(scores > 0, LABEL_TRUE, 1 - LABEL_TRUE)
    ties = scores == 0
    if ties.any():
        truths[ties] = rng.integers(0, 2, size=int(ties.sum()))

    alignment = spins * np.sign(scores)[tasks]
    sums = np.bincount(workers, weights=alignment,
                       minlength=answers.n_workers)
    counts = np.maximum(answers.worker_answer_counts(), 1)
    quality = (sums / counts + 1.0) / 2.0

    posterior = np.zeros((answers.n_tasks, 2))
    posterior[np.arange(answers.n_tasks), truths] = 1.0
    return truths, quality, posterior, scores


def reference_minimax(answers, tolerance, max_iter, seed=None, golden=None,
                      learning_rate=0.5, gradient_steps=20, l2_tau=3.0,
                      l2_sigma=0.01, prior_temper=0.7):
    """Pre-refactor Minimax; returns
    ``(truths, quality, posterior, tracker, tau, sigma)``."""
    from repro.core.framework import clamp_golden_posterior, normalize_rows

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    values = answers.values.astype(np.int64)
    n_tasks, n_workers = answers.n_tasks, answers.n_workers
    n_choices = answers.n_choices
    count_t = np.maximum(answers.task_answer_counts(), 1)[:, None]
    count_w = np.maximum(answers.worker_answer_counts(), 1)[:, None, None]

    posterior = clamp_golden_posterior(
        normalize_rows(answers.vote_counts()), golden)

    counts = np.zeros((n_workers, n_choices, n_choices))
    np.add.at(counts, (workers, values), posterior[tasks])
    confusion = counts.transpose(0, 2, 1) + 1.0
    confusion /= confusion.sum(axis=2, keepdims=True)
    sigma = np.log(confusion)
    tau = np.zeros((n_tasks, n_choices))

    def model_log_probs(tau, sigma):
        scores = tau[tasks][:, None, :] + sigma[workers]
        scores = scores - scores.max(axis=2, keepdims=True)
        log_z = np.log(np.exp(scores).sum(axis=2, keepdims=True))
        return scores - log_z

    edge_index = np.arange(len(values))
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        for _ in range(gradient_steps):
            log_pi = model_log_probs(tau, sigma)
            pi = np.exp(log_pi)
            post_edge = posterior[tasks]
            expected = post_edge[:, :, None] * pi
            observed = np.zeros_like(expected)
            observed[edge_index, :, values] = post_edge
            residual = observed - expected

            grad_tau = np.zeros_like(tau)
            np.add.at(grad_tau, tasks, residual.sum(axis=1))
            grad_sigma = np.zeros_like(sigma)
            np.add.at(grad_sigma, workers, residual)

            tau += learning_rate * (grad_tau / count_t - l2_tau * tau)
            sigma += learning_rate * (grad_sigma / count_w - l2_sigma * sigma)

        class_prior = np.clip(posterior.mean(axis=0), 1e-6, None)
        class_prior = class_prior / class_prior.sum()
        log_pi = model_log_probs(tau, sigma)
        edge_ll = log_pi[edge_index, :, values]
        log_post = np.tile(prior_temper * np.log(class_prior), (n_tasks, 1))
        np.add.at(log_post, tasks, edge_ll)
        posterior = clamp_golden_posterior(log_normalize_rows(log_post),
                                           golden)
        if tracker.update(posterior):
            break

    softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
    softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
    diag = np.arange(n_choices)
    quality = softmax_sigma[:, diag, diag].mean(axis=1)
    truths = decode_posterior(posterior, rng)
    return truths, quality, posterior, tracker, tau, sigma


def reference_minimax_ordinal(answers, tolerance, max_iter, seed=None,
                              golden=None, learning_rate=0.5,
                              gradient_steps=20, l2_tau=3.0, l2_omega=0.01,
                              prior_temper=0.7):
    """Pre-refactor Minimax-Ord; returns
    ``(truths, quality, posterior, tracker, tau, omega, sigma)``."""
    from repro.core.framework import clamp_golden_posterior, normalize_rows

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    values = answers.values.astype(np.int64)
    n_tasks, n_workers = answers.n_tasks, answers.n_workers
    n_choices = answers.n_choices
    n_splits = max(n_choices - 1, 1)
    count_t = np.maximum(answers.task_answer_counts(), 1)[:, None]
    count_w = np.maximum(answers.worker_answer_counts(),
                         1)[:, None, None, None]

    splits = np.arange(1, n_splits + 1)
    labels = np.arange(n_choices)
    side = (labels[None, :] >= splits[:, None]).astype(np.int64)

    posterior = clamp_golden_posterior(
        normalize_rows(answers.vote_counts()), golden)

    counts2 = np.zeros((n_workers, n_splits, 2, 2))
    truth_hat = posterior.argmax(axis=1)
    for s in range(n_splits):
        truth_side = side[s][truth_hat[tasks]]
        answer_side = side[s][values]
        np.add.at(counts2, (workers, s, truth_side, answer_side), 1.0)
    counts2 += 1.0
    omega = np.log(counts2 / counts2.sum(axis=3, keepdims=True))

    def sigma_from_omega(omega):
        sigma = np.zeros((n_workers, n_choices, n_choices))
        for s in range(n_splits):
            sigma += omega[:, s][:, side[s][:, None], side[s][None, :]]
        return sigma

    def model_log_probs(tau, sigma):
        scores = tau[tasks][:, None, :] + sigma[workers]
        scores = scores - scores.max(axis=2, keepdims=True)
        log_z = np.log(np.exp(scores).sum(axis=2, keepdims=True))
        return scores - log_z

    tau = np.zeros((n_tasks, n_choices))
    edge_index = np.arange(len(values))
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        for _ in range(gradient_steps):
            sigma = sigma_from_omega(omega)
            log_pi = model_log_probs(tau, sigma)
            pi = np.exp(log_pi)
            post_edge = posterior[tasks]
            expected = post_edge[:, :, None] * pi
            observed = np.zeros_like(expected)
            observed[edge_index, :, values] = post_edge
            residual = observed - expected

            grad_tau = np.zeros_like(tau)
            np.add.at(grad_tau, tasks, residual.sum(axis=1))

            grad_sigma = np.zeros((n_workers, n_choices, n_choices))
            np.add.at(grad_sigma, workers, residual)
            grad_omega = np.zeros_like(omega)
            for s in range(n_splits):
                for a in (0, 1):
                    for b in (0, 1):
                        mask = ((side[s][:, None] == a)
                                & (side[s][None, :] == b))
                        grad_omega[:, s, a, b] = grad_sigma[:, mask].sum(
                            axis=1)

            tau += learning_rate * (grad_tau / count_t - l2_tau * tau)
            omega += learning_rate * (grad_omega / count_w
                                      - l2_omega * omega)

        sigma = sigma_from_omega(omega)
        class_prior = np.clip(posterior.mean(axis=0), 1e-6, None)
        class_prior = class_prior / class_prior.sum()
        log_pi = model_log_probs(tau, sigma)
        edge_ll = log_pi[edge_index, :, values]
        log_post = np.tile(prior_temper * np.log(class_prior), (n_tasks, 1))
        np.add.at(log_post, tasks, edge_ll)
        posterior = clamp_golden_posterior(log_normalize_rows(log_post),
                                           golden)
        if tracker.update(posterior):
            break

    sigma = sigma_from_omega(omega)
    softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
    softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
    diag = np.arange(n_choices)
    quality = softmax_sigma[:, diag, diag].mean(axis=1)
    truths = decode_posterior(posterior, rng)
    return truths, quality, posterior, tracker, tau, omega, sigma


def reference_bcc(answers, n_samples, burn_in, seed=None, golden=None,
                  alpha_diagonal=2.0, alpha_off_diagonal=1.0,
                  beta_prior=1.0):
    """Pre-refactor BCC; returns
    ``(truths, quality, posterior, mean_confusion)``."""
    from repro.core.framework import clamp_golden_posterior, normalize_rows
    from repro.inference.distributions import sample_dirichlet_rows

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices
    n_workers = answers.n_workers
    n_tasks = answers.n_tasks
    alpha = np.full((n_choices, n_choices), alpha_off_diagonal)
    np.fill_diagonal(alpha, alpha_diagonal)

    posterior = clamp_golden_posterior(
        normalize_rows(answers.vote_counts()), golden)
    tally = np.zeros((n_tasks, n_choices))
    confusion_sum = np.zeros((n_workers, n_choices, n_choices))
    retained = 0

    total_sweeps = burn_in + n_samples
    for sweep in range(total_sweeps):
        counts = np.zeros((n_workers, n_choices, n_choices))
        np.add.at(counts, (workers, values), posterior[tasks])
        confusion = sample_dirichlet_rows(
            counts.transpose(0, 2, 1) + alpha, rng)

        prior = sample_dirichlet_rows(
            posterior.sum(axis=0) + beta_prior, rng)

        log_conf = np.log(np.clip(confusion, 1e-12, None))
        log_post = np.tile(np.log(np.clip(prior, 1e-12, None)),
                           (n_tasks, 1))
        np.add.at(log_post, tasks, log_conf[workers, :, values])
        posterior = clamp_golden_posterior(
            log_normalize_rows(log_post), golden)

        if sweep >= burn_in:
            tally += posterior
            confusion_sum += confusion
            retained += 1

    final = tally / max(retained, 1)
    final = clamp_golden_posterior(final, golden)
    mean_confusion = confusion_sum / max(retained, 1)
    diag = np.arange(n_choices)
    quality = mean_confusion[:, diag, diag].mean(axis=1)
    truths = decode_posterior(final, rng)
    return truths, quality, final, mean_confusion


def reference_cbcc(answers, n_communities, n_samples, burn_in, seed=None,
                   alpha_diagonal=4.0, alpha_off_diagonal=1.0,
                   beta_prior=1.0, community_prior=1.0):
    """Pre-refactor CBCC; returns
    ``(truths, quality, posterior, membership)``."""
    from repro.core.framework import normalize_rows
    from repro.inference.distributions import (
        sample_categorical_rows,
        sample_dirichlet_rows,
    )

    rng = np.random.default_rng(seed)
    tasks = answers.tasks
    workers = answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices
    n_workers = answers.n_workers
    n_tasks = answers.n_tasks
    n_comm = n_communities
    diag = np.arange(n_choices)

    alpha = np.full((n_comm, n_choices, n_choices), alpha_off_diagonal)
    for m in range(n_comm):
        strength = alpha_diagonal * (m + 1) / n_comm
        alpha[m, diag, diag] = max(strength, alpha_off_diagonal)

    posterior = normalize_rows(answers.vote_counts())
    membership = rng.integers(0, n_comm, size=n_workers)
    tally = np.zeros((n_tasks, n_choices))
    quality_sum = np.zeros(n_workers)
    retained = 0

    total_sweeps = burn_in + n_samples
    for sweep in range(total_sweeps):
        worker_counts = np.zeros((n_workers, n_choices, n_choices))
        np.add.at(worker_counts, (workers, values), posterior[tasks])
        worker_counts = worker_counts.transpose(0, 2, 1)  # (w, j, k)
        comm_counts = np.zeros((n_comm, n_choices, n_choices))
        np.add.at(comm_counts, membership, worker_counts)
        confusion = sample_dirichlet_rows(comm_counts + alpha, rng)
        log_conf = np.log(np.clip(confusion, 1e-12, None))

        worker_ll = np.einsum("wjk,mjk->wm", worker_counts, log_conf)
        comm_sizes = np.bincount(membership, minlength=n_comm)
        log_size_prior = np.log(comm_sizes + community_prior)
        membership = sample_categorical_rows(
            log_normalize_rows(worker_ll + log_size_prior), rng)

        prior = sample_dirichlet_rows(
            posterior.sum(axis=0) + beta_prior, rng)
        log_post = np.tile(np.log(np.clip(prior, 1e-12, None)),
                           (n_tasks, 1))
        np.add.at(log_post, tasks,
                  log_conf[membership[workers], :, values])
        posterior = log_normalize_rows(log_post)

        if sweep >= burn_in:
            tally += posterior
            quality_sum += confusion[membership][:, diag, diag].mean(axis=1)
            retained += 1

    final = tally / max(retained, 1)
    quality = quality_sum / max(retained, 1)
    truths = decode_posterior(final, rng)
    return truths, quality, final, membership
