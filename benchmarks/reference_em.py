"""Pre-refactor reference EM implementations (frozen for parity).

Faithful copies of the global-array EM inner loops the methods had
*before* the sharded map-reduce refactor (``np.add.at`` scatter /
``np.bincount`` closures over one flat answer array).  Two consumers
pin against them and must share one copy so the reference cannot drift:

* ``tests/properties/test_property_sharded.py`` — bit-for-bit parity of
  the single-shard refactored path;
* ``benchmarks/bench_sharded.py`` — wall-clock baseline and the same
  bitwise check at benchmark scale.

Do not "improve" this module: its value is that it stays exactly what
the pre-refactor code computed.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import (
    ConvergenceTracker,
    clamp_golden_values,
    log_normalize_rows,
    normalize_rows,
)
from repro.inference.em import run_em


class ConfusionParams:
    """The (confusion, prior) pair of the pre-refactor D&S/LFC M-step."""

    def __init__(self, confusion, prior):
        self.confusion, self.prior = confusion, prior


def reference_confusion_em(answers, off, bonus, tolerance, max_iter):
    """Pre-refactor D&S/LFC: confusion-matrix EM over global arrays."""
    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices, n_workers = answers.n_choices, answers.n_workers
    diag = np.arange(n_choices)

    def m_step(posterior):
        counts = np.zeros((n_workers, n_choices, n_choices))
        np.add.at(counts, (workers, values), posterior[tasks])
        confusion = counts.transpose(0, 2, 1)
        confusion = confusion + off
        confusion[:, diag, diag] += bonus
        confusion /= confusion.sum(axis=2, keepdims=True)
        prior = posterior.mean(axis=0)
        prior = prior / prior.sum()
        return ConfusionParams(confusion, prior)

    def e_step(params):
        log_conf = np.log(np.clip(params.confusion, 1e-12, None))
        log_post = np.tile(np.log(np.clip(params.prior, 1e-12, None)),
                           (answers.n_tasks, 1))
        contributions = log_conf[workers, :, values]
        np.add.at(log_post, tasks, contributions)
        return log_normalize_rows(log_post)

    start = normalize_rows(answers.vote_counts())
    return run_em(initial_posterior=start, m_step=m_step, e_step=e_step,
                  tolerance=tolerance, max_iter=max_iter)


def reference_zc(answers, tolerance, max_iter):
    """Pre-refactor ZC; returns ``(EMOutcome, final worker quality)``."""
    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices

    def e_step(quality):
        q = np.clip(quality, 1e-10, 1 - 1e-10)
        log_correct = np.log(q)
        log_wrong = np.log((1.0 - q) / max(n_choices - 1, 1))
        log_post = np.zeros((answers.n_tasks, n_choices))
        base = np.bincount(tasks, weights=log_wrong[workers],
                           minlength=answers.n_tasks)
        log_post += base[:, None]
        bonus = (log_correct - log_wrong)[workers]
        np.add.at(log_post, (tasks, values), bonus)
        return log_normalize_rows(log_post)

    def m_step(posterior):
        matched = posterior[tasks, values]
        sums = np.bincount(workers, weights=matched,
                           minlength=answers.n_workers)
        counts = np.maximum(answers.worker_answer_counts(), 1)
        return sums / counts

    start = normalize_rows(answers.vote_counts())
    outcome = run_em(initial_posterior=start, m_step=m_step, e_step=e_step,
                     tolerance=tolerance, max_iter=max_iter)
    return outcome, m_step(outcome.posterior)


def reference_glad(answers, tolerance, max_iter, learning_rate=0.05,
                   gradient_steps=12, prior_strength=0.5):
    """Pre-refactor GLAD (cold start); returns
    ``(posterior, alpha, easiness, tracker)``."""
    from repro.methods.glad import _sigmoid

    tasks, workers = answers.tasks, answers.workers
    values = answers.values.astype(np.int64)
    n_choices = answers.n_choices
    alpha = np.ones(answers.n_workers)
    log_beta = np.zeros(answers.n_tasks)

    def e_step(alpha, log_beta):
        p_correct = _sigmoid(alpha[workers] * np.exp(log_beta[tasks]))
        p_correct = np.clip(p_correct, 1e-10, 1 - 1e-10)
        log_c = np.log(p_correct)
        log_w = np.log((1.0 - p_correct) / max(n_choices - 1, 1))
        log_post = np.zeros((answers.n_tasks, n_choices))
        base = np.bincount(tasks, weights=log_w, minlength=answers.n_tasks)
        log_post += base[:, None]
        np.add.at(log_post, (tasks, values), log_c - log_w)
        return log_normalize_rows(log_post)

    posterior = normalize_rows(answers.vote_counts())
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        match = posterior[tasks, values]
        for _ in range(gradient_steps):
            beta = np.exp(log_beta)
            p = _sigmoid(alpha[workers] * beta[tasks])
            residual = match - p
            grad_alpha = np.bincount(
                workers, weights=residual * beta[tasks],
                minlength=answers.n_workers,
            ) - prior_strength * (alpha - 1.0)
            grad_logbeta = np.bincount(
                tasks, weights=residual * alpha[workers] * beta[tasks],
                minlength=answers.n_tasks,
            ) - prior_strength * log_beta
            alpha = alpha + learning_rate * grad_alpha
            log_beta = log_beta + learning_rate * grad_logbeta
            log_beta = np.clip(log_beta, -5.0, 5.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        posterior = e_step(alpha, log_beta)
        if tracker.update(posterior):
            break
    return posterior, alpha, np.exp(log_beta), tracker


def reference_lfc_n(answers, tolerance, max_iter, min_variance=1e-6,
                    golden=None):
    """Pre-refactor LFC_N; returns ``(truths, variance, tracker)``."""
    tasks, workers, values = answers.tasks, answers.workers, answers.values
    counts_w = np.maximum(answers.worker_answer_counts(), 1)
    counts_t = np.maximum(answers.task_answer_counts(), 1)

    def weighted_truths(variance):
        weights = 1.0 / variance[workers]
        numer = np.bincount(tasks, weights=weights * values,
                            minlength=answers.n_tasks)
        denom = np.bincount(tasks, weights=weights,
                            minlength=answers.n_tasks)
        return numer / np.where(denom > 0, denom, 1.0)

    truths = np.bincount(tasks, weights=values,
                         minlength=answers.n_tasks) / counts_t
    truths = clamp_golden_values(truths, golden)
    tracker = ConvergenceTracker(tolerance=tolerance, max_iter=max_iter)
    while True:
        residual = (values - truths[tasks]) ** 2
        sums = np.bincount(workers, weights=residual,
                           minlength=answers.n_workers)
        variance = np.maximum(sums / counts_w, min_variance)
        truths = clamp_golden_values(weighted_truths(variance), golden)
        if tracker.update(truths):
            break
    return truths, variance, tracker
