"""Table 6 — quality and running time with complete data, all methods.

Regenerates the paper's central comparison on full-size replicas: every
applicable method × every dataset, reporting the task-type metrics and
wall-clock time ('×' where the paper marks the combination unsupported).

Paper reference shape (what to look for in results/table6.txt):

* D_Product — confusion-matrix methods (D&S, BCC, CBCC, LFC) lead on
  F1; MV trails; VI-BP collapses; Minimax has the lowest accuracy band.
* D_PosSent — nearly everything ties in the 93–96% band.
* S_Rel — D&S/BCC/LFC around the top, ZC and CATD *below* MV.
* S_Adult — every method within a few points of 36–44%.
* N_Emotion — Mean at or near the lowest error.
* Time — direct methods ≪ EM methods ≪ sampling/gradient methods,
  with GLAD and Minimax the slowest (as in the paper).
"""

from repro.experiments.comparison import table6, table6_rows
from repro.experiments.reporting import format_table

from .conftest import save_report


def test_table6(benchmark, full_datasets):
    runs = benchmark.pedantic(
        lambda: table6(full_datasets, seed=0), rounds=1, iterations=1)

    order = list(full_datasets)
    headers = ["method"]
    for name in order:
        headers.extend([name, "time"])
    text = format_table(
        headers, table6_rows(runs, order),
        title=("Table 6: quality (accuracy[/F1] or MAE/RMSE) and running "
               "time, complete data"),
    )
    save_report("table6", text)

    # Sanity: all 17 methods ran somewhere, 14 on decision-making data.
    methods = {run.method for run in runs}
    assert len(methods) == 17
    on_product = [r for r in runs if r.dataset == "D_Product"]
    assert len(on_product) == 14
