"""Delta refits vs warm full refits on a growing answer stream.

The measured claim (PR 5 acceptance): with 8 shards and ~3% answer
growth per step, the **delta refit** path (``ExecutionPolicy(refit=
"delta")`` — dirty-shard priming plus converged-shard freezing, see
:mod:`repro.inference.sharded`) beats the **PR 3 warm full refit** —
the same engine, same tier, same tolerance, ``refit="full"`` — by
**>= 3x per refit** on the refits that delta mode targets, while the
stream's final posteriors match the full path to 1e-6 and the labels
agree at >= 0.999.  ``refit="full"`` itself is additionally pinned
bit-identical to a hand-driven warm-refit loop (the pre-delta code
path), so the default mode cannot drift.

Gated scenario — *cohort arrival*: a converged 400k-answer corpus
(task-range-local worker pools, answers ingested in task-creation
order) receives a new task cohort served by its own pool of noisy new
workers, streaming in over five ~0.6% batches (+3% total).  The new
cohort lands in one task-range shard, so each refit is one hard, cold
subproblem (ambiguous new workers need many EM iterations) embedded in
an already-converged stream: the full path pays full E/M sweeps over
every shard for every one of those iterations, the delta path pays for
the dirty shard plus periodic full-verify exchanges.  The >= 3x gate
covers the first two refits — the data-sparse arrivals where the cohort
workers are still ambiguous, which dominate the stream's refit bill;
later refits (cohort nearly saturated) are reported ungated, as are the
growth-rate (1%/3%/10%) and skew (uniform vs hot single-task-range)
trajectory rows measured at a reduced scale.

Delta refits trade a bounded, *verified* approximation for that
speedup: frozen shards may lag the moving parameters by at most
``freeze_tol`` between verify passes (the bench pins ``freeze_tol=3e-8``
against a 1e-7 EM tolerance, which keeps the measured parity well
inside the 1e-6 bound).  When the growth is uniform every shard is
dirty and the win shrinks toward the freezing tail — the uniform rows
document that honestly.

Run ``python -m benchmarks.bench_delta_refit`` for the full-size run,
``--smoke`` for the CI-sized gate, ``--json PATH`` for the
machine-readable ``BENCH_delta_refit.json`` trajectory point.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core.policy import ExecutionPolicy
from repro.core.tasktypes import TaskType
from repro.engine import InferenceEngine
from repro.experiments.reporting import format_table

from .conftest import save_json, save_report

SMOKE_BASE_ANSWERS = 400_000
FULL_BASE_ANSWERS = 1_000_000
TRAJECTORY_BASE_ANSWERS = 60_000
N_SHARDS = 8
GROWTH_STEPS = 5
GROWTH_FRACTION = 0.03
TOLERANCE = 1e-7
FREEZE_TOL = 3e-8
VERIFY_EVERY = 10
MAX_ITER = 500
SPEEDUP_TARGET = 3.0
PARITY_TOLERANCE = 1e-6
AGREEMENT_FLOOR = 0.999
#: Refits covered by the >= 3x gate: the data-sparse cohort arrivals.
GATED_REFITS = 2


# ----------------------------------------------------------------------
# Stream builders
# ----------------------------------------------------------------------

def cohort_stream(base_answers: int, seed: int = 1, redundancy: int = 8,
                  steps: int = GROWTH_STEPS,
                  growth: float = GROWTH_FRACTION) -> list[list[tuple]]:
    """Converged base corpus + a new task cohort with its own noisy
    worker pool arriving over ``steps`` batches (the gated scenario)."""
    rng = np.random.default_rng(seed)
    n_tasks = base_answers // redundancy
    n_workers = max(64, base_answers // 500)
    g = int(base_answers * growth)
    new_tasks = max(2, g // redundancy)
    new_workers = max(8, new_tasks // 20)
    truth = rng.integers(0, 2, n_tasks + new_tasks)
    acc = np.concatenate([rng.beta(6, 2, n_workers),
                          rng.beta(3, 2, new_workers)])  # noisy cohort pool
    # Base answers arrive in task-creation order, so the stream's
    # first-appearance task indexing matches the generator's ids.
    base_t = np.sort(rng.integers(0, n_tasks, base_answers), kind="stable")
    base_w = rng.integers(0, n_workers, base_answers)
    batches = [(base_t, base_w)]
    chunk = g // steps
    for s in range(steps):
        size = chunk if s < steps - 1 else g - chunk * (steps - 1)
        batches.append((n_tasks + rng.integers(0, new_tasks, size),
                        n_workers + rng.integers(0, new_workers, size)))
    out = []
    for t, w in batches:
        correct = rng.random(len(t)) < acc[w]
        v = np.where(correct, truth[t], 1 - truth[t])
        out.append(list(zip(t.tolist(), w.tolist(), v.tolist())))
    return out


def skew_stream(base_answers: int, skew: str, growth: float,
                seed: int = 0, redundancy: int = 8,
                steps: int = 3) -> list[list[tuple]]:
    """Fixed task/worker universe growing by ``growth`` per step,
    either uniformly or concentrated on the newest task cohort (the
    trajectory scenarios)."""
    rng = np.random.default_rng(seed)
    n_tasks = base_answers // redundancy
    n_workers = max(64, base_answers // 500)
    truth = rng.integers(0, 2, n_tasks)
    acc = rng.beta(6, 2, n_workers)
    base_t = np.sort(rng.integers(0, n_tasks, base_answers), kind="stable")
    batches = [base_t]
    g = int(base_answers * growth)
    hotspan = max(1, n_tasks // 16)
    for _ in range(steps):
        if skew == "hot":
            batches.append(n_tasks - hotspan
                           + rng.integers(0, hotspan, g))
        else:
            batches.append(rng.integers(0, n_tasks, g))
    out = []
    for t in batches:
        w = rng.integers(0, n_workers, len(t))
        correct = rng.random(len(t)) < acc[w]
        v = np.where(correct, truth[t], 1 - truth[t])
        out.append(list(zip(t.tolist(), w.tolist(), v.tolist())))
    return out


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def run_stream(batches, refit: str, *, method: str = "D&S",
               executor: str = "serial", tolerance: float = TOLERANCE,
               freeze_tol: float | None = FREEZE_TOL,
               verify_every: int = VERIFY_EVERY):
    """Feed a stream through one engine; returns per-refit telemetry."""
    policy = ExecutionPolicy(n_shards=N_SHARDS, executor=executor,
                             refit=refit, freeze_tol=freeze_tol,
                             verify_every=verify_every)
    rows = []
    with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                         seed=0) as engine:
        engine.add_answers(batches[0])
        result = engine.infer(method, tolerance=tolerance,
                              max_iter=MAX_ITER)
        for batch in batches[1:]:
            engine.add_answers(batch)
            started = time.perf_counter()
            result = engine.infer(method, tolerance=tolerance,
                                  max_iter=MAX_ITER)
            rows.append({
                "seconds": time.perf_counter() - started,
                "fit_stats": result.fit_stats,
            })
    return result, rows


def _hand_driven_warm_refits(batches, method: str = "D&S"):
    """The pre-delta spelling of the full warm-refit stream: explicit
    ``fit(warm_start=...)`` chaining over engine snapshots."""
    from repro.core.registry import create

    policy = ExecutionPolicy(n_shards=N_SHARDS, executor="serial")
    with InferenceEngine(TaskType.DECISION_MAKING, policy=policy,
                         seed=0) as engine:
        previous = None
        for batch in batches:
            engine.add_answers(batch)
            snapshot = engine.stream.snapshot()
            instance = create(method, seed=0, tolerance=TOLERANCE,
                              max_iter=MAX_ITER, policy=policy)
            previous = instance.fit(snapshot, warm_start=previous)
    return previous


def run_cohort_benchmark(base_answers: int):
    """The gated cohort-arrival comparison; returns (report rows, checks,
    json payload)."""
    batches = cohort_stream(base_answers)
    full, full_rows = run_stream(batches, "full")
    delta, delta_rows = run_stream(batches, "delta")

    # refit="full" must be bit-identical to the pre-delta warm-refit
    # loop.  The baseline is driven the pre-delta way — explicit
    # warm_start chaining over snapshots, no refit policy, no engine
    # cache — so a regression of the full path cannot hide behind
    # comparing the same code to itself.
    baseline = _hand_driven_warm_refits(batches)
    bitwise = (np.array_equal(full.posterior, baseline.posterior)
               and np.array_equal(full.truths, baseline.truths))

    speedups = [f["seconds"] / d["seconds"]
                for f, d in zip(full_rows, delta_rows)]
    parity = float(np.abs(full.posterior - delta.posterior).max())
    agreement = float((full.truths == delta.truths).mean())
    rows = []
    for i, (f, d, s) in enumerate(zip(full_rows, delta_rows, speedups)):
        fs = d["fit_stats"]
        rows.append([
            i + 1, "gated" if i < GATED_REFITS else "",
            f"{f['seconds'] * 1e3:.0f}ms",
            f"{f['fit_stats'].iterations}",
            f"{d['seconds'] * 1e3:.0f}ms",
            f"{fs.iterations}",
            f"{fs.dirty_shards}/{fs.n_shards}",
            f"{fs.e_block_calls}",
            f"{f['fit_stats'].e_block_calls}",
            f"{fs.verify_passes}",
            f"{s:.2f}x",
        ])
    gated = float(np.mean(speedups[:GATED_REFITS]))
    checks = {
        "gated_speedup": gated,
        "mean_speedup": float(np.mean(speedups)),
        "parity": parity,
        "agreement": agreement,
        "full_bitwise": bitwise,
    }
    payload = {
        "scenario": "cohort_arrival",
        "base_answers": base_answers,
        "n_shards": N_SHARDS,
        "tolerance": TOLERANCE,
        "freeze_tol": FREEZE_TOL,
        "verify_every": VERIFY_EVERY,
        "refit_seconds_full": [r["seconds"] for r in full_rows],
        "refit_seconds_delta": [r["seconds"] for r in delta_rows],
        "speedups": speedups,
        "delta_fit_stats": [r["fit_stats"].as_dict() for r in delta_rows],
        **checks,
    }
    return rows, checks, payload


def run_trajectory(base_answers: int):
    """Ungated growth-rate x skew rows (the perf trajectory)."""
    rows, points = [], []
    for skew in ("hot", "uniform"):
        for growth in (0.01, 0.03, 0.10):
            batches = skew_stream(base_answers, skew, growth)
            full, full_rows = run_stream(batches, "full",
                                         tolerance=1e-6, freeze_tol=None)
            delta, delta_rows = run_stream(batches, "delta",
                                           tolerance=1e-6, freeze_tol=None)
            speedup = (np.mean([r["seconds"] for r in full_rows])
                       / np.mean([r["seconds"] for r in delta_rows]))
            parity = float(np.abs(full.posterior - delta.posterior).max())
            agreement = float((full.truths == delta.truths).mean())
            dirty = delta_rows[-1]["fit_stats"].dirty_shards
            rows.append([
                skew, f"{growth:.0%}", f"{dirty}/{N_SHARDS}",
                f"{np.mean([r['seconds'] for r in full_rows]) * 1e3:.0f}ms",
                f"{np.mean([r['seconds'] for r in delta_rows]) * 1e3:.0f}ms",
                f"{speedup:.2f}x", f"{parity:.1e}", f"{agreement:.4f}",
            ])
            points.append({"skew": skew, "growth": growth,
                           "speedup": float(speedup), "parity": parity,
                           "agreement": agreement})
    return rows, points


def enforce(checks: dict) -> None:
    assert checks["full_bitwise"], (
        "refit='full' diverged from the pre-delta warm-refit loop; the "
        "default mode must stay bit-identical"
    )
    assert checks["agreement"] >= AGREEMENT_FLOOR, (
        f"label agreement {checks['agreement']:.4f} < {AGREEMENT_FLOOR}"
    )
    assert checks["parity"] < PARITY_TOLERANCE, (
        f"delta-vs-full posterior parity {checks['parity']:.2e} >= "
        f"{PARITY_TOLERANCE}"
    )
    assert checks["gated_speedup"] >= SPEEDUP_TARGET, (
        f"cohort-arrival refits only {checks['gated_speedup']:.2f}x "
        f"faster under refit='delta'; target is {SPEEDUP_TARGET}x"
    )


def run_benchmark(base_answers: int, trajectory_answers: int | None,
                  json_path: str | None = None):
    rows, checks, payload = run_cohort_benchmark(base_answers)
    title = (
        f"Delta refits vs warm full refits — D&S, {N_SHARDS} shards, "
        f"serial tier, {base_answers:,} base answers, new-cohort stream "
        f"(+{GROWTH_FRACTION:.0%} over {GROWTH_STEPS} refits) | gated "
        f"refits (first {GATED_REFITS}): {checks['gated_speedup']:.2f}x "
        f"(target >= {SPEEDUP_TARGET}x), all refits "
        f"{checks['mean_speedup']:.2f}x | posterior parity "
        f"{checks['parity']:.1e}, label agreement "
        f"{checks['agreement']:.4f}, refit='full' bit-identical: "
        f"{'yes' if checks['full_bitwise'] else 'NO'}"
    )
    report = format_table(
        ["refit", "gate", "full", "full it", "delta", "delta it",
         "dirty", "delta E-blocks", "full E-blocks", "verifies",
         "speedup"],
        rows, title=title)
    if trajectory_answers:
        traj_rows, points = run_trajectory(trajectory_answers)
        report += "\n\n" + format_table(
            ["skew", "growth/step", "dirty", "full refit", "delta refit",
             "speedup", "parity", "agreement"],
            traj_rows,
            title=(f"Growth x skew trajectory — D&S, {N_SHARDS} shards, "
                   f"{trajectory_answers:,} base answers, tol=1e-6, "
                   f"freeze_tol=tolerance (ungated)"))
        payload["trajectory"] = points
    save_report("delta_refit", report)
    save_json("delta_refit", payload, json_path)
    return checks


def test_delta_refit(benchmark):
    """CI entry point: smoke-sized gate through the report fixture."""
    checks = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_BASE_ANSWERS, None),
        rounds=1, iterations=1)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI-sized gate ({SMOKE_BASE_ANSWERS:,} base "
                             f"answers, reduced trajectory)")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"base answer count "
                             f"(default {FULL_BASE_ANSWERS:,})")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_delta_refit.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    base = args.answers or (SMOKE_BASE_ANSWERS if args.smoke
                            else FULL_BASE_ANSWERS)
    trajectory = TRAJECTORY_BASE_ANSWERS if args.smoke else 4 * TRAJECTORY_BASE_ANSWERS
    checks = run_benchmark(base, trajectory, args.json_path)
    enforce(checks)
    print("all delta-refit checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
