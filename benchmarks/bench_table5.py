"""Table 5 — dataset statistics, plus the Section 6.2.1 consistency C.

Paper reference values:

    dataset     #tasks  #truth  |V|     |V|/n  |W|   C
    D_Product   8,315   8,315   24,945  3      176   0.38
    D_PosSent   1,000   1,000   20,000  20     85    0.85
    S_Rel       20,232  4,460   98,453  4.9    766   0.82
    S_Adult     11,040  1,517   92,721  8.4    825   0.39
    N_Emotion   700     700     7,000   10     38    20.44
"""

from repro.experiments.reporting import format_table
from repro.experiments.stats import table5

from .conftest import save_report


def test_table5(benchmark, full_datasets):
    rows = benchmark.pedantic(lambda: table5(full_datasets),
                              rounds=1, iterations=1)
    text = format_table(
        ["dataset", "#tasks", "#truth", "|V|", "|V|/n", "|W|", "C"],
        [[r["dataset"], r["n_tasks"], r["n_truth"], r["n_answers"],
          r["redundancy"], r["n_workers"], r["consistency_C"]]
         for r in rows],
        title="Table 5: dataset statistics (replicas)",
    )
    save_report("table5", text)
    assert len(rows) == 5
