"""Extension — planning estimators (paper §7, directions 3–5).

Three open questions from the paper's conclusion, answered with the
planning toolbox on the D_PosSent replica:

* §7.3 "how to estimate the data redundancy with stable quality?"
  → saturation-redundancy estimate + fitted quality ceiling;
* §7.4 "is it possible to estimate the benefit of qualification test?"
  → bootstrap benefit estimate with a worthwhile/not verdict;
* §7.5 "is it possible to estimate the improvement with hidden test?"
  → ditto for planted golden tasks.
"""

from repro.experiments.reporting import format_series, format_table
from repro.planning import (
    estimate_hidden_benefit,
    estimate_qualification_benefit,
    estimate_saturation_redundancy,
    fit_saturation_model,
    redundancy_curve,
)

from .conftest import save_report

GRID = (1, 2, 3, 5, 8, 12, 16, 20)


def test_ext_redundancy_planning(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_PosSent")

    def run():
        curve = redundancy_curve(dataset, "MV", GRID, n_repeats=3,
                                 base_seed=0)
        r_hat = estimate_saturation_redundancy(GRID, curve, epsilon=0.005)
        model = fit_saturation_model(GRID, curve)
        return curve, r_hat, model

    curve, r_hat, model = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        format_series("r", list(GRID), {"MV": curve},
                      title="Extension (§7.3): MV accuracy vs redundancy"),
        "",
        f"estimated saturation redundancy r̂ = {r_hat}",
        f"fitted ceiling q_inf = {model.q_inf:.4f}",
        f"marginal gain at r=20: {model.marginal_gain(20):+.5f}",
    ]
    save_report("ext_planning_redundancy", "\n".join(lines))

    # The paper observes D_PosSent saturates well before r=20.
    assert r_hat < 20
    assert model.marginal_gain(20) < 0.01


def test_ext_benefit_planning(benchmark, sweep_dataset):
    dataset = sweep_dataset("D_Product")

    def run():
        qualification = estimate_qualification_benefit(
            dataset, "PM", n_golden=20, n_repeats=5, base_seed=0)
        hidden = estimate_hidden_benefit(
            dataset, "CATD", percentage=20, n_repeats=5, base_seed=0)
        return qualification, hidden

    qualification, hidden = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [est.protocol, est.method, est.metric,
         round(est.baseline, 4), f"{est.mean_delta:+.4f}",
         round(est.std_delta, 4), "yes" if est.worthwhile else "no"]
        for est in (qualification, hidden)
    ]
    save_report("ext_planning_benefit", format_table(
        ["protocol", "method", "metric", "baseline", "mean delta",
         "std", "worthwhile?"],
        rows,
        title="Extension (§7.4–7.5): golden-task benefit estimates "
              "(D_Product)"))

    # Deltas are sane in magnitude (no blow-ups).
    assert abs(qualification.mean_delta) < 0.2
    assert abs(hidden.mean_delta) < 0.2
