"""Figure 2 — worker-redundancy histograms (the long tail).

The paper's observation: "most workers answer a few tasks and only a
few workers answer plenty of tasks".  The report shows, per dataset,
the histogram of tasks-per-worker and the share of all answers
contributed by the busiest 20% of workers.
"""

from repro.experiments.reporting import format_table
from repro.experiments.stats import figure2, figure2_tail_shares

from .conftest import save_report


def test_figure2(benchmark, full_datasets):
    hists, shares = benchmark.pedantic(
        lambda: (figure2(full_datasets), figure2_tail_shares(full_datasets)),
        rounds=1, iterations=1)

    sections = []
    for name, hist in hists.items():
        rows = [[f"{lo:.0f}–{hi:.0f}", count]
                for lo, hi, count in hist.rows()]
        sections.append(format_table(
            ["tasks answered", "#workers"], rows,
            title=(f"Figure 2 ({name}): worker redundancy — busiest 20% "
                   f"of workers give {shares[name]:.0%} of answers"),
        ))
    save_report("figure2", "\n\n".join(sections))

    # Long-tail sanity: in every dataset the head dominates.
    assert all(share > 0.35 for share in shares.values())
