"""Extension — online task assignment (paper §7, future direction 6).

"It is interesting to see how the answers collected by different task
assignment strategies can affect the truth inference quality."

Runs the same D_Product-style workload (imbalanced binary tasks, mixed
worker pool with spammers) under four assignment policies at an equal
answer budget and reports the quality trajectory of each.
"""

import numpy as np

from repro.experiments.reporting import format_series, format_table
from repro.simulation import asymmetric_binary_worker, spammer
from repro.tasking import compare_policies, create_policy

from .conftest import save_report

POLICY_NAMES = ("random", "round-robin", "uncertainty", "expected-accuracy")
N_TASKS = 600
N_ANSWERS = 3600  # budget: 6 answers per task on average
REFRESH = 600


def _workload(seed=0):
    rng = np.random.default_rng(seed)
    truths = (rng.random(N_TASKS) < 0.2).astype(np.int64)
    workers = []
    for _ in range(24):
        draw = rng.random()
        if draw < 0.15:
            workers.append(spammer(2))
        else:
            workers.append(asymmetric_binary_worker(
                recall_true=float(rng.uniform(0.5, 0.95)),
                recall_false=float(rng.uniform(0.7, 0.95)),
            ))
    return truths, workers


def test_ext_assignment_policies(benchmark):
    truths, workers = _workload()
    policies = [create_policy(name) for name in POLICY_NAMES]

    traces = benchmark.pedantic(
        lambda: compare_policies(truths, workers, policies,
                                 n_answers=N_ANSWERS, seed=0,
                                 refresh_every=REFRESH),
        rounds=1, iterations=1)

    budgets = [point[0] for point in traces["random"].checkpoints]
    series = {
        name: [point[1] for point in trace.checkpoints]
        for name, trace in traces.items()
    }
    text = format_series(
        "answers", budgets, series,
        title=("Extension (paper §7.6): accuracy vs answer budget per "
               "assignment policy"))
    finals = format_table(
        ["policy", "final accuracy"],
        [[name, round(trace.final_accuracy, 4)]
         for name, trace in traces.items()],
    )
    save_report("ext_assignment", text + "\n\n" + finals)

    # Smart policies should not lose to random at the full budget.
    assert traces["expected-accuracy"].final_accuracy >= \
        traces["random"].final_accuracy - 0.01
    assert traces["uncertainty"].final_accuracy >= \
        traces["random"].final_accuracy - 0.01
