"""Sharded map-reduce EM benchmark on a million-answer synthetic load.

Three claims are measured and enforced:

1. **Exactness** — the single-shard sharded path reproduces the
   *pre-refactor* global-array EM bit-for-bit (the reference
   implementations in :mod:`benchmarks.reference_em` are faithful
   copies of the old inner loops, shared with the parity test suite).
2. **Agreement** — the 8-shard fit agrees with the single-shard fit on
   at least 99.9% of inferred truths.
3. **Speedup** — the 8-shard fit beats the pre-refactor EM by >= 2x
   wall-clock.  Two effects stack: the frozen CSR scatter operators
   (single-core, what a 1-core CI runner can verify — they carry D&S
   past 2x alone) and process fan-out over shards on multi-core hosts
   (what GLAD, whose gradient loop is pure elementwise compute, needs
   to reach 2x).  On single-core hosts the GLAD target degrades
   gracefully to "no slower than the pre-refactor loop" and the report
   records the machine context.

Run ``python -m benchmarks.bench_sharded`` for the full 1M-answer load,
``--smoke`` for the CI-sized variant; the pytest entry point runs the
smoke size through the shared report fixture.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.policy import ExecutionPolicy
from repro.core.registry import create
from repro.core.tasktypes import TaskType
from repro.engine.sharded import ShardedInferenceEngine
from repro.experiments.reporting import format_table

from .conftest import save_json, save_report
from .reference_em import reference_confusion_em, reference_glad

FULL_ANSWERS = 1_000_000
SMOKE_ANSWERS = 30_000
N_SHARDS = 8
REDUNDANCY = 8
MAX_ITER = 50
GLAD_MAX_ITER = 15


def synthetic_answers(n_answers: int, seed: int = 0) -> AnswerSet:
    """A decision-making workload with a realistic worker-accuracy mix."""
    rng = np.random.default_rng(seed)
    n_tasks = max(1, n_answers // REDUNDANCY)
    n_workers = max(8, n_tasks // 300)
    truth = rng.integers(0, 2, n_tasks)
    accuracy = rng.beta(6.0, 2.0, n_workers)  # mostly good, some spammy
    tasks = rng.integers(0, n_tasks, n_answers)
    workers = rng.integers(0, n_workers, n_answers)
    correct = rng.random(n_answers) < accuracy[workers]
    values = np.where(correct, truth[tasks], 1 - truth[tasks])
    return AnswerSet(tasks, workers, values, TaskType.DECISION_MAKING,
                     n_tasks=n_tasks, n_workers=n_workers)


# ----------------------------------------------------------------------

def _timed(fn, rounds: int = 2):
    """Best-of-``rounds`` wall-clock timing (first round's result)."""
    result = None
    best = float("inf")
    for attempt in range(rounds):
        started = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - started)
        if attempt == 0:
            result = out
    return result, best


def run_benchmark(n_answers: int, n_shards: int = N_SHARDS):
    answers = synthetic_answers(n_answers)
    cpus = os.cpu_count() or 1
    # The >=2x wall-clock targets are claims about the large-load regime
    # (the fixed per-fit costs amortise over many heavy iterations); the
    # smoke load only gates correctness plus a no-collapse floor.  D&S
    # clears 2x even on one core (the fused CSR kernels alone); GLAD's
    # gradient loop is pure elementwise compute, so its 2x needs real
    # cores for the process fan-out and degrades to a no-regression
    # check on single-core hosts.
    full_scale = n_answers >= 500_000
    ds_target = 2.0 if full_scale else 0.5
    glad_target = (2.0 if cpus > 1 else 0.8) if full_scale else 0.5
    # Processes only pay off at scale: per-fit pool spawn plus the
    # per-phase IPC dwarfs a smoke-sized fit, so the smoke gate (and any
    # single-core host) stays on the in-process tier.
    engine = ShardedInferenceEngine(ExecutionPolicy(
        n_shards=n_shards,
        max_workers=min(n_shards, cpus),
        executor="process" if (cpus > 1 and full_scale) else "serial",
    ))
    jobs = [
        ("D&S", MAX_ITER,
         lambda tol, it: reference_confusion_em(
             answers, 0.01, 0.0, tol, it).posterior, ds_target),
        ("GLAD", GLAD_MAX_ITER,
         lambda tol, it: reference_glad(answers, tol, it)[0], glad_target),
    ]
    rows, checks = [], []
    for name, max_iter, reference, target in jobs:
        method = create(name, seed=0, max_iter=max_iter)
        naive_posterior, naive_s = _timed(
            lambda: reference(method.tolerance, max_iter))
        one_shard, one_s = _timed(
            lambda: create(name, seed=0, max_iter=max_iter).fit(answers))
        sharded, sharded_s = _timed(
            lambda: engine.fit(answers, name, max_iter=max_iter))
        bitwise = np.array_equal(naive_posterior, one_shard.posterior)
        agreement = float((sharded.truths == one_shard.truths).mean())
        speedup = naive_s / max(sharded_s, 1e-9)
        rows.append([
            name, f"{answers.n_answers:,}", f"{naive_s:.2f}s",
            f"{one_s:.2f}s", f"{sharded_s:.2f}s", f"{speedup:.2f}x",
            f"{agreement:.4f}", "yes" if bitwise else "NO",
        ])
        checks.append((name, bitwise, agreement, speedup, target))
    title = (
        f"Sharded map-reduce EM vs pre-refactor EM — "
        f"{answers.n_answers:,} answers, {answers.n_tasks:,} tasks, "
        f"{answers.n_workers} workers | {n_shards} shards, "
        f"executor={engine.last_mode or engine.executor}, {cpus} cpu(s)"
    )
    report = format_table(
        ["method", "answers", "pre-refactor", "sharded(1)",
         f"sharded({n_shards})", "speedup", "truth agreement",
         "1-shard bitwise"],
        rows, title=title)
    payload = {
        "n_answers": answers.n_answers,
        "n_shards": n_shards,
        "executor": engine.last_mode or engine.executor,
        "methods": [
            {"method": name, "bitwise": bool(bitwise),
             "agreement": agreement, "speedup": speedup, "target": target}
            for name, bitwise, agreement, speedup, target in checks
        ],
    }
    return report, checks, payload


def enforce(checks) -> None:
    for name, bitwise, agreement, speedup, target in checks:
        assert bitwise, f"{name}: single-shard path diverged bit-wise " \
                        f"from the pre-refactor EM"
        assert agreement >= 0.999, (
            f"{name}: sharded truth agreement {agreement:.4f} < 0.999"
        )
        assert speedup >= target, (
            f"{name}: speedup {speedup:.2f}x below the "
            f"{target:.1f}x target for this machine"
        )


def test_sharded_speedup(benchmark):
    """CI entry point: smoke-sized load through the report fixture."""
    (report, checks, payload) = benchmark.pedantic(
        lambda: run_benchmark(SMOKE_ANSWERS), rounds=1, iterations=1)
    save_report("sharded_em", report)
    save_json("sharded", payload)
    enforce(checks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load ({SMOKE_ANSWERS:,} answers) "
                             f"for CI smoke runs")
    parser.add_argument("--answers", type=int, default=None,
                        help=f"answer count (default {FULL_ANSWERS:,})")
    parser.add_argument("--shards", type=int, default=N_SHARDS)
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write BENCH_sharded.json to PATH (a "
                             "directory or exact file; default "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)
    n_answers = args.answers or (SMOKE_ANSWERS if args.smoke
                                 else FULL_ANSWERS)
    report, checks, payload = run_benchmark(n_answers, n_shards=args.shards)
    save_report("sharded_em", report)
    save_json("sharded", payload, args.json_path)
    enforce(checks)
    print("all sharded-EM checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
