"""Table 7 — the effect of qualification test.

Protocol (paper §6.3.2): bootstrap-sample 20 golden answers per worker,
initialise the worker's quality from them, rerun each of the 8 methods
that accept an initial quality, and report c̃ and Δ = c̃ − c.

Paper reference shape: benefits are small and mixed — positive for
most methods on D_Product (redundancy 3 benefits from initialisation),
≈ 0 on D_PosSent (redundancy 20 doesn't need it), and *negative* for
the numeric methods on N_Emotion.
"""

from repro.experiments.qualification import qualification_experiment
from repro.experiments.reporting import format_table

from .conftest import save_report

N_REPEATS = 3
DATASETS = ("D_Product", "D_PosSent", "N_Emotion")


def test_table7(benchmark, sweep_dataset):
    def run():
        outcomes = {}
        for name in DATASETS:
            outcomes[name] = qualification_experiment(
                sweep_dataset(name), n_golden=20,
                n_repeats=N_REPEATS, base_seed=0)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for dataset_name, results in outcomes.items():
        rows = []
        for outcome in results:
            for metric in outcome.baseline:
                rows.append([
                    outcome.method, metric,
                    round(outcome.baseline[metric], 4),
                    round(outcome.with_test[metric], 4),
                    f"{outcome.delta[metric]:+.4f}",
                ])
        sections.append(format_table(
            ["method", "metric", "c (no test)", "c~ (with test)", "delta"],
            rows,
            title=f"Table 7 ({dataset_name}): qualification-test effect",
        ))
    save_report("table7", "\n\n".join(sections))

    # The paper's headline: improvements are marginal — no method gains
    # more than a few points from the qualification test.
    for results in outcomes.values():
        for outcome in results:
            for metric, delta in outcome.delta.items():
                if metric in ("accuracy", "f1"):
                    assert abs(delta) < 0.12, (outcome.method, metric, delta)
