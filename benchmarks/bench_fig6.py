"""Figure 6 — MAE/RMSE vs redundancy, numeric dataset (N_Emotion).

Paper reference shape: errors of almost all methods decrease with
increasing r; Mean stays at or near the bottom of both error curves.
"""

from repro.experiments.charts import ascii_chart
from repro.experiments.redundancy import sweep_redundancy
from repro.experiments.reporting import format_series

from .conftest import save_report

N_REPEATS = 3


def test_figure6_n_emotion(benchmark, sweep_dataset):
    dataset = sweep_dataset("N_Emotion")
    sweep = benchmark.pedantic(
        lambda: sweep_redundancy(
            dataset, redundancies=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
            n_repeats=N_REPEATS, base_seed=0),
        rounds=1, iterations=1)
    sections = [
        format_series("r", sweep.redundancies, sweep.series_for("mae"),
                      title="Figure 6(a) N_Emotion: MAE vs redundancy"),
        ascii_chart(sweep.redundancies, sweep.series_for("mae"),
                    title="Figure 6(a) rendered (errors fall with r):",
                    y_label="MAE"),
        format_series("r", sweep.redundancies, sweep.series_for("rmse"),
                      title="Figure 6(b) N_Emotion: RMSE vs redundancy"),
    ]
    save_report("figure6_n_emotion", "\n\n".join(sections))

    mae_series = sweep.series_for("mae")
    # Errors decrease with redundancy for every method.
    for name, series in mae_series.items():
        assert series[-1] < series[0], name
    # Mean finishes at or near the best error (within 8%).
    finals = {name: series[-1] for name, series in mae_series.items()}
    assert finals["Mean"] <= min(finals.values()) * 1.08
