"""Durability tier under the streaming engine.

Three cooperating pieces, one store directory:

* :class:`~repro.store.log.AnswerLog` — an append-only WAL-mode SQLite
  log every acknowledged ``add_answers`` batch writes through to, with
  per-record duplicate-policy outcomes so replay is verifiably
  bit-faithful;
* :class:`~repro.store.snapshots.SnapshotStore` — periodic fit-state
  snapshots keyed by log sequence number, so recovery resumes *warm*
  (replay the tail, then a delta refit) instead of refitting cold;
* :class:`~repro.store.spill.ShardSpill` — cold-shard arrays spilled
  to memory-mapped files past an idle TTL, paged back in on demand.

Engines opt in through
:class:`~repro.core.policy.StorePolicy` (``ExecutionPolicy(store=...)``)
and resume with :meth:`~repro.engine.engine.InferenceEngine.recover`.
"""

from .log import AnswerLog, decode_field, encode_field
from .snapshots import SnapshotStore
from .spill import ShardSpill
from .store import AnswerStore

__all__ = [
    "AnswerLog",
    "AnswerStore",
    "ShardSpill",
    "SnapshotStore",
    "decode_field",
    "encode_field",
]
