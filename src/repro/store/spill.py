"""Cold-shard spill: idle task-sorted arrays as memory-mapped files.

The warm in-process shard layout
(:class:`~repro.engine.runtime.SerialShardSession`) keeps every shard's
task-sorted ``(tasks, workers, values)`` arrays resident — a second
copy of the whole stream.  With a :class:`ShardSpill` attached, shards
that sat untouched past a TTL write those arrays to ``.npy`` files and
swap the resident copies for ``numpy`` memory-maps of the same data:
byte-for-byte the same arrays, but backed by the page cache instead of
anonymous memory, so the OS reclaims them under pressure and pages them
back in on demand.  Everything downstream — the
:class:`~repro.core.shards.AnswerShard` views, the per-shard EM
operators — reads the mapped arrays transparently; a spilled shard
that later receives new answers is concatenated back into a resident
array (it is hot again) and its spill files dropped.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["ShardSpill"]

#: Default idle TTL (seconds) when a policy enables spilling without
#: choosing one.
DEFAULT_SPILL_TTL = 300.0

_FIELDS = ("tasks", "workers", "values")


class ShardSpill:
    """Writes shard arrays under ``directory`` and maps them back."""

    def __init__(self, directory: str,
                 ttl: float = DEFAULT_SPILL_TTL) -> None:
        self.directory = directory
        self.ttl = float(ttl)
        #: Spill/restore counters (tests and benchmarks).
        self.spills = 0
        self.restores = 0

    def _path(self, tag: str, index: int, field: str) -> str:
        return os.path.join(self.directory,
                            f"{tag}-shard{index:04d}-{field}.npy")

    def spill(self, tag: str, index: int, arrays: tuple) -> tuple:
        """Persist one shard's arrays; returns read-only mmap views."""
        os.makedirs(self.directory, exist_ok=True)
        views = []
        for field, array in zip(_FIELDS, arrays):
            path = self._path(tag, index, field)
            np.save(path, np.ascontiguousarray(array))
            views.append(np.load(path, mmap_mode="r"))
        self.spills += 1
        return tuple(views)

    def discard(self, tag: str, index: int) -> None:
        """Drop one shard's spill files (it went hot again)."""
        for field in _FIELDS:
            try:
                os.unlink(self._path(tag, index, field))
            except OSError:
                pass
        self.restores += 1
