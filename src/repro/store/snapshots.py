"""Fit-state snapshots keyed by log sequence number.

A snapshot is the durable twin of the engine's in-memory per-method
fit cache: the full :class:`~repro.core.result.InferenceResult`
(truths, posterior, worker quality — and, for sharded delta-capable
fits, the :class:`~repro.inference.sharded.ShardState` with its pinned
task cuts), plus the stream coordinates it was fitted at (``seq`` =
stream version, replacement counter, entity counts) and the method
kwargs it was fitted with.

Recovery loads the newest snapshot per method, seeds the engine cache
with it, and replays only the log tail past ``seq`` — so the first
post-recovery refit is *warm* (and, when the shard cuts still align, a
true delta refit), not a cold fit of the whole history.  Rows are
pruned to the newest ``keep`` per method; payloads are
pickled + compressed (everything in them already crosses process
boundaries in the process-tier runtime, so picklability is a given).
"""

from __future__ import annotations

import pickle
import sqlite3
import zlib

from ..exceptions import StoreError

__all__ = ["SnapshotStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS snapshots (
    method       TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    replacements INTEGER NOT NULL,
    payload      BLOB NOT NULL,
    PRIMARY KEY (method, seq)
);
"""


class SnapshotStore:
    """The snapshots table over the store's SQLite connection."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn
        conn.executescript(_SCHEMA)
        conn.commit()

    def save(self, method: str, *, seq: int, replacements: int,
             payload: dict, keep: int = 2) -> None:
        """Durably record one fit snapshot and prune old ones."""
        blob = zlib.compress(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        try:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO snapshots "
                    "(method, seq, replacements, payload) "
                    "VALUES (?, ?, ?, ?)",
                    (method, int(seq), int(replacements), blob))
                self._conn.execute(
                    "DELETE FROM snapshots WHERE method = ? "
                    "AND seq NOT IN (SELECT seq FROM snapshots "
                    "WHERE method = ? ORDER BY seq DESC LIMIT ?)",
                    (method, method, int(keep)))
        except sqlite3.Error as exc:
            raise StoreError(
                f"failed to snapshot {method!r} at seq {seq}: {exc}"
            ) from exc

    def methods(self) -> list[str]:
        """Method names with at least one snapshot."""
        rows = self._conn.execute(
            "SELECT DISTINCT method FROM snapshots ORDER BY method"
        ).fetchall()
        return [row[0] for row in rows]

    def load_latest(self, method: str, *,
                    max_seq: int | None = None) -> tuple | None:
        """The newest usable snapshot: ``(seq, replacements, payload)``.

        ``max_seq`` bounds the search to snapshots at or before a log
        position (a snapshot *ahead* of the replayed log — possible
        only with a corrupt store — must never seed the cache).
        """
        if max_seq is None:
            row = self._conn.execute(
                "SELECT seq, replacements, payload FROM snapshots "
                "WHERE method = ? ORDER BY seq DESC LIMIT 1",
                (method,)).fetchone()
        else:
            row = self._conn.execute(
                "SELECT seq, replacements, payload FROM snapshots "
                "WHERE method = ? AND seq <= ? ORDER BY seq DESC LIMIT 1",
                (method, int(max_seq))).fetchone()
        if row is None:
            return None
        seq, replacements, blob = row
        try:
            payload = pickle.loads(zlib.decompress(blob))
        except Exception as exc:
            raise StoreError(
                f"corrupt snapshot for {method!r} at seq {seq}: {exc}"
            ) from exc
        return int(seq), int(replacements), payload

    def latest_seq(self, method: str) -> int:
        """Newest snapshot position for ``method`` (0 if none)."""
        row = self._conn.execute(
            "SELECT MAX(seq) FROM snapshots WHERE method = ?",
            (method,)).fetchone()
        return int(row[0] or 0)

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM snapshots").fetchone()
        return int(row[0])
