"""The durable answer store: one directory, one SQLite database.

:class:`AnswerStore` owns the store directory and the WAL-mode SQLite
connection shared by the :class:`~repro.store.log.AnswerLog` (answer
records + meta) and the :class:`~repro.store.snapshots.SnapshotStore`
(fit state).  The layout is::

    <path>/
        answers.sqlite      # log + meta + snapshots (WAL mode)
        answers.sqlite-wal  # SQLite write-ahead log
        spill/              # cold-shard .npy spill files

The pragmas follow the standard durable-ingest recipe:
``journal_mode=WAL`` (readers never block the writer, committed
transactions survive ``kill -9``), ``synchronous`` per the store
policy, and a generous ``busy_timeout`` so a recovering reader and a
draining writer can briefly overlap.
"""

from __future__ import annotations

import os
import sqlite3

from ..exceptions import StoreError
from .log import FORMAT_VERSION, AnswerLog
from .snapshots import SnapshotStore

__all__ = ["AnswerStore"]

DB_FILENAME = "answers.sqlite"
SPILL_DIRNAME = "spill"

_SYNC_PRAGMAS = {"off": "OFF", "normal": "NORMAL", "full": "FULL"}


class AnswerStore:
    """Open (creating if needed) the store at ``path``."""

    def __init__(self, path: str, *, sync: str = "normal") -> None:
        if sync not in _SYNC_PRAGMAS:
            raise StoreError(
                f"sync must be one of {sorted(_SYNC_PRAGMAS)}, "
                f"got {sync!r}"
            )
        self.path = path
        self.db_path = os.path.join(path, DB_FILENAME)
        self.spill_dir = os.path.join(path, SPILL_DIRNAME)
        try:
            os.makedirs(path, exist_ok=True)
            # check_same_thread=False: batches may be acknowledged from
            # a feeding thread while snapshots land from the fitting
            # one; the engine serialises actual use.
            self._conn = sqlite3.connect(self.db_path,
                                         check_same_thread=False)
        except (OSError, sqlite3.Error) as exc:
            raise StoreError(
                f"cannot open answer store at {path}: {exc}"
            ) from exc
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={_SYNC_PRAGMAS[sync]}")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self.log = AnswerLog(self._conn)
        self.snapshots = SnapshotStore(self._conn)
        stored = self.log.read_meta().get("format")
        if stored is not None and stored != FORMAT_VERSION:
            raise StoreError(
                f"{self.db_path} has store format {stored}, "
                f"this build reads format {FORMAT_VERSION}"
            )

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    def close(self) -> None:
        """Close the database connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "AnswerStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"AnswerStore({self.path!r})"
