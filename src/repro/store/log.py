"""Append-only WAL-mode SQLite answer log.

:class:`AnswerLog` is the write-through target of a
:class:`~repro.engine.stream.StreamingAnswerSet`: every acknowledged
``add_answers`` batch lands as **one row in one SQLite transaction**,
carrying the batch's ``(task, worker, value)`` records, each record's
duplicate-policy outcome (append vs in-place replace), and the ``seq``
range the records occupy — ``seq`` being the stream's version counter
after applying each record.  Replaying the log through a fresh stream
is therefore **verifiably bit-faithful**: after replay, the stream's
version must equal the last logged ``seq`` and its replacement counter
must equal the logged replace total — any divergence (corrupted log,
mismatched ``on_duplicate``) raises
:class:`~repro.exceptions.RecoveryError` instead of silently serving
different truth.

Batch atomicity is the crash contract: a batch is *acknowledged* only
once its transaction committed, and a crash (even ``kill -9``) between
transactions loses nothing acknowledged — WAL mode keeps committed
transactions durable across process death.  ``synchronous=NORMAL``
(the default) trades the last few transactions on OS/power failure for
write speed; ``"full"`` closes that window too.

The batch payload is a pickle of the exact record tuples, so every
field round-trips as the *same Python object* — the stream's index
tables are keyed by the external objects (``"1"`` and ``1`` are
different workers), and a stringly log would collapse them.  Batching
the rows is also what keeps write-through cheap: serialising one
50k-record batch is one C-speed ``pickle.dumps`` plus one insert,
not 50k per-record encodes (which benched at ~5x the ingest cost).
:func:`encode_field` / :func:`decode_field` remain the scalar codec for
the JSON ``meta`` table (label order, duplicate policy, seed).
"""

from __future__ import annotations

import json
import pickle
import sqlite3
from typing import Iterator, Sequence

from .. import faults as _faults
from ..exceptions import StoreError

__all__ = ["AnswerLog", "decode_field", "encode_field"]

#: On-disk format version (bumped on incompatible schema changes).
FORMAT_VERSION = 1

#: Bounded retry budget for transient ``database is locked``/``busy``
#: commit failures (another process holding the write lock — e.g. a
#: concurrent ``repro recover`` replaying the same store).  Anything
#: else, and anything still failing after the budget, keeps the
#: historical contract: :class:`~repro.exceptions.StoreError`, caller
#: rolls the in-memory stream back, nothing acknowledged.
COMMIT_RETRIES = 5


def _is_transient(exc: sqlite3.Error) -> bool:
    """Whether a commit failure is a lock worth waiting out."""
    text = str(exc).lower()
    return (isinstance(exc, sqlite3.OperationalError)
            and ("locked" in text or "busy" in text))

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS log (
    first_seq  INTEGER PRIMARY KEY,
    last_seq   INTEGER NOT NULL,
    n_replaced INTEGER NOT NULL,
    payload    BLOB NOT NULL
);
"""

#: Per-record outcome codes (stored inside the batch payload).
OUTCOME_APPEND = 0
OUTCOME_REPLACE = 1


def encode_field(value) -> str:
    """One scalar as a type-tagged string (the ``meta``-table codec).

    ``str``/``int``/``float``/``bool``/``None`` round-trip as the same
    type — ``"1"`` and ``1`` stay distinct — with a JSON fallback for
    containers.  Numpy scalars are unwrapped (``np.int64(3)`` hashes
    equal to ``3``, so the stream cannot tell them apart anyway).
    """
    if item := getattr(value, "item", None):
        value = item()
    if isinstance(value, str):
        return "s" + value
    if isinstance(value, bool):
        return "b1" if value else "b0"
    if isinstance(value, int):
        return "i%d" % value
    if isinstance(value, float):
        return "f" + repr(value)
    if value is None:
        return "n"
    try:
        return "j" + json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise StoreError(
            f"cannot log answer field {value!r} of type "
            f"{type(value).__name__}: not JSON-serialisable"
        ) from exc


def decode_field(text: str):
    """Invert :func:`encode_field`."""
    tag, body = text[:1], text[1:]
    if tag == "s":
        return body
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "b":
        return body == "1"
    if tag == "n":
        return None
    if tag == "j":
        return json.loads(body)
    raise StoreError(f"corrupt log field {text!r}: unknown type tag")


class AnswerLog:
    """The log + meta tables over an open SQLite connection.

    The connection is owned by the enclosing
    :class:`~repro.store.store.AnswerStore` (one database file holds
    the log, the meta table and the snapshots); the log only issues
    statements on it.
    """

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn
        conn.executescript(_SCHEMA)
        conn.commit()

    # -- meta ----------------------------------------------------------
    def read_meta(self) -> dict:
        """All meta keys (empty dict for a virgin store)."""
        rows = self._conn.execute("SELECT key, value FROM meta").fetchall()
        return {key: json.loads(value) for key, value in rows}

    def write_meta(self, meta: dict) -> None:
        """Insert-or-replace the given meta keys (one transaction)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            [(key, json.dumps(value)) for key, value in meta.items()],
        )
        self._conn.commit()

    # -- writing -------------------------------------------------------
    def append_batch(self, records: Sequence[tuple],
                     outcomes: Sequence[int], *, version: int,
                     replacements: int | None = None) -> None:
        """Durably append one acknowledged batch (one transaction).

        ``version`` is the stream's version counter *after* the batch;
        the records occupy the consecutive ``seq`` values ending there.
        The commit is all-or-nothing: on failure the caller rolls the
        in-memory stream back too, so memory and log never diverge.
        """
        n = len(records)
        if n != len(outcomes):
            raise StoreError(
                f"batch has {n} records but {len(outcomes)} outcomes"
            )
        if n == 0:
            return
        try:
            payload = pickle.dumps((list(records), list(outcomes)),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise StoreError(
                f"cannot log a batch at seq {version}: {exc}"
            ) from exc
        plan = _faults.get_plan()
        backoff = _faults.Backoff()
        for attempt in range(COMMIT_RETRIES + 1):
            try:
                if plan is not None and plan.on_commit():
                    raise sqlite3.OperationalError(
                        "database is locked (injected commit fault)")
                with self._conn:  # one transaction per batch
                    self._conn.execute(
                        "INSERT INTO log "
                        "(first_seq, last_seq, n_replaced, payload) "
                        "VALUES (?, ?, ?, ?)",
                        (version - n + 1, version,
                         int(sum(1 for o in outcomes if o)), payload))
            except sqlite3.Error as exc:
                if _is_transient(exc) and attempt < COMMIT_RETRIES:
                    backoff.sleep(attempt)
                    continue
                raise StoreError(
                    f"failed to commit a {n}-record batch at seq "
                    f"{version}: {exc}"
                ) from exc
            return

    # -- reading -------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest committed record (0 if none)."""
        row = self._conn.execute("SELECT MAX(last_seq) FROM log").fetchone()
        return int(row[0] or 0)

    def __len__(self) -> int:
        """Committed answer records (not batches)."""
        row = self._conn.execute(
            "SELECT SUM(last_seq - first_seq + 1) FROM log").fetchone()
        return int(row[0] or 0)

    @property
    def replace_count(self) -> int:
        """Logged in-place replacements (the replay verification key)."""
        row = self._conn.execute(
            "SELECT SUM(n_replaced) FROM log").fetchone()
        return int(row[0] or 0)

    def _batches(self) -> Iterator[tuple[int, list, list]]:
        """``(first_seq, records, outcomes)`` per batch in seq order."""
        cursor = self._conn.execute(
            "SELECT first_seq, last_seq, payload FROM log "
            "ORDER BY first_seq")
        for first_seq, last_seq, blob in cursor:
            try:
                records, outcomes = pickle.loads(blob)
            except Exception as exc:
                raise StoreError(
                    f"corrupt log batch at seq {first_seq}: {exc}"
                ) from exc
            if len(records) != last_seq - first_seq + 1:
                raise StoreError(
                    f"log batch at seq {first_seq} holds "
                    f"{len(records)} records for seq range "
                    f"{first_seq}..{last_seq}"
                )
            yield first_seq, records, outcomes

    def replay(self, chunk_size: int = 65536) -> Iterator[list[tuple]]:
        """Logged ``(task, worker, value)`` records in ``seq`` order.

        Yielded in chunks ready for ``add_answers``; chunk boundaries
        need not respect the original batch boundaries — every logged
        record was acknowledged, so replay atomicity is per-log, not
        per-batch.
        """
        pending: list[tuple] = []
        for _, records, _ in self._batches():
            pending.extend(records)
            while len(pending) >= chunk_size:
                yield pending[:chunk_size]
                pending = pending[chunk_size:]
        if pending:
            yield pending
