"""Multiple-choice tasks via the decision-task transformation (paper §2).

"A multiple-choice task can be easily transformed to a set of
decision-making tasks, e.g., for an image tagging task, each
transformed decision-making task asks whether or not a tag is contained
in an image.  Thus the methods in decision-making tasks can be directly
extended to handle multiple-choice tasks."

This module makes that paragraph executable end to end:

1. :func:`build_multichoice_dataset` — turn ground-truth tag sets into
   a decision-making :class:`~repro.datasets.schema.Dataset` with one
   task per (item, tag) pair, collected through the platform simulator;
2. run any decision-making method on it;
3. :func:`decisions_to_tag_sets` — map the inferred per-pair truths
   back into a tag set per item;
4. :func:`tag_set_f1` / :func:`tag_set_jaccard` — multi-label quality
   of the recovered sets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.result import InferenceResult
from ..core.tasktypes import LABEL_TRUE, TaskType
from ..exceptions import DatasetError
from ..simulation.platform import CrowdPlatform
from ..simulation.workers import CategoricalWorker
from .schema import Dataset
from .synthetic import multiple_choice_to_decisions


def tag_truth_vector(task_tags: Sequence[Sequence[int]], n_tags: int
                     ) -> np.ndarray:
    """Flatten tag sets into the decision-task truth vector.

    Truth of decision task ``(item, tag)`` is 1 iff ``tag`` belongs to
    ``task_tags[item]``; ordering matches
    :func:`~repro.datasets.synthetic.multiple_choice_to_decisions`.
    """
    pairs = multiple_choice_to_decisions(task_tags, n_tags)
    truths = np.zeros(len(pairs), dtype=np.int64)
    tag_sets = [set(int(t) for t in tags) for tags in task_tags]
    for index, (item, tag) in enumerate(pairs):
        truths[index] = int(tag in tag_sets[item])
    return truths


def build_multichoice_dataset(
    task_tags: Sequence[Sequence[int]],
    n_tags: int,
    workers: Sequence[CategoricalWorker],
    redundancy: int,
    seed: int = 0,
    name: str = "multichoice",
) -> Dataset:
    """Collect answers for the transformed decision tasks.

    ``workers`` are *binary* behaviour models (they answer "does this
    tag apply?"), exactly what the paper's transformation implies.
    """
    for worker in workers:
        if worker.n_choices != 2:
            raise DatasetError(
                "multiple-choice transformation needs binary workers "
                f"(got {worker.n_choices} choices)"
            )
    truths = tag_truth_vector(task_tags, n_tags)
    platform = CrowdPlatform(truths, list(workers),
                             TaskType.DECISION_MAKING, seed=seed)
    answers = platform.collect(redundancy=redundancy)
    return Dataset(
        name=name,
        answers=answers,
        truth=truths,
        metadata={"n_items": len(task_tags), "n_tags": n_tags,
                  "transformed": True},
    )


def decisions_to_tag_sets(result: InferenceResult, n_items: int,
                          n_tags: int) -> list[set[int]]:
    """Map inferred per-pair truths back to one tag set per item."""
    if result.n_tasks != n_items * n_tags:
        raise DatasetError(
            f"result covers {result.n_tasks} decisions; expected "
            f"{n_items} items × {n_tags} tags = {n_items * n_tags}"
        )
    truths = np.asarray(result.truths, dtype=np.int64).reshape(
        n_items, n_tags)
    return [set(np.nonzero(row == LABEL_TRUE)[0].tolist())
            for row in truths]


def tag_set_jaccard(expected: Sequence[Sequence[int]],
                    recovered: Sequence[set[int]]) -> float:
    """Mean per-item Jaccard similarity of tag sets.

    Items where both sets are empty count as perfect (similarity 1).
    """
    if len(expected) != len(recovered):
        raise DatasetError("expected and recovered must be parallel")
    scores = []
    for want, got in zip(expected, recovered):
        want = set(int(t) for t in want)
        union = want | got
        scores.append(1.0 if not union else len(want & got) / len(union))
    return float(np.mean(scores)) if scores else float("nan")


def tag_set_f1(expected: Sequence[Sequence[int]],
               recovered: Sequence[set[int]]) -> float:
    """Micro-averaged F1 over all (item, tag) memberships."""
    if len(expected) != len(recovered):
        raise DatasetError("expected and recovered must be parallel")
    true_positive = false_positive = false_negative = 0
    for want, got in zip(expected, recovered):
        want = set(int(t) for t in want)
        true_positive += len(want & got)
        false_positive += len(got - want)
        false_negative += len(want - got)
    denominator = 2 * true_positive + false_positive + false_negative
    if denominator == 0:
        return 0.0
    return 2 * true_positive / denominator
