"""Dataset container: answers + (possibly partial) ground truth.

Matches the structure of the paper's Table 5: some datasets (S_Rel,
S_Adult) publish ground truth only for a subset of tasks, so the truth
carries a boolean mask.  Evaluation and worker-quality statistics
respect the mask.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..core.answers import AnswerSet
from ..core.result import InferenceResult
from ..core.tasktypes import TaskType
from ..exceptions import DatasetError
from ..metrics.quality import evaluate


@dataclasses.dataclass
class Dataset:
    """A named crowdsourcing dataset.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"D_Product"``).
    answers:
        The collected answer set ``V``.
    truth:
        Ground-truth labels/values per task.  Entries where
        ``truth_mask`` is False are ignored by evaluation (the paper's
        "some large datasets only provide a subset as ground truth").
    truth_mask:
        Boolean mask of tasks with known truth; ``None`` means all known.
    metadata:
        Free-form generation parameters, kept for provenance.
    """

    name: str
    answers: AnswerSet
    truth: np.ndarray
    truth_mask: np.ndarray | None = None
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.truth = np.asarray(self.truth)
        if len(self.truth) != self.answers.n_tasks:
            raise DatasetError(
                f"truth has {len(self.truth)} entries for "
                f"{self.answers.n_tasks} tasks"
            )
        if self.truth_mask is not None:
            self.truth_mask = np.asarray(self.truth_mask, dtype=bool)
            if len(self.truth_mask) != self.answers.n_tasks:
                raise DatasetError("truth_mask length must equal n_tasks")

    # ------------------------------------------------------------------
    @property
    def task_type(self) -> TaskType:
        return self.answers.task_type

    @property
    def n_tasks(self) -> int:
        return self.answers.n_tasks

    @property
    def n_workers(self) -> int:
        return self.answers.n_workers

    @property
    def n_truth(self) -> int:
        """Number of tasks with known ground truth (Table 5's #truth)."""
        if self.truth_mask is None:
            return self.n_tasks
        return int(self.truth_mask.sum())

    def evaluation_mask(self, exclude: set[int] | None = None) -> np.ndarray:
        """Tasks to evaluate on: known truth, minus an excluded set.

        The hidden-test protocol evaluates on ``T − T'``: pass the
        golden-task indices as ``exclude``.
        """
        mask = (self.truth_mask.copy() if self.truth_mask is not None
                else np.ones(self.n_tasks, dtype=bool))
        if exclude:
            mask[list(exclude)] = False
        return mask

    # ------------------------------------------------------------------
    def score(self, result: InferenceResult,
              exclude: set[int] | None = None) -> dict[str, float]:
        """Evaluate an inference result with the task-type's metrics."""
        mask = self.evaluation_mask(exclude)
        return evaluate(self.task_type, self.truth, result.truths, mask)

    def statistics(self) -> dict[str, Any]:
        """The Table 5 row for this dataset."""
        return {
            "dataset": self.name,
            "n_tasks": self.n_tasks,
            "n_truth": self.n_truth,
            "n_answers": self.answers.n_answers,
            "redundancy": round(self.answers.redundancy, 1),
            "n_workers": self.n_workers,
        }

    def subsample_redundancy(self, r: int, rng: np.random.Generator
                             ) -> "Dataset":
        """Dataset with at most ``r`` answers per task (Section 6.3.1)."""
        return dataclasses.replace(
            self, answers=self.answers.subsample_redundancy(r, rng)
        )

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, {self.task_type.value}, "
            f"tasks={self.n_tasks}, answers={self.answers.n_answers}, "
            f"workers={self.n_workers})"
        )
