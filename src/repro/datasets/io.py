"""Dataset persistence in the format the paper's released data uses.

The authors' project page distributes each dataset as two flat files:
an answer file of ``task worker answer`` triples and a truth file of
``task truth`` pairs.  We mirror that layout (CSV with a header) plus a
small JSON sidecar holding the task type and metadata, so replicas can
be saved once and reloaded by the benchmarks.
"""

from __future__ import annotations

import csv
import json
import pathlib

import numpy as np

from ..core.answers import AnswerSet
from ..core.tasktypes import TaskType
from ..exceptions import DatasetError
from .schema import Dataset


def save_dataset(dataset: Dataset, directory: str | pathlib.Path) -> None:
    """Write ``answers.csv``, ``truth.csv`` and ``meta.json``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "answers.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["task", "worker", "answer"])
        for task, worker, value in zip(dataset.answers.tasks,
                                       dataset.answers.workers,
                                       dataset.answers.values):
            writer.writerow([int(task), int(worker), value])

    with open(directory / "truth.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["task", "truth"])
        mask = (dataset.truth_mask if dataset.truth_mask is not None
                else np.ones(dataset.n_tasks, dtype=bool))
        for task in np.nonzero(mask)[0]:
            writer.writerow([int(task), dataset.truth[task]])

    meta = {
        "name": dataset.name,
        "task_type": dataset.task_type.value,
        "n_choices": dataset.answers.n_choices,
        "n_tasks": dataset.n_tasks,
        "n_workers": dataset.n_workers,
        "metadata": _jsonable(dataset.metadata),
    }
    with open(directory / "meta.json", "w") as handle:
        json.dump(meta, handle, indent=2)


def load_dataset(directory: str | pathlib.Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = pathlib.Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise DatasetError(f"no meta.json under {directory}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    task_type = TaskType(meta["task_type"])
    categorical = task_type.is_categorical

    tasks, workers, values = [], [], []
    with open(directory / "answers.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            tasks.append(int(row["task"]))
            workers.append(int(row["worker"]))
            values.append(int(row["answer"]) if categorical
                          else float(row["answer"]))

    answers = AnswerSet(
        task_indices=tasks,
        worker_indices=workers,
        values=values,
        task_type=task_type,
        n_choices=meta["n_choices"] or None,
        n_tasks=meta["n_tasks"],
        n_workers=meta["n_workers"],
    )

    truth_dtype = np.int64 if categorical else np.float64
    truth = np.zeros(meta["n_tasks"], dtype=truth_dtype)
    mask = np.zeros(meta["n_tasks"], dtype=bool)
    with open(directory / "truth.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            task = int(row["task"])
            truth[task] = (int(row["truth"]) if categorical
                           else float(row["truth"]))
            mask[task] = True

    truth_mask = None if mask.all() else mask
    return Dataset(
        name=meta["name"],
        answers=answers,
        truth=truth,
        truth_mask=truth_mask,
        metadata=meta.get("metadata", {}),
    )


def _jsonable(value):
    """Recursively convert numpy scalars/arrays for JSON serialisation."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value
