"""Statistical replicas of the paper's five evaluation datasets.

The original datasets live behind the authors' project page and are not
available offline; per the reproduction plan (DESIGN.md §4) we rebuild
each one through the platform simulator so that every *published
statistic* matches Table 5 and Sections 6.2.2–6.2.3:

=============  ======  ========  =====  =======  ============================
dataset        #tasks  #answers  |V|/n  workers  behaviour tuned to
=============  ======  ========  =====  =======  ============================
D_Product       8,315    24,945    3.0      176  truth 1101 T / 7214 F;
                                                 asymmetric workers (easy to
                                                 spot differences, hard to
                                                 confirm sameness); mean
                                                 accuracy ≈ 0.79
D_PosSent       1,000    20,000   20.0       85  balanced truth 528/472;
                                                 symmetric workers ≈ 0.79
S_Rel          20,232    98,453    4.9      766  4 ordinal choices; broad
                                                 low-quality pool ≈ 0.53;
                                                 correlated hard tasks;
                                                 truth for 4,460 tasks
S_Adult        11,040    92,721    8.4      825  4 choices; pool ≈ 0.65 but
                                                 the labelled subset is
                                                 dominated by trap tasks
                                                 (all methods ≈ 36%);
                                                 truth for 1,517 tasks
N_Emotion         700     7,000   10.0       38  numeric in [−100, 100];
                                                 shared negative bias +
                                                 per-worker noise, RMSE in
                                                 [20, 45], mean ≈ 29
=============  ======  ========  =====  =======  ============================

``scale`` shrinks a replica proportionally (tasks, workers, answers)
while preserving redundancy and behaviour — the test suite runs on
``scale≈0.1`` replicas, the benchmarks on full-size ones.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import DatasetError
from ..simulation.workers import (
    CategoricalWorker,
    NumericWorker,
    asymmetric_binary_worker,
    biased_spammer,
    reliable_worker,
    spammer,
)
from .schema import Dataset
from .synthetic import (
    HardTaskConfig,
    generate_categorical,
    generate_numeric,
    sample_truths,
)

PAPER_DATASET_NAMES = ("D_Product", "D_PosSent", "S_Rel", "S_Adult",
                       "N_Emotion")


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def _clipnorm(rng: np.random.Generator, mean: float, std: float,
              low: float, high: float) -> float:
    return float(np.clip(rng.normal(mean, std), low, high))


# ----------------------------------------------------------------------
# Decision-making datasets
# ----------------------------------------------------------------------
def d_product(seed: int = 0, scale: float = 1.0) -> Dataset:
    """Entity-resolution replica of D_Product (Wang et al., CrowdER).

    The defining property (paper §6.3.1): workers are much better at
    rejecting different products (high ``Pr(F|F)``) than at confirming
    identical ones (low ``Pr(T|T)``), and the truth is imbalanced
    0.12 : 0.88 — which is why F1 separates confusion-matrix methods
    from worker-probability ones.
    """
    rng = np.random.default_rng(seed)
    n_tasks = _scaled(8315, scale)
    n_true = _scaled(1101, scale)
    n_workers = _scaled(176, scale, minimum=10)
    total_answers = 3 * n_tasks

    truths = sample_truths(n_tasks, [n_tasks - n_true, n_true], rng)
    # Trimodal pool.  A quarter of the workers are *excellent* — they
    # check every product feature, so a 'T' vote from them is near-proof
    # of a match.  Two thirds are hasty: they spot differences reliably
    # (recall on F ≈ 0.78) but confirm sameness barely above chance.
    # The remainder are spammers.  MV cannot tell the groups apart and
    # lands at the paper's F1 ≈ 0.59; confusion-matrix methods identify
    # the excellent workers and recover the paper's ≈ 0.70+ F1.
    n_careful = int(round(0.25 * n_workers))
    n_spam = max(1, int(round(0.10 * n_workers)))
    n_hasty = n_workers - n_careful - n_spam
    workers: list[CategoricalWorker] = []
    for _ in range(n_careful):
        workers.append(asymmetric_binary_worker(
            recall_true=_clipnorm(rng, 0.94, 0.03, 0.70, 0.99),
            recall_false=_clipnorm(rng, 0.95, 0.03, 0.70, 0.99),
        ))
    for _ in range(n_hasty):
        workers.append(asymmetric_binary_worker(
            recall_true=_clipnorm(rng, 0.45, 0.10, 0.15, 0.75),
            recall_false=_clipnorm(rng, 0.78, 0.08, 0.50, 0.95),
        ))
    for _ in range(n_spam):
        workers.append(spammer(2))

    return generate_categorical(
        name="D_Product",
        truths=truths,
        workers=workers,
        total_answers=total_answers,
        rng=rng,
        n_choices=2,
        metadata={"seed": seed, "scale": scale, "positive_label": 1},
    )


def d_possent(seed: int = 0, scale: float = 1.0) -> Dataset:
    """Tweet-sentiment replica of D_PosSent (balanced, high redundancy).

    Balanced truth (528 positive / 472 negative) and 20 answers per
    task: the regime where nearly all methods tie near the top and even
    MV reaches 93% (paper Table 6).
    """
    rng = np.random.default_rng(seed)
    n_tasks = _scaled(1000, scale)
    n_true = _scaled(528, scale)
    n_workers = _scaled(85, scale, minimum=25)
    total_answers = 20 * n_tasks

    truths = sample_truths(n_tasks, [n_tasks - n_true, n_true], rng)
    workers = []
    for _ in range(n_workers):
        if rng.random() < 0.06:
            workers.append(spammer(2))
        else:
            workers.append(reliable_worker(
                _clipnorm(rng, 0.81, 0.10, 0.55, 0.98), n_choices=2))

    return generate_categorical(
        name="D_PosSent",
        truths=truths,
        workers=workers,
        total_answers=total_answers,
        rng=rng,
        n_choices=2,
        zipf_exponent=0.6,
        # Real tweets include sarcasm and mixed sentiment: ~4% of tasks
        # are outright traps (annotators agree on the wrong reading) and
        # ~10% are ambiguous (answers near coin flips).  This caps every
        # method in the paper's 93–96% band instead of a clean sweep.
        hard_tasks=HardTaskConfig(fraction=0.04, trap_strength=0.85,
                                  noise_fraction=0.10, noise_strength=0.9),
        metadata={"seed": seed, "scale": scale, "positive_label": 1},
    )


# ----------------------------------------------------------------------
# Single-choice datasets
# ----------------------------------------------------------------------
def _ordinal_worker(accuracy: float, n_choices: int, decay: float = 1.2
                    ) -> CategoricalWorker:
    """A worker whose mistakes concentrate on adjacent ordinal choices.

    Relevance grades (S_Rel) are ordinal: confusing 'relevant' with
    'highly relevant' is far likelier than with 'broken link'.
    """
    confusion = np.zeros((n_choices, n_choices))
    for j in range(n_choices):
        off = np.array([np.exp(-decay * abs(j - k)) if k != j else 0.0
                        for k in range(n_choices)])
        off = off / off.sum() * (1.0 - accuracy)
        confusion[j] = off
        confusion[j, j] = accuracy
    return CategoricalWorker(confusion)


def s_rel(seed: int = 0, scale: float = 1.0) -> Dataset:
    """TREC relevance-judging replica of S_Rel.

    The hardest categorical dataset in the survey: a very broad worker
    pool (mean accuracy ≈ 0.53 over 4 choices, many near chance), a
    sizeable spammer contingent, and correlated hard documents.  Truth
    is published for 4,460 of 20,232 topic–document pairs.
    """
    rng = np.random.default_rng(seed)
    n_tasks = _scaled(20232, scale)
    n_truth = _scaled(4460, scale)
    n_workers = _scaled(766, scale, minimum=40)
    total_answers = int(round(4.9 * n_tasks))
    n_choices = 4

    prior = np.array([0.35, 0.30, 0.25, 0.10])
    counts = np.floor(prior * n_tasks).astype(int)
    counts[0] += n_tasks - counts.sum()
    truths = sample_truths(n_tasks, counts, rng)

    # A coordinated clique of label-biased spammers (every one answers
    # 'relevant' nearly always) sits inside an otherwise broad,
    # low-quality pool.  The clique members mutually agree, so methods
    # with scalar worker-probability models (ZC, CATD) inflate their
    # quality through the EM feedback loop and get dragged below MV —
    # the paper's Section 6.3.1 observation (3) — while confusion-matrix
    # methods capture the column bias and neutralise them.
    n_biased = max(1, int(round(0.10 * n_workers)))
    n_uniform = max(1, int(round(0.06 * n_workers)))
    workers = []
    for _ in range(n_biased):
        workers.append(biased_spammer(n_choices, favourite=1, strength=0.9))
    for _ in range(n_uniform):
        workers.append(spammer(n_choices))
    for _ in range(n_workers - n_biased - n_uniform):
        workers.append(_ordinal_worker(
            _clipnorm(rng, 0.56, 0.18, 0.15, 0.95), n_choices))

    # Activity: Zipf over the honest pool, with every clique member
    # boosted to the activity of a mid-head honest worker.  The clique
    # ends up supplying roughly a quarter of all answers — enough to
    # hijack the EM feedback loop of scalar-quality methods, not enough
    # to drown the signal entirely.
    ranks = np.arange(1, n_workers + 1, dtype=np.float64)
    weights = ranks**-1.0
    rng.shuffle(weights)
    clique_weight = np.sort(weights)[::-1][max(2, n_workers // 20)]
    weights[:n_biased] = clique_weight

    return generate_categorical(
        name="S_Rel",
        truths=truths,
        workers=workers,
        total_answers=total_answers,
        rng=rng,
        n_choices=n_choices,
        truth_known=n_truth,
        hard_tasks=HardTaskConfig(fraction=0.30, trap_strength=0.55),
        worker_weights=weights,
        metadata={"seed": seed, "scale": scale},
    )


def s_adult(seed: int = 0, scale: float = 1.0) -> Dataset:
    """Website adult-rating replica of S_Adult.

    The paper's anomaly: the pool is decent (mean accuracy ≈ 0.65, Figure
    3d) yet *every* method scores ≈ 36% on the labelled subset (Table 6)
    — evidence that the labelled tasks are systematically hard.  We
    model this by making the evaluated subset trap-dominated: on those
    borderline websites workers agree on a *wrong* rating, an error no
    answer-only method can correct.
    """
    rng = np.random.default_rng(seed)
    n_tasks = _scaled(11040, scale)
    n_truth = _scaled(1517, scale)
    n_workers = _scaled(825, scale, minimum=40)
    total_answers = int(round(8.4 * n_tasks))
    n_choices = 4

    prior = np.array([0.50, 0.20, 0.18, 0.12])
    counts = np.floor(prior * n_tasks).astype(int)
    counts[0] += n_tasks - counts.sum()
    truths = sample_truths(n_tasks, counts, rng)

    workers = []
    for _ in range(n_workers):
        draw = rng.random()
        if draw < 0.08:
            workers.append(spammer(n_choices))
        else:
            workers.append(_ordinal_worker(
                _clipnorm(rng, 0.68, 0.12, 0.25, 0.95), n_choices))

    return generate_categorical(
        name="S_Adult",
        truths=truths,
        workers=workers,
        total_answers=total_answers,
        rng=rng,
        n_choices=n_choices,
        truth_known=n_truth,
        hard_tasks=HardTaskConfig(fraction=0.085, trap_strength=0.62),
        eval_prefers_hard=True,
        metadata={"seed": seed, "scale": scale},
    )


# ----------------------------------------------------------------------
# Numeric dataset
# ----------------------------------------------------------------------
def n_emotion(seed: int = 0, scale: float = 1.0) -> Dataset:
    """Emotion-scoring replica of N_Emotion (Snow et al.).

    Scores in [−100, 100], 10 answers per task, 38 workers with RMSE
    around 29.  Two deliberate properties reproduce the paper's "Mean
    wins" finding: worker noise levels are nearly *homogeneous* (there
    is no real variance signal for LFC_N/PM/CATD to exploit, so their
    estimated weights are pure noise), and tasks carry a difficulty
    multiplier (an ambiguous text is noisy for everyone) that per-worker
    models misattribute to whichever workers happened to answer the hard
    tasks.
    """
    rng = np.random.default_rng(seed)
    n_tasks = _scaled(700, scale)
    n_workers = _scaled(38, scale, minimum=12)

    truths = np.clip(rng.normal(loc=5.0, scale=45.0, size=n_tasks),
                     -100.0, 100.0)
    difficulty = np.exp(rng.normal(loc=0.0, scale=0.45, size=n_tasks))
    workers = [
        NumericWorker(
            bias=_clipnorm(rng, 0.0, 6.0, -15.0, 15.0),
            sigma=_clipnorm(rng, 26.0, 3.0, 20.0, 34.0),
        )
        for _ in range(n_workers)
    ]

    return generate_numeric(
        name="N_Emotion",
        truths=truths,
        workers=workers,
        redundancy=10,
        rng=rng,
        value_range=(-100.0, 100.0),
        task_difficulty=difficulty,
        metadata={"seed": seed, "scale": scale},
    )


# ----------------------------------------------------------------------
_BUILDERS: dict[str, Callable[..., Dataset]] = {
    "D_Product": d_product,
    "D_PosSent": d_possent,
    "S_Rel": s_rel,
    "S_Adult": s_adult,
    "N_Emotion": n_emotion,
}


def load_paper_dataset(name: str, seed: int = 0, scale: float = 1.0
                       ) -> Dataset:
    """Build one of the five replicas by its paper name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown paper dataset {name!r}; available: "
            f"{sorted(_BUILDERS)}"
        ) from None
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    return builder(seed=seed, scale=scale)


def all_paper_datasets(seed: int = 0, scale: float = 1.0) -> dict[str, Dataset]:
    """All five replicas, keyed by name, in the paper's Table 5 order."""
    return {name: load_paper_dataset(name, seed=seed, scale=scale)
            for name in PAPER_DATASET_NAMES}
