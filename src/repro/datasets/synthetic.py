"""Generic synthetic dataset generators.

Building blocks used by :mod:`repro.datasets.paper` to replicate the
paper's five datasets, and available directly for custom experiments.
Three knobs matter for reproducing the paper's findings and all three
are exposed:

* the **worker pool** (accuracy distribution, asymmetry, spammers);
* the **assignment** (per-task redundancy + long-tail activity);
* **correlated hard tasks** — a fraction of tasks on which workers make
  *the same* mistake (a task-specific trap answer).  Real crowd data
  contains such tasks (ambiguous products, borderline websites); they
  are what caps every method's accuracy on S_Adult-like data, since no
  reweighting scheme can undo systematically correlated errors.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..core.answers import AnswerSet
from ..core.tasktypes import TaskType
from ..exceptions import DatasetError
from ..simulation.platform import CrowdPlatform
from ..simulation.workers import CategoricalWorker, NumericWorker
from .schema import Dataset


@dataclasses.dataclass
class HardTaskConfig:
    """Hard-task behaviour: correlated traps and uncorrelated ambiguity.

    ``fraction`` of tasks are *trap* tasks: on them, any worker answers
    the task's trap label with probability ``trap_strength`` (instead of
    consulting their confusion matrix).  With ``trap_is_wrong=True`` the
    trap label always differs from the truth — correlated errors no
    answer-only method can undo.

    ``noise_fraction`` of tasks are *ambiguous*: each answer on them is
    independently replaced by a uniformly random label with probability
    ``noise_strength``.  Unlike traps, ambiguity is uncorrelated, so
    redundancy and good worker models claw some of it back — this is
    what keeps the best methods a few points above MV without creating
    an unrealistic ceiling.
    """

    fraction: float = 0.0
    trap_strength: float = 0.6
    trap_is_wrong: bool = True
    noise_fraction: float = 0.0
    noise_strength: float = 0.9

    def validate(self) -> None:
        for label, value in (("fraction", self.fraction),
                             ("trap_strength", self.trap_strength),
                             ("noise_fraction", self.noise_fraction),
                             ("noise_strength", self.noise_strength)):
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{label} must be in [0,1], got {value}")
        if self.fraction + self.noise_fraction > 1.0:
            raise DatasetError(
                "fraction + noise_fraction must not exceed 1.0"
            )


def sample_truths(n_tasks: int, class_counts: Sequence[int],
                  rng: np.random.Generator) -> np.ndarray:
    """Truth labels with exact class counts, randomly placed.

    ``class_counts[j]`` tasks get label ``j``; counts must sum to
    ``n_tasks`` (this is how we pin D_Product to exactly 1101 T).
    """
    class_counts = [int(c) for c in class_counts]
    if sum(class_counts) != n_tasks:
        raise DatasetError(
            f"class counts {class_counts} must sum to n_tasks={n_tasks}"
        )
    truths = np.concatenate([
        np.full(count, label, dtype=np.int64)
        for label, count in enumerate(class_counts)
    ])
    rng.shuffle(truths)
    return truths


def generate_categorical(
    name: str,
    truths: np.ndarray,
    workers: Sequence[CategoricalWorker],
    total_answers: int,
    rng: np.random.Generator,
    n_choices: int | None = None,
    truth_known: int | None = None,
    hard_tasks: HardTaskConfig | None = None,
    eval_prefers_hard: bool = False,
    zipf_exponent: float = 1.0,
    shuffle_weights: bool = True,
    worker_weights: np.ndarray | None = None,
    metadata: dict | None = None,
) -> Dataset:
    """Generate a categorical dataset through the platform simulator.

    Parameters beyond the obvious:

    truth_known:
        If given, only this many tasks keep a public ground-truth label
        (Table 5's #truth column for S_Rel / S_Adult).
    hard_tasks:
        Correlated-error configuration; see :class:`HardTaskConfig`.
    eval_prefers_hard:
        When truth is partial, draw the evaluated subset from the hard
        tasks first — modelling benchmarks whose labelled subset is the
        difficult, disputed one.
    shuffle_weights:
        With the default True, activity is independent of worker
        identity.  Set False to align the Zipf head with the front of
        the ``workers`` list — order the pool best-first to model
        platforms where prolific workers are also the careful ones.
    worker_weights:
        Explicit per-worker activity weights, overriding the Zipf law
        (and ``zipf_exponent`` / ``shuffle_weights``).
    """
    truths = np.asarray(truths, dtype=np.int64)
    n_tasks = len(truths)
    platform = CrowdPlatform(
        truths=truths,
        workers=workers,
        task_type=(TaskType.DECISION_MAKING if (n_choices or 2) == 2
                   else TaskType.SINGLE_CHOICE),
        n_choices=n_choices,
        seed=int(rng.integers(2**31)),
    )
    if worker_weights is not None:
        weights = np.asarray(worker_weights, dtype=np.float64)
    else:
        ranks = np.arange(1, len(workers) + 1, dtype=np.float64)
        weights = ranks**-zipf_exponent
        if shuffle_weights:
            rng.shuffle(weights)
    answers = platform.collect(total_answers=total_answers,
                               worker_weights=weights)

    hard_mask = np.zeros(n_tasks, dtype=bool)
    if hard_tasks is not None and hard_tasks.fraction > 0:
        hard_tasks.validate()
        answers, hard_mask = _apply_traps(answers, truths, hard_tasks, rng)

    truth_mask = None
    if truth_known is not None and truth_known < n_tasks:
        truth_mask = _partial_truth_mask(
            n_tasks, truth_known, hard_mask if eval_prefers_hard else None, rng
        )

    return Dataset(
        name=name,
        answers=answers,
        truth=truths,
        truth_mask=truth_mask,
        metadata={"hard_tasks": int(hard_mask.sum()), **(metadata or {})},
    )


def generate_numeric(
    name: str,
    truths: np.ndarray,
    workers: Sequence[NumericWorker],
    redundancy: int,
    rng: np.random.Generator,
    value_range: tuple[float, float] | None = None,
    task_difficulty: np.ndarray | None = None,
    metadata: dict | None = None,
) -> Dataset:
    """Generate a numeric dataset (uniform redundancy, as N_Emotion).

    ``task_difficulty`` optionally scales every worker's noise per task;
    see :meth:`repro.simulation.workers.NumericWorker.answer_many`.
    """
    truths = np.asarray(truths, dtype=np.float64)
    platform = CrowdPlatform(
        truths=truths,
        workers=workers,
        task_type=TaskType.NUMERIC,
        seed=int(rng.integers(2**31)),
        task_difficulty=task_difficulty,
    )
    answers = platform.collect(redundancy=redundancy)
    values = answers.values
    if value_range is not None:
        low, high = value_range
        values = np.clip(values, low, high)
    answers = AnswerSet(
        task_indices=answers.tasks,
        worker_indices=answers.workers,
        values=values,
        task_type=TaskType.NUMERIC,
        n_tasks=answers.n_tasks,
        n_workers=answers.n_workers,
    )
    return Dataset(name=name, answers=answers, truth=truths,
                   metadata=metadata or {})


# ----------------------------------------------------------------------
def _apply_traps(answers: AnswerSet, truths: np.ndarray,
                 config: HardTaskConfig, rng: np.random.Generator
                 ) -> tuple[AnswerSet, np.ndarray]:
    """Apply trap and ambiguity behaviour to the hard tasks."""
    n_tasks = answers.n_tasks
    n_choices = answers.n_choices
    n_trap = int(round(config.fraction * n_tasks))
    n_noise = int(round(config.noise_fraction * n_tasks))
    chosen = rng.choice(n_tasks, size=n_trap + n_noise, replace=False)
    trap_tasks, noise_tasks = chosen[:n_trap], chosen[n_trap:]
    hard_mask = np.zeros(n_tasks, dtype=bool)
    hard_mask[trap_tasks] = True

    traps = np.full(n_tasks, -1, dtype=np.int64)
    for task in trap_tasks:
        if config.trap_is_wrong:
            options = [k for k in range(n_choices) if k != truths[task]]
        else:
            options = list(range(n_choices))
        traps[task] = rng.choice(options)

    values = answers.values.astype(np.int64).copy()
    on_trap = hard_mask[answers.tasks]
    fall_for_it = rng.random(answers.n_answers) < config.trap_strength
    overwrite = on_trap & fall_for_it
    values[overwrite] = traps[answers.tasks[overwrite]]

    if len(noise_tasks):
        noise_mask = np.zeros(n_tasks, dtype=bool)
        noise_mask[noise_tasks] = True
        on_noise = noise_mask[answers.tasks]
        randomised = rng.random(answers.n_answers) < config.noise_strength
        scramble = on_noise & randomised
        values[scramble] = rng.integers(0, n_choices, size=int(scramble.sum()))

    return AnswerSet(
        task_indices=answers.tasks,
        worker_indices=answers.workers,
        values=values,
        task_type=answers.task_type,
        n_choices=n_choices,
        n_tasks=answers.n_tasks,
        n_workers=answers.n_workers,
    ), hard_mask


def _partial_truth_mask(n_tasks: int, truth_known: int,
                        prefer: np.ndarray | None,
                        rng: np.random.Generator) -> np.ndarray:
    """Pick which tasks keep a public ground-truth label."""
    mask = np.zeros(n_tasks, dtype=bool)
    chosen: list[int] = []
    if prefer is not None:
        preferred = np.nonzero(prefer)[0]
        take = min(truth_known, len(preferred))
        chosen.extend(rng.choice(preferred, size=take, replace=False))
    remaining = truth_known - len(chosen)
    if remaining > 0:
        pool = np.setdiff1d(np.arange(n_tasks), np.array(chosen, dtype=int))
        chosen.extend(rng.choice(pool, size=remaining, replace=False))
    mask[np.array(chosen, dtype=int)] = True
    return mask


def multiple_choice_to_decisions(
    task_tags: Sequence[Sequence[int]], n_tags: int
) -> list[tuple[int, int]]:
    """Transform multiple-choice tasks into decision-making tasks.

    The paper (Section 2): "a multiple-choice task can be easily
    transformed to a set of decision-making tasks" — one per (task, tag)
    pair asking whether the tag applies.  Returns the (task, tag) index
    pairs; the caller builds one decision task per pair with truth
    ``tag in task_tags[task]``.
    """
    if n_tags < 1:
        raise DatasetError(f"n_tags must be >= 1, got {n_tags}")
    pairs = []
    for task, tags in enumerate(task_tags):
        bad = [t for t in tags if not 0 <= int(t) < n_tags]
        if bad:
            raise DatasetError(f"task {task} has out-of-range tags {bad}")
        for tag in range(n_tags):
            pairs.append((task, tag))
    return pairs
