"""Dataset layer: container, persistence, generators, paper replicas."""

from .io import load_dataset, save_dataset
from .paper import (
    PAPER_DATASET_NAMES,
    all_paper_datasets,
    d_possent,
    d_product,
    load_paper_dataset,
    n_emotion,
    s_adult,
    s_rel,
)
from .multichoice import (
    build_multichoice_dataset,
    decisions_to_tag_sets,
    tag_set_f1,
    tag_set_jaccard,
    tag_truth_vector,
)
from .schema import Dataset
from .synthetic import (
    HardTaskConfig,
    generate_categorical,
    generate_numeric,
    multiple_choice_to_decisions,
    sample_truths,
)

__all__ = [
    "Dataset",
    "HardTaskConfig",
    "PAPER_DATASET_NAMES",
    "all_paper_datasets",
    "build_multichoice_dataset",
    "decisions_to_tag_sets",
    "tag_set_f1",
    "tag_set_jaccard",
    "tag_truth_vector",
    "d_possent",
    "d_product",
    "generate_categorical",
    "generate_numeric",
    "load_dataset",
    "load_paper_dataset",
    "multiple_choice_to_decisions",
    "n_emotion",
    "s_adult",
    "s_rel",
    "sample_truths",
    "save_dataset",
]
