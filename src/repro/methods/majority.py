"""Majority Voting (MV) — the paper's naive baseline (Section 3).

MV regards the choice answered by the majority of workers as the truth
and breaks ties randomly.  It has no task or worker model ("regards all
workers as equal"), which is exactly the limitation the other 16 methods
try to fix — yet Table 6 shows it is competitive when redundancy is
high (e.g. D_PosSent with 20 answers per task).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult


@register
class MajorityVoting(CategoricalMethod):
    """Per-task plurality vote with random tie-breaking."""

    name = "MV"

    def __init__(self, seed: int | None = None, random_ties: bool = True) -> None:
        super().__init__(seed=seed)
        self.random_ties = random_ties

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        counts = answers.vote_counts()
        posterior = normalize_rows(counts)
        truths = decode_posterior(counts, rng if self.random_ties else None)

        # MV has no worker model; as a convenience we report each
        # worker's agreement rate with the majority answer, which is the
        # statistic the paper's Section 3 example reasons with.
        agree = (answers.values.astype(np.int64) == truths[answers.tasks]).astype(float)
        per_worker = np.bincount(answers.workers, weights=agree,
                                 minlength=answers.n_workers)
        counts_w = np.maximum(answers.worker_answer_counts(), 1)
        quality = per_worker / counts_w

        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=posterior,
            n_iterations=0,
            converged=True,
        )
