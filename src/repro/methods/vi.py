"""VI-MF and VI-BP (Liu, Peng & Ihler, NIPS 2012).

Both are *Bayesian estimators*: instead of the point estimate ZC/D&S
compute, they approximate ``Pr(v*_i | V) = ∫ Pr(v*_i, {q^w} | V) dq``
(survey Equation 2) under a two-coin worker model — per-class accuracies
``s_w = Pr(answer T | truth T)`` and ``t_w = Pr(answer F | truth F)``
with Beta priors — using variational inference:

* **VI-MF** — mean field: fully factorised ``q(z_i) q(s_w) q(t_w)``;
  coordinate updates use Dirichlet/Beta digamma expectations.
* **VI-BP** — belief propagation: worker-to-task messages integrate the
  worker's reliability out against the Beta posterior built from the
  *other* tasks' beliefs.  We use the standard first-moment
  approximation of those messages, which keeps the update O(|V|).

Decision-making tasks only, as in the survey's Table 4.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.framework import (
    ConvergenceTracker,
    decode_posterior,
    log_normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.tasktypes import LABEL_FALSE, LABEL_TRUE
from ..inference.variational import (
    BetaPrior,
    expected_log_beta_counts,
    posterior_mean_accuracy,
)


class _TwoCoinCounts:
    """Soft per-worker correct/incorrect counts for both truth classes.

    Given task beliefs ``mu[i] = Pr(z_i = T)``, accumulates for every
    worker the expected number of correct and incorrect answers
    separately for tasks whose truth is T (driving the sensitivity
    posterior) and F (driving the specificity posterior).
    """

    def __init__(self, answers: AnswerSet) -> None:
        self.answers = answers
        self.said_true = answers.values.astype(np.int64) == LABEL_TRUE

    def accumulate(self, mu: np.ndarray) -> tuple[np.ndarray, ...]:
        a = self.answers
        mu_edge = mu[a.tasks]
        said_true = self.said_true

        correct_t = np.bincount(a.workers, weights=mu_edge * said_true,
                                minlength=a.n_workers)
        incorrect_t = np.bincount(a.workers, weights=mu_edge * ~said_true,
                                  minlength=a.n_workers)
        correct_f = np.bincount(a.workers, weights=(1 - mu_edge) * ~said_true,
                                minlength=a.n_workers)
        incorrect_f = np.bincount(a.workers, weights=(1 - mu_edge) * said_true,
                                  minlength=a.n_workers)
        return correct_t, incorrect_t, correct_f, incorrect_f


class _VariationalTwoCoin(BinaryMethod):
    """Shared state initialisation for the two VI variants."""

    supports_initial_quality = True
    supports_golden = True

    def __init__(self, prior_a: float = 2.0, prior_b: float = 1.0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.prior = BetaPrior(a=prior_a, b=prior_b)
        self.prior.validate()

    def _initial_mu(self, answers: AnswerSet,
                    initial_quality: np.ndarray | None) -> np.ndarray:
        """Initial belief Pr(z_i = T), majority-based or quality-weighted."""
        counts = answers.vote_counts()
        if initial_quality is None:
            totals = counts.sum(axis=1)
            totals = np.where(totals > 0, totals, 1.0)
            return counts[:, LABEL_TRUE] / totals
        weights = np.clip(initial_quality, 0.05, 0.95)
        said_true = answers.values.astype(np.int64) == LABEL_TRUE
        w_edge = weights[answers.workers]
        score_t = np.bincount(answers.tasks, weights=w_edge * said_true,
                              minlength=answers.n_tasks)
        score_f = np.bincount(answers.tasks, weights=w_edge * ~said_true,
                              minlength=answers.n_tasks)
        total = score_t + score_f
        total = np.where(total > 0, total, 1.0)
        return score_t / total

    def _result(self, answers: AnswerSet, mu: np.ndarray,
                counts: tuple[np.ndarray, ...], tracker: ConvergenceTracker,
                rng: np.random.Generator) -> InferenceResult:
        correct_t, incorrect_t, correct_f, incorrect_f = counts
        sensitivity = posterior_mean_accuracy(correct_t, incorrect_t, self.prior)
        specificity = posterior_mean_accuracy(correct_f, incorrect_f, self.prior)
        posterior = np.column_stack([1.0 - mu, mu])  # columns: [F, T]
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=(sensitivity + specificity) / 2.0,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"sensitivity": sensitivity, "specificity": specificity},
        )

    @staticmethod
    def _clamp_mu(mu: np.ndarray, golden: Mapping[int, float] | None
                  ) -> np.ndarray:
        if not golden:
            return mu
        for task, label in golden.items():
            mu[task] = 1.0 if int(label) == LABEL_TRUE else 0.0
        return mu


@register
class VIMeanField(_VariationalTwoCoin):
    """Mean-field variational inference (VI-MF).

    The full factorisation ``q(z) q(s) q(t) q(pi)`` includes the class
    prevalence ``pi`` with its own (Dirichlet) factor; its expected log
    enters every task update.  This is what lets VI-MF handle the
    imbalanced D_Product data far better than VI-BP, whose message
    approximation carries no prevalence information — the gap the
    paper's Table 6 shows (83.9% vs 64.6%).
    """

    name = "VI-MF"

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        accumulator = _TwoCoinCounts(answers)
        mu = self._clamp_mu(self._initial_mu(answers, initial_quality), golden)
        said_true = accumulator.said_true
        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        counts = accumulator.accumulate(mu)
        while True:
            correct_t, incorrect_t, correct_f, incorrect_f = counts
            els_t, elf_t = expected_log_beta_counts(correct_t, incorrect_t,
                                                    self.prior)
            els_f, elf_f = expected_log_beta_counts(correct_f, incorrect_f,
                                                    self.prior)
            # Variational class-prevalence factor: Beta(1 + soft counts).
            from scipy.special import digamma

            prev_t = 1.0 + float(mu.sum())
            prev_f = 1.0 + float(len(mu) - mu.sum())
            total = digamma(prev_t + prev_f)
            log_prev_t = np.array([digamma(prev_t) - total])
            log_prev_f = np.array([digamma(prev_f) - total])
            # Per-edge log-likelihood contributions for z=T and z=F.
            log_t = np.where(said_true, els_t[answers.workers],
                             elf_t[answers.workers])
            log_f = np.where(said_true, elf_f[answers.workers],
                             els_f[answers.workers])
            log_post = np.zeros((answers.n_tasks, 2))
            log_post[:, LABEL_TRUE] = float(log_prev_t[0]) + np.bincount(
                answers.tasks, weights=log_t, minlength=answers.n_tasks)
            log_post[:, LABEL_FALSE] = float(log_prev_f[0]) + np.bincount(
                answers.tasks, weights=log_f, minlength=answers.n_tasks)
            posterior = log_normalize_rows(log_post)
            mu = self._clamp_mu(posterior[:, LABEL_TRUE].copy(), golden)
            counts = accumulator.accumulate(mu)
            if tracker.update(mu):
                break

        return self._result(answers, mu, counts, tracker, rng)


@register
class VIBeliefPropagation(_VariationalTwoCoin):
    """Belief propagation with Beta-integrated messages (VI-BP).

    For every edge (answer) the incoming worker message excludes the
    edge's own contribution from the worker's Beta counts — the defining
    difference from mean field, where each worker's posterior is shared
    by all of its edges.
    """

    name = "VI-BP"

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        a = answers
        accumulator = _TwoCoinCounts(a)
        said_true = accumulator.said_true
        mu = self._clamp_mu(self._initial_mu(a, initial_quality), golden)
        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        counts = accumulator.accumulate(mu)
        while True:
            correct_t, incorrect_t, correct_f, incorrect_f = counts
            mu_edge = mu[a.tasks]
            # Cavity counts: worker totals minus this edge's contribution.
            cav_ct = correct_t[a.workers] - mu_edge * said_true
            cav_it = incorrect_t[a.workers] - mu_edge * ~said_true
            cav_cf = correct_f[a.workers] - (1 - mu_edge) * ~said_true
            cav_if = incorrect_f[a.workers] - (1 - mu_edge) * said_true
            cav = [np.maximum(c, 0.0) for c in (cav_ct, cav_it, cav_cf, cav_if)]

            mean_s = np.clip(
                posterior_mean_accuracy(cav[0], cav[1], self.prior),
                1e-10, 1 - 1e-10)
            mean_t = np.clip(
                posterior_mean_accuracy(cav[2], cav[3], self.prior),
                1e-10, 1 - 1e-10)
            log_msg_t = np.where(said_true, np.log(mean_s), np.log1p(-mean_s))
            log_msg_f = np.where(said_true, np.log1p(-mean_t), np.log(mean_t))

            log_post = np.zeros((a.n_tasks, 2))
            log_post[:, LABEL_TRUE] = np.bincount(a.tasks, weights=log_msg_t,
                                                  minlength=a.n_tasks)
            log_post[:, LABEL_FALSE] = np.bincount(a.tasks, weights=log_msg_f,
                                                   minlength=a.n_tasks)
            posterior = log_normalize_rows(log_post)
            mu = self._clamp_mu(posterior[:, LABEL_TRUE].copy(), golden)
            counts = accumulator.accumulate(mu)
            if tracker.update(mu):
                break

        return self._result(a, mu, counts, tracker, rng)
