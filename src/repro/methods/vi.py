"""VI-MF and VI-BP (Liu, Peng & Ihler, NIPS 2012).

Both are *Bayesian estimators*: instead of the point estimate ZC/D&S
compute, they approximate ``Pr(v*_i | V) = ∫ Pr(v*_i, {q^w} | V) dq``
(survey Equation 2) under a two-coin worker model — per-class accuracies
``s_w = Pr(answer T | truth T)`` and ``t_w = Pr(answer F | truth F)``
with Beta priors — using variational inference:

* **VI-MF** — mean field: fully factorised ``q(z_i) q(s_w) q(t_w)``;
  coordinate updates use Dirichlet/Beta digamma expectations.
* **VI-BP** — belief propagation: worker-to-task messages integrate the
  worker's reliability out against the Beta posterior built from the
  *other* tasks' beliefs.  We use the standard first-moment
  approximation of those messages, which keeps the update O(|V|).

Both variants iterate on the 1-D belief vector ``mu[i] = Pr(z_i = T)``
and run as sharded estimations through
:func:`repro.inference.sharded.run_em_sharded`: the soft worker counts
are per-shard bincounts merged field-wise (VI-MF's Beta/digamma
epilogue runs on the merged totals), and the task update maps over
task-range blocks.  VI-BP's cavity messages need each edge's own belief
alongside the global counts, so its M-step packs the full ``mu``
next to the merged statistics.  One shard reproduces the historical
loops bit-for-bit.

Decision-making tasks only, as in the survey's Table 4.
"""

from __future__ import annotations

import functools
import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.tasktypes import LABEL_FALSE, LABEL_TRUE
from ..inference.em import EMOutcome
from ..inference.sharded import (
    ShardedEMSpec,
    SufficientStats,
    pad_rows,
    run_em_sharded,
)
from ..inference.variational import (
    BetaPrior,
    expected_log_beta_counts,
    posterior_mean_accuracy,
)


def _clamp_mu(mu: np.ndarray, golden: Mapping[int, float] | None
              ) -> np.ndarray:
    """Pin golden tasks' beliefs to their labels (state is 1-D here)."""
    if not golden:
        return mu
    for task, label in golden.items():
        mu[task] = 1.0 if int(label) == LABEL_TRUE else 0.0
    return mu


class _TwoCoinSpec(ShardedEMSpec):
    """Shared shard kernels of the two-coin variational methods.

    ``accumulate`` produces the soft per-worker correct/incorrect
    counts for both truth classes (plus the belief mass the class
    prevalence factor needs); every field is a sum over answers or
    tasks, so the shard partials merge exactly up to float order.
    """

    golden_clamp = staticmethod(_clamp_mu)

    def __init__(self, n_tasks: int, n_workers: int,
                 prior: BetaPrior) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = 2
        self.prior = prior

    def build_ops(self, shard: AnswerShard):
        return types.SimpleNamespace(
            said_true=shard.values.astype(np.int64) == LABEL_TRUE,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != 2 or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        trues = np.bincount(shard.local_tasks,
                            weights=ops.said_true.astype(np.float64),
                            minlength=shard.n_local_tasks)
        totals = np.bincount(shard.local_tasks,
                             minlength=shard.n_local_tasks
                             ).astype(np.float64)
        totals = np.where(totals > 0, totals, 1.0)
        return trues / totals

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        mu_edge = block[shard.local_tasks]
        said_true = ops.said_true
        n = self.n_workers
        return SufficientStats(
            correct_t=np.bincount(shard.workers,
                                  weights=mu_edge * said_true, minlength=n),
            incorrect_t=np.bincount(shard.workers,
                                    weights=mu_edge * ~said_true,
                                    minlength=n),
            correct_f=np.bincount(shard.workers,
                                  weights=(1 - mu_edge) * ~said_true,
                                  minlength=n),
            incorrect_f=np.bincount(shard.workers,
                                    weights=(1 - mu_edge) * said_true,
                                    minlength=n),
            mu_sum=block.sum(),
            count=float(len(block)),
        )


class _MeanFieldSpec(_TwoCoinSpec):
    """VI-MF: digamma expectations on the merged counts, local task
    updates against the shared worker tables."""

    def finalize(self, stats: SufficientStats):
        els_t, elf_t = expected_log_beta_counts(
            stats["correct_t"], stats["incorrect_t"], self.prior)
        els_f, elf_f = expected_log_beta_counts(
            stats["correct_f"], stats["incorrect_f"], self.prior)
        # Variational class-prevalence factor: Beta(1 + soft counts).
        from scipy.special import digamma

        prev_t = 1.0 + float(stats["mu_sum"])
        prev_f = 1.0 + float(stats["count"] - stats["mu_sum"])
        total = digamma(prev_t + prev_f)
        return (els_t, elf_t, els_f, elf_f,
                float(digamma(prev_t) - total),
                float(digamma(prev_f) - total))

    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        els_t, elf_t, els_f, elf_f, log_prev_t, log_prev_f = params
        said_true = ops.said_true
        w = shard.workers
        # Per-edge log-likelihood contributions for z=T and z=F.
        log_t = np.where(said_true, els_t[w], elf_t[w])
        log_f = np.where(said_true, elf_f[w], els_f[w])
        n_local = shard.n_local_tasks
        log_post = np.zeros((n_local, 2))
        log_post[:, LABEL_TRUE] = log_prev_t + np.bincount(
            shard.local_tasks, weights=log_t, minlength=n_local)
        log_post[:, LABEL_FALSE] = log_prev_f + np.bincount(
            shard.local_tasks, weights=log_f, minlength=n_local)
        posterior = log_normalize_rows(log_post)
        return posterior[:, LABEL_TRUE].copy()

    def warm_parameters(self, stats: SufficientStats, mu: np.ndarray):
        """A delta refit resumes from the digamma expectations of the
        cached worker counts — the same parameters the previous fit
        converged to."""
        return self.finalize(stats)


class _BeliefPropagationSpec(_TwoCoinSpec):
    """VI-BP: cavity messages subtract each edge's own contribution
    from the merged worker counts, so the E-step needs the full belief
    vector next to the statistics — the M-step packs both."""

    statistics_m_step = False

    def finalize(self, stats: SufficientStats):
        raise NotImplementedError(
            "VI-BP's M-step packs the merged statistics directly")

    def m_step(self, runner, blocks, prev_params):
        stats = runner.call("accumulate", per_shard=blocks)
        merged = functools.reduce(lambda a, b: a.merge(b), stats)
        return merged, np.concatenate(blocks, axis=0)

    def m_step_delta(self, runner, blocks, prev_params, frozen,
                     stats_cache, fit_stats=None):
        """Delta M-step: a frozen shard's belief block is pinned, so
        its count partial is too — ``accumulate`` runs only for shards
        whose cache entry was invalidated by an E-step."""
        need = [k for k in range(len(blocks)) if stats_cache[k] is None]
        if need:
            computed = runner.call("accumulate",
                                   per_shard=[blocks[k] for k in need],
                                   only=need)
            for k, stats in zip(need, computed):
                stats_cache[k] = stats
            if fit_stats is not None:
                fit_stats.accumulate_calls += len(need)
        merged = functools.reduce(lambda a, b: a.merge(b), stats_cache)
        return merged, np.concatenate(blocks, axis=0)

    def warm_parameters(self, stats: SufficientStats, mu: np.ndarray):
        """A delta refit resumes from the cached worker counts and the
        cached belief vector — exactly the M-step packing."""
        return stats, mu

    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        merged, mu = params
        mu_edge = mu[shard.task_start:shard.task_stop][shard.local_tasks]
        said_true = ops.said_true
        w = shard.workers
        # Cavity counts: worker totals minus this edge's contribution.
        cav_ct = merged["correct_t"][w] - mu_edge * said_true
        cav_it = merged["incorrect_t"][w] - mu_edge * ~said_true
        cav_cf = merged["correct_f"][w] - (1 - mu_edge) * ~said_true
        cav_if = merged["incorrect_f"][w] - (1 - mu_edge) * said_true
        cav = [np.maximum(c, 0.0) for c in (cav_ct, cav_it, cav_cf, cav_if)]

        mean_s = np.clip(
            posterior_mean_accuracy(cav[0], cav[1], self.prior),
            1e-10, 1 - 1e-10)
        mean_t = np.clip(
            posterior_mean_accuracy(cav[2], cav[3], self.prior),
            1e-10, 1 - 1e-10)
        log_msg_t = np.where(said_true, np.log(mean_s), np.log1p(-mean_s))
        log_msg_f = np.where(said_true, np.log1p(-mean_t), np.log(mean_t))

        n_local = shard.n_local_tasks
        log_post = np.zeros((n_local, 2))
        log_post[:, LABEL_TRUE] = np.bincount(
            shard.local_tasks, weights=log_msg_t, minlength=n_local)
        log_post[:, LABEL_FALSE] = np.bincount(
            shard.local_tasks, weights=log_msg_f, minlength=n_local)
        posterior = log_normalize_rows(log_post)
        return posterior[:, LABEL_TRUE].copy()


class _VariationalTwoCoin(BinaryMethod):
    """Shared state initialisation for the two VI variants."""

    supports_initial_quality = True
    supports_golden = True
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True
    _spec_cls: type[_TwoCoinSpec]

    def __init__(self, prior_a: float = 2.0, prior_b: float = 1.0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.prior = BetaPrior(a=prior_a, b=prior_b)
        self.prior.validate()

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return self._spec_cls(n_tasks=n_tasks, n_workers=n_workers,
                              prior=self.prior)

    def _initial_mu(self, answers: AnswerSet,
                    initial_quality: np.ndarray | None) -> np.ndarray:
        """Initial belief Pr(z_i = T), majority-based or quality-weighted."""
        counts = answers.vote_counts()
        if initial_quality is None:
            totals = counts.sum(axis=1)
            totals = np.where(totals > 0, totals, 1.0)
            return counts[:, LABEL_TRUE] / totals
        weights = np.clip(initial_quality, 0.05, 0.95)
        said_true = answers.values.astype(np.int64) == LABEL_TRUE
        w_edge = weights[answers.workers]
        score_t = np.bincount(answers.tasks, weights=w_edge * said_true,
                              minlength=answers.n_tasks)
        score_f = np.bincount(answers.tasks, weights=w_edge * ~said_true,
                              minlength=answers.n_tasks)
        total = score_t + score_f
        total = np.where(total > 0, total, 1.0)
        return score_t / total

    def _warm_parameters(self, warm_start: InferenceResult,
                         answers: AnswerSet, mu0: np.ndarray, spec):
        """Variational restart point of a delta refit: the cached
        worker counts (zero-padded for new workers) and the cached
        beliefs, extended with the majority estimate ``mu0`` for new
        tasks.  ``None`` when the warm extras carry no counts."""
        counts = warm_start.extras.get("counts")
        if counts is None or len(counts) != 4:
            return None
        mu_prev = np.asarray(warm_start.posterior[:, LABEL_TRUE],
                             dtype=np.float64)
        if len(mu_prev) > answers.n_tasks:
            return None
        mu = np.concatenate([mu_prev, mu0[len(mu_prev):]])
        padded = [pad_rows(np.asarray(c, dtype=np.float64),
                           answers.n_workers) for c in counts]
        stats = SufficientStats(
            correct_t=padded[0], incorrect_t=padded[1],
            correct_f=padded[2], incorrect_f=padded[3],
            mu_sum=float(mu.sum()), count=float(len(mu)))
        return spec.warm_parameters(stats, mu)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        with self._shard_runner(answers, shard_runner, delta) as runner:
            mu0 = self._initial_mu(answers, initial_quality)
            # Variational blocks are reused only under a true delta
            # plan; without one the fit is cold, exactly the historical
            # behaviour (refit="full" streams stay bit-identical).
            initial_parameters = None
            if (warm_start is not None and delta is not None
                    and delta.prev is not None):
                initial_parameters = self._warm_parameters(
                    warm_start, answers, mu0, runner.spec)
            warm = initial_parameters is not None
            if delta is not None and not warm:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_posterior=mu0,
                initial_parameters=initial_parameters,
                delta=delta,
            )
            counts = self._final_counts(runner, outcome)
        return self._result(answers, outcome, counts, rng, warm)

    @staticmethod
    def _final_counts(runner, outcome: EMOutcome) -> tuple[np.ndarray, ...]:
        """Merged worker counts at the final beliefs (drives the
        sensitivity/specificity posteriors)."""
        state = outcome.shard_state
        if (state is not None and state.stats
                and all(s is not None for s in state.stats)):
            stats = state.stats
        else:
            blocks = [outcome.posterior[start:stop]
                      for start, stop in runner.task_ranges]
            stats = runner.call("accumulate", per_shard=blocks)
        merged = functools.reduce(lambda a, b: a.merge(b), stats)
        return (merged["correct_t"], merged["incorrect_t"],
                merged["correct_f"], merged["incorrect_f"])

    def _result(self, answers: AnswerSet, outcome: EMOutcome,
                counts: tuple[np.ndarray, ...],
                rng: np.random.Generator,
                warm: bool = False) -> InferenceResult:
        correct_t, incorrect_t, correct_f, incorrect_f = counts
        sensitivity = posterior_mean_accuracy(correct_t, incorrect_t,
                                              self.prior)
        specificity = posterior_mean_accuracy(correct_f, incorrect_f,
                                              self.prior)
        mu = outcome.posterior
        posterior = np.column_stack([1.0 - mu, mu])  # columns: [F, T]
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=(sensitivity + specificity) / 2.0,
            posterior=posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"sensitivity": sensitivity, "specificity": specificity,
                    # The final-belief worker counts: the restart point
                    # the next delta refit's warm parameters come from.
                    "counts": np.stack(counts),
                    "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )


@register
class VIMeanField(_VariationalTwoCoin):
    """Mean-field variational inference (VI-MF).

    The full factorisation ``q(z) q(s) q(t) q(pi)`` includes the class
    prevalence ``pi`` with its own (Dirichlet) factor; its expected log
    enters every task update.  This is what lets VI-MF handle the
    imbalanced D_Product data far better than VI-BP, whose message
    approximation carries no prevalence information — the gap the
    paper's Table 6 shows (83.9% vs 64.6%).
    """

    name = "VI-MF"
    _spec_cls = _MeanFieldSpec


@register
class VIBeliefPropagation(_VariationalTwoCoin):
    """Belief propagation with Beta-integrated messages (VI-BP).

    For every edge (answer) the incoming worker message excludes the
    edge's own contribution from the worker's Beta counts — the defining
    difference from mean field, where each worker's posterior is shared
    by all of its edges.
    """

    name = "VI-BP"
    _spec_cls = _BeliefPropagationSpec
