"""PM (Li et al., SIGMOD 2014 / Aydin et al., AAAI 2014).

An optimisation method minimising
``f({q^w}, {v*}) = Σ_w q^w Σ_i d(v^w_i, v*_i)``
(Section 5.2 of the survey).  Two coordinate steps:

* **truth step** — ``v*_i = argmax_v Σ_{w∈W_i} q^w 1{v = v^w_i}`` for
  categorical tasks; the weighted mean for numeric tasks (the minimiser
  of the weighted squared distance);
* **quality step** — ``q^w = −log( Σ d_w / max_w' Σ d_w' )`` which gives
  weight 0 to the worst worker and unbounded weight to near-perfect ones
  (the paper's Section 3 running example walks through exactly this
  computation, which ``tests/methods/test_pm.py`` replays).

A small regulariser inside the log keeps perfect workers finite.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import GeneralMethod
from ..core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    clamp_golden_values,
    decode_posterior,
    normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult


@register
class PM(GeneralMethod):
    """Coordinate descent on the PM objective (categorical + numeric)."""

    name = "PM"
    supports_initial_quality = True
    supports_golden = True

    def __init__(self, regularization: float = 0.01, **kwargs) -> None:
        super().__init__(**kwargs)
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.regularization = regularization

    # ------------------------------------------------------------------
    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        if answers.task_type.is_categorical:
            return self._fit_categorical(answers, golden, initial_quality, rng)
        return self._fit_numeric(answers, golden, initial_quality, rng)

    def _initial_weights(self, answers: AnswerSet,
                         initial_quality: np.ndarray | None) -> np.ndarray:
        if initial_quality is None:
            return np.ones(answers.n_workers)
        # Map qualification-test accuracy to a PM-style weight: workers
        # with accuracy a get -log(1 - a), floored to stay positive.
        miss = np.clip(1.0 - np.asarray(initial_quality, dtype=np.float64),
                       self.regularization, 1.0)
        return np.maximum(-np.log(miss), self.regularization)

    def _quality_step(self, answers: AnswerSet, distances: np.ndarray
                      ) -> np.ndarray:
        """The −log-normalised loss update shared by both task types."""
        sums = np.bincount(answers.workers, weights=distances,
                           minlength=answers.n_workers)
        sums = sums + self.regularization
        worst = sums.max()
        return -np.log(sums / worst) + self.regularization

    # ------------------------------------------------------------------
    def _fit_categorical(self, answers, golden, initial_quality, rng
                         ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        weights = self._initial_weights(answers, initial_quality)

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        scores = np.zeros((answers.n_tasks, answers.n_choices))
        while True:
            # Truth step: weighted vote, ties broken randomly — the
            # paper's Section 3 walk-through relies on this ("it
            # randomly infers v*_1 to break the tie"), and the broken
            # tie can decide which fixed point the iteration reaches.
            scores.fill(0.0)
            np.add.at(scores, (tasks, values), weights[workers])
            posterior = clamp_golden_posterior(normalize_rows(scores), golden)
            truths = decode_posterior(posterior, rng)

            # Quality step: 0/1 distance to the current truth.
            distances = (values != truths[tasks]).astype(np.float64)
            weights = self._quality_step(answers, distances)
            if tracker.update(weights):
                break

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=weights,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
        )

    # ------------------------------------------------------------------
    def _fit_numeric(self, answers, golden, initial_quality, rng
                     ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values
        weights = self._initial_weights(answers, initial_quality)
        # Distances are normalised by the global answer spread so the
        # -log update is scale-free (the CRH trick).
        scale = np.std(values) if np.std(values) > 0 else 1.0

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        while True:
            w = weights[workers]
            numer = np.bincount(tasks, weights=w * values,
                                minlength=answers.n_tasks)
            denom = np.bincount(tasks, weights=w, minlength=answers.n_tasks)
            denom = np.where(denom > 0, denom, 1.0)
            truths = clamp_golden_values(numer / denom, golden)

            distances = ((values - truths[tasks]) / scale) ** 2
            weights = self._quality_step(answers, distances)
            if tracker.update(weights):
                break

        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=weights,
            posterior=None,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
        )
