"""PM (Li et al., SIGMOD 2014 / Aydin et al., AAAI 2014).

An optimisation method minimising
``f({q^w}, {v*}) = Σ_w q^w Σ_i d(v^w_i, v*_i)``
(Section 5.2 of the survey).  Two coordinate steps:

* **truth step** — ``v*_i = argmax_v Σ_{w∈W_i} q^w 1{v = v^w_i}`` for
  categorical tasks; the weighted mean for numeric tasks (the minimiser
  of the weighted squared distance);
* **quality step** — ``q^w = −log( Σ d_w / max_w' Σ d_w' )`` which gives
  weight 0 to the worst worker and unbounded weight to near-perfect ones
  (the paper's Section 3 running example walks through exactly this
  computation, which ``tests/methods/test_pm.py`` replays).

A small regulariser inside the log keeps perfect workers finite.

Like CATD, PM runs as an alternating sharded estimation over the
weighted-vote/weighted-mean shard kernels (see
:mod:`repro.methods.catd`); only the quality step differs.  The random
truth tie-breaks stay on the master generator
(``prepare_accumulate``), so shard phases are deterministic and one
shard reproduces the historical loop — including every tie-break —
bit-for-bit.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import GeneralMethod
from ..core.framework import decode_posterior
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import expand_worker_vector
from ..inference.sharded import SufficientStats, run_alternating_sharded
from .catd import _WeightedMeanSpec, _WeightedVoteSpec


class _PMVoteSpec(_WeightedVoteSpec):
    """Categorical PM: decoded-label losses, −log-normalised weights."""

    def prepare_accumulate(self, state, ranges, rng, only=None):
        # Ties are broken randomly (the paper's Section 3 walk-through
        # relies on this) — decode once over the full state on the
        # master generator, exactly as the unsharded loop did, then
        # hand each shard its label slice.
        indices = range(len(ranges)) if only is None else only
        truths = decode_posterior(state, rng)
        return [truths[ranges[k][0]:ranges[k][1]] for k in indices]

    def accumulate(self, shard: AnswerShard, ops,
                   truths: np.ndarray) -> SufficientStats:
        return self._loss_stats(shard, ops, truths)

    def finalize(self, stats: SufficientStats) -> np.ndarray:
        sums = stats["losses"] + self.regularization
        worst = sums.max()
        return -np.log(sums / worst) + self.regularization


class _PMMeanSpec(_WeightedMeanSpec):
    """Numeric PM: scaled squared-residual losses, same weight formula."""

    finalize = _PMVoteSpec.finalize


@register
class PM(GeneralMethod):
    """Coordinate descent on the PM objective (categorical + numeric)."""

    name = "PM"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True

    def __init__(self, regularization: float = 0.01, **kwargs) -> None:
        super().__init__(**kwargs)
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.regularization = regularization

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        if n_choices == 0:
            return _PMMeanSpec(n_tasks=n_tasks, n_workers=n_workers,
                               regularization=self.regularization)
        return _PMVoteSpec(n_tasks=n_tasks, n_workers=n_workers,
                           n_choices=n_choices,
                           regularization=self.regularization)

    def _initial_weights(self, answers: AnswerSet,
                         initial_quality: np.ndarray | None) -> np.ndarray:
        if initial_quality is None:
            return np.ones(answers.n_workers)
        # Map qualification-test accuracy to a PM-style weight: workers
        # with accuracy a get -log(1 - a), floored to stay positive.
        miss = np.clip(1.0 - np.asarray(initial_quality, dtype=np.float64),
                       self.regularization, 1.0)
        return np.maximum(-np.log(miss), self.regularization)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        categorical = answers.task_type.is_categorical
        with self._shard_runner(answers, shard_runner, delta) as runner:
            if not categorical:
                values = answers.values
                scale = np.std(values) if np.std(values) > 0 else 1.0
                runner.spec.accumulate_shared = (float(scale),)

            warm = warm_start is not None
            if warm:
                weights = expand_worker_vector(
                    warm_start.worker_quality, answers.n_workers, 1.0)
            else:
                weights = self._initial_weights(answers, initial_quality)

            if delta is not None and not warm:
                delta = delta.collect_only()
            outcome = run_alternating_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_parameters=weights,
                rng=rng,
                count_prime=warm,
                delta=delta,
            )

        posterior = outcome.posterior if categorical else None
        return InferenceResult(
            method=self.name,
            truths=(decode_posterior(posterior, rng) if categorical
                    else outcome.posterior),
            worker_quality=outcome.parameters,
            posterior=posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
