"""KOS (Karger, Oh & Shah, NIPS 2011) — iterative belief propagation.

Decision-making tasks only.  Answers are encoded as ``A_{iw} ∈ {+1, −1}``
(T → +1, F → −1) and two families of messages are passed along the
task–worker bipartite graph:

* task-to-worker ``x_{i→w} = Σ_{w'≠w} A_{iw'} y_{w'→i}``
* worker-to-task ``y_{w→i} = Σ_{i'≠i} A_{i'w} x_{i'→w}``

after random Gaussian initialisation of the ``y`` messages.  The final
estimate is ``v*_i = sign( Σ_{w∈W_i} A_{iw} y_{w→i} )``.  The algorithm
is the BP/low-rank specialisation of ZC's model; the survey runs it for
a fixed small number of rounds, as the original paper prescribes.

Sharding: every task's edges live in exactly one task-range shard, so
the task half of each round is shard-local; the worker half merges
per-shard worker totals between the two message updates, and the
normaliser merges per-shard squared sums.  The per-edge ``y``/``x``
messages stay resident shard-side across rounds (in the cached shard
operators, so the process tier never reships them).  The Gaussian
``y`` seed is drawn on the master in original answer order and
scattered to the shards through the same stable task-sort layout
:class:`repro.core.shards.ShardedAnswerSet` uses, which keeps every
shard count on the same per-edge draws: one shard is bit-identical to
the historical loop, multiple shards differ only by merge order.
Runtime shards grown by epoch appends interleave edges differently and
give a statistically equivalent (not identical) message history.
"""

from __future__ import annotations

import functools
import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.framework import radix_argsort
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.tasktypes import LABEL_TRUE
from ..inference.sharded import ShardedEMSpec


class _KOSSpec(ShardedEMSpec):
    """Round phases of the KOS message passing.

    Not an EM method: the phases below are driven directly by
    :meth:`KOS._fit` rather than ``run_em_sharded``, so the EM hooks
    are stubs.  ``ops`` doubles as the shard's message store — built
    once per shard and pinned to its worker process, it carries the
    per-edge ``y``/``x`` vectors from round to round.
    """

    def __init__(self, n_tasks: int, n_workers: int,
                 n_choices: int = 2) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = 2

    def build_ops(self, shard: AnswerShard):
        # Spin encoding: T (label 1) -> +1, F (label 0) -> -1.
        spins = np.where(shard.values.astype(np.int64) == LABEL_TRUE,
                         1.0, -1.0)
        return types.SimpleNamespace(spins=spins, y=None, x=None)

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != 2 or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    # -- round phases --------------------------------------------------
    def seed_y(self, shard: AnswerShard, ops, y_block: np.ndarray) -> None:
        if len(y_block) != len(ops.spins):
            raise ValueError(
                f"KOS seed block has {len(y_block)} edges, shard holds "
                f"{len(ops.spins)}"
            )
        ops.y = np.array(y_block, dtype=np.float64)

    def task_round(self, shard: AnswerShard, ops) -> np.ndarray:
        """x-update (shard-local) + this shard's worker-total partial."""
        spins = ops.spins
        task_totals = np.bincount(shard.local_tasks, weights=spins * ops.y,
                                  minlength=shard.n_local_tasks)
        ops.x = task_totals[shard.local_tasks] - spins * ops.y
        return np.bincount(shard.workers, weights=spins * ops.x,
                           minlength=self.n_workers)

    def worker_round(self, shard: AnswerShard, ops,
                     worker_totals: np.ndarray) -> float:
        """y-update against the merged worker totals; returns the
        shard's squared-sum contribution to the normaliser."""
        spins = ops.spins
        ops.y = worker_totals[shard.workers] - spins * ops.x
        return float(np.sum(ops.y * ops.y))

    def scale_y(self, shard: AnswerShard, ops, norm: float) -> None:
        ops.y = ops.y / norm

    def score_block(self, shard: AnswerShard, ops
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Final task scores (shard-local) and the shard's partial of
        the per-worker alignment sums."""
        spins = ops.spins
        scores = np.bincount(shard.local_tasks, weights=spins * ops.y,
                             minlength=shard.n_local_tasks)
        alignment = spins * np.sign(scores)[shard.local_tasks]
        sums = np.bincount(shard.workers, weights=alignment,
                           minlength=self.n_workers)
        return scores, sums

    # -- unused EM hooks -----------------------------------------------
    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        raise NotImplementedError("KOS is not an EM method")

    def accumulate(self, shard: AnswerShard, ops, block) -> None:
        raise NotImplementedError("KOS is not an EM method")

    def finalize(self, stats) -> None:
        raise NotImplementedError("KOS is not an EM method")

    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        raise NotImplementedError("KOS is not an EM method")


@register
class KOS(BinaryMethod):
    """Karger–Oh–Shah message passing on the assignment graph."""

    name = "KOS"
    supports_sharding = True

    def __init__(self, n_rounds: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = n_rounds

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _KOSSpec(n_tasks=n_tasks, n_workers=n_workers)

    @staticmethod
    def _seed_blocks(answers: AnswerSet, runner,
                     y: np.ndarray) -> list[np.ndarray]:
        """Scatter the master-drawn seed onto the shards' edge layout."""
        if runner.n_shards == 1:
            return [y]
        order = radix_argsort(answers.tasks)
        sorted_tasks = answers.tasks[order]
        y_sorted = y[order]
        blocks = []
        for start, stop in runner.task_ranges:
            lo = np.searchsorted(sorted_tasks, start, side="left")
            hi = np.searchsorted(sorted_tasks, stop, side="left")
            blocks.append(y_sorted[lo:hi])
        return blocks

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        with self._shard_runner(answers, shard_runner, delta) as runner:
            # One message per edge (= per answer); the draw happens in
            # original answer order so every shard count sees the same
            # per-edge values.
            y = rng.normal(loc=1.0, scale=1.0, size=answers.n_answers)
            runner.call("seed_y",
                        per_shard=self._seed_blocks(answers, runner, y))

            for _ in range(self.n_rounds):
                partials = runner.call("task_round")
                worker_totals = functools.reduce(np.add, partials)
                squares = runner.call("worker_round",
                                      shared=(worker_totals,))
                norm = np.sqrt(sum(squares) / answers.n_answers)
                if norm > 0:
                    runner.call("scale_y", shared=(float(norm),))

            results = runner.call("score_block")
            scores = np.concatenate([block for block, _ in results])
            sums = functools.reduce(np.add, [part for _, part in results])

        truths = np.where(scores > 0, LABEL_TRUE, 1 - LABEL_TRUE)
        ties = scores == 0
        if ties.any():
            truths[ties] = rng.integers(0, 2, size=int(ties.sum()))

        # Worker reliability summary: average alignment of the worker's
        # spin with the final task score sign.
        counts = np.maximum(answers.worker_answer_counts(), 1)
        quality = (sums / counts + 1.0) / 2.0

        posterior = np.zeros((answers.n_tasks, 2))
        posterior[np.arange(answers.n_tasks), truths] = 1.0
        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=posterior,
            n_iterations=self.n_rounds,
            converged=True,
            extras={"task_scores": scores},
        )
