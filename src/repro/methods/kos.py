"""KOS (Karger, Oh & Shah, NIPS 2011) — iterative belief propagation.

Decision-making tasks only.  Answers are encoded as ``A_{iw} ∈ {+1, −1}``
(T → +1, F → −1) and two families of messages are passed along the
task–worker bipartite graph:

* task-to-worker ``x_{i→w} = Σ_{w'≠w} A_{iw'} y_{w'→i}``
* worker-to-task ``y_{w→i} = Σ_{i'≠i} A_{i'w} x_{i'→w}``

after random Gaussian initialisation of the ``y`` messages.  The final
estimate is ``v*_i = sign( Σ_{w∈W_i} A_{iw} y_{w→i} )``.  The algorithm
is the BP/low-rank specialisation of ZC's model; the survey runs it for
a fixed small number of rounds, as the original paper prescribes.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.tasktypes import LABEL_TRUE


@register
class KOS(BinaryMethod):
    """Karger–Oh–Shah message passing on the assignment graph."""

    name = "KOS"

    def __init__(self, n_rounds: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = n_rounds

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        # Spin encoding: T (label 1) -> +1, F (label 0) -> -1.
        spins = np.where(answers.values.astype(np.int64) == LABEL_TRUE, 1.0, -1.0)

        # One message per edge (= per answer).
        y = rng.normal(loc=1.0, scale=1.0, size=answers.n_answers)
        x = np.zeros_like(y)

        for _ in range(self.n_rounds):
            # x_{i->w}: task total minus the receiving edge's own term.
            task_totals = np.bincount(tasks, weights=spins * y,
                                      minlength=answers.n_tasks)
            x = task_totals[tasks] - spins * y
            # y_{w->i}: worker total minus the receiving edge's own term.
            worker_totals = np.bincount(workers, weights=spins * x,
                                        minlength=answers.n_workers)
            y = worker_totals[workers] - spins * x
            # Normalise to keep magnitudes bounded across rounds.
            norm = np.sqrt(np.mean(y**2))
            if norm > 0:
                y = y / norm

        scores = np.bincount(tasks, weights=spins * y,
                             minlength=answers.n_tasks)
        truths = np.where(scores > 0, LABEL_TRUE, 1 - LABEL_TRUE)
        ties = scores == 0
        if ties.any():
            truths[ties] = rng.integers(0, 2, size=int(ties.sum()))

        # Worker reliability summary: average alignment of the worker's
        # spin with the final task score sign.
        alignment = spins * np.sign(scores)[tasks]
        sums = np.bincount(workers, weights=alignment,
                           minlength=answers.n_workers)
        counts = np.maximum(answers.worker_answer_counts(), 1)
        quality = (sums / counts + 1.0) / 2.0

        posterior = np.zeros((answers.n_tasks, 2))
        posterior[np.arange(answers.n_tasks), truths] = 1.0
        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=posterior,
            n_iterations=self.n_rounds,
            converged=True,
            extras={"task_scores": scores},
        )
