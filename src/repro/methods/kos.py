"""KOS (Karger, Oh & Shah, NIPS 2011) — iterative belief propagation.

Decision-making tasks only.  Answers are encoded as ``A_{iw} ∈ {+1, −1}``
(T → +1, F → −1) and two families of messages are passed along the
task–worker bipartite graph:

* task-to-worker ``x_{i→w} = Σ_{w'≠w} A_{iw'} y_{w'→i}``
* worker-to-task ``y_{w→i} = Σ_{i'≠i} A_{i'w} x_{i'→w}``

after random Gaussian initialisation of the ``y`` messages.  The final
estimate is ``v*_i = sign( Σ_{w∈W_i} A_{iw} y_{w→i} )``.  The algorithm
is the BP/low-rank specialisation of ZC's model; the survey runs it for
a fixed small number of rounds, as the original paper prescribes.

Sharding: every task's edges live in exactly one task-range shard, so
the task half of each round is shard-local; the worker half merges
per-shard worker totals between the two message updates, and the
normaliser merges per-shard squared sums.  The per-edge ``y``/``x``
messages stay resident shard-side across rounds (in the cached shard
operators, so the process tier never reships them).

Seeding is *layout-independent*: the master draws one entropy word per
fit and every edge derives its Gaussian seed shard-side from a hash of
its ``(task, worker)`` identity (:func:`edge_seed_messages`) — not from
its position in any shard order.  An edge therefore receives the same
seed value on a fresh task-sorted layout, a runtime layout grown by
epoch appends, or any shard count; the residual cross-layout
difference is float summation order in the per-round ``bincount``
reductions (the same last-ulp caveat every multi-shard merge has).

Delta refits (the KOS incremental contract): a warm refit restores
each clean shard's cached final ``y`` messages and re-primes dirty
shards with fresh seeds, then replays the fixed message rounds with
clean shards *frozen* — their worker-total partial is predicted
analytically as ``s_k · P_k`` (``task_round`` is linear in ``y`` and a
round's normalisation is one global scalar, so the master tracks each
frozen shard's cumulative scale ``s_k``), and their normaliser
contribution as ``s_k² · q_k``.  Periodic verify rounds (and always
the final round) synchronise the frozen messages, run the real round
everywhere, measure the prediction drift, and thaw any shard whose
drift exceeds the threshold — so the final scores are always the
output of a genuine full round.
"""

from __future__ import annotations

import functools
import time
import types
from typing import Mapping

import numpy as np
from scipy.special import ndtri

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.registry import register
from ..core.result import FitStats, InferenceResult
from ..core.shards import AnswerShard
from ..core.tasktypes import LABEL_TRUE
from ..inference.sharded import (
    ShardState,
    ShardedEMSpec,
    check_delta_layout,
    pad_rows,
)

# splitmix64 constants (Steele et al., "Fast splittable pseudorandom
# number generators") — the per-edge seed hash below is the standard
# finalizer over a (task, worker, entropy) key.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)

#: Relative drift floor past which a verify round thaws a frozen shard.
#: The frozen-shard prediction ignores cross-shard worker coupling, so
#: a small relative drift is expected and harmless — KOS decisions are
#: sign decisions, and the mandatory final verify round recomputes
#: every message for real before scoring.  Only a clearly diverged
#: prediction (worse than this floor) is worth paying full rounds for.
_THAW_DRIFT_FLOOR = 0.05


def edge_seed_messages(tasks: np.ndarray, workers: np.ndarray,
                       entropy: int) -> np.ndarray:
    """Layout-independent Gaussian ``y`` seed for a set of answer edges.

    Each edge's seed is a function of its ``(task, worker)`` identity
    and the fit's master-drawn ``entropy`` word only: a splitmix64 hash
    of the packed key yields a uniform in ``(0, 1)`` mapped through the
    normal quantile function to ``N(1, 1)`` — the distribution the
    historical master-order draw used.  Duplicate ``(task, worker)``
    edges share a seed value; that is deterministic by construction and
    statistically immaterial (the messages decorrelate within a round).
    """
    key = ((tasks.astype(np.uint64) << np.uint64(32))
           ^ workers.astype(np.uint64))
    with np.errstate(over="ignore"):
        x = key + _SM64_GAMMA * (np.uint64(entropy) + np.uint64(1))
        x ^= x >> np.uint64(30)
        x *= _SM64_MIX1
        x ^= x >> np.uint64(27)
        x *= _SM64_MIX2
        x ^= x >> np.uint64(31)
    u = ((x >> np.uint64(11)).astype(np.float64) + 0.5) / float(1 << 53)
    return 1.0 + ndtri(u)


class _KOSSpec(ShardedEMSpec):
    """Round phases of the KOS message passing.

    Not an EM method: the phases below are driven directly by
    :meth:`KOS._fit` rather than ``run_em_sharded``, so the EM hooks
    are stubs.  ``ops`` doubles as the shard's message store — built
    once per shard and pinned to its worker process, it carries the
    per-edge ``y``/``x`` vectors from round to round.
    """

    #: The message store makes this spec stateful: the runtime must
    #: replay the phase log into a respawned worker (see
    #: ``ShardedEMSpec.stateful_ops``).
    stateful_ops = True

    def __init__(self, n_tasks: int, n_workers: int,
                 n_choices: int = 2) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = 2

    def build_ops(self, shard: AnswerShard):
        # Spin encoding: T (label 1) -> +1, F (label 0) -> -1.
        spins = np.where(shard.values.astype(np.int64) == LABEL_TRUE,
                         1.0, -1.0)
        return types.SimpleNamespace(spins=spins, y=None, x=None)

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != 2 or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    # -- round phases --------------------------------------------------
    def seed_edges(self, shard: AnswerShard, ops, entropy: int) -> None:
        """Seed this shard's ``y`` messages from edge identity (see
        :func:`edge_seed_messages`) — the same values in any layout."""
        ops.y = edge_seed_messages(shard.tasks, shard.workers, entropy)

    def restore_y(self, shard: AnswerShard, ops,
                  y_block: np.ndarray) -> bool:
        """Adopt a cached message block; declines (returns False) when
        the shard's edge count no longer matches — the caller then
        re-seeds the shard instead of trusting a misaligned cache."""
        if y_block is None or len(y_block) != len(ops.spins):
            return False
        ops.y = np.array(y_block, dtype=np.float64)
        return True

    def task_round(self, shard: AnswerShard, ops) -> np.ndarray:
        """x-update (shard-local) + this shard's worker-total partial."""
        spins = ops.spins
        task_totals = np.bincount(shard.local_tasks, weights=spins * ops.y,
                                  minlength=shard.n_local_tasks)
        ops.x = task_totals[shard.local_tasks] - spins * ops.y
        return np.bincount(shard.workers, weights=spins * ops.x,
                           minlength=self.n_workers)

    def worker_round(self, shard: AnswerShard, ops,
                     worker_totals: np.ndarray) -> float:
        """y-update against the merged worker totals; returns the
        shard's squared-sum contribution to the normaliser."""
        spins = ops.spins
        ops.y = worker_totals[shard.workers] - spins * ops.x
        return float(np.sum(ops.y * ops.y))

    def scale_y(self, shard: AnswerShard, ops, norm: float) -> None:
        ops.y = ops.y / norm

    def score_block(self, shard: AnswerShard, ops
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Final task scores (shard-local) and the shard's partial of
        the per-worker alignment sums."""
        spins = ops.spins
        scores = np.bincount(shard.local_tasks, weights=spins * ops.y,
                             minlength=shard.n_local_tasks)
        alignment = spins * np.sign(scores)[shard.local_tasks]
        sums = np.bincount(shard.workers, weights=alignment,
                           minlength=self.n_workers)
        return scores, sums

    def collect_state(self, shard: AnswerShard, ops
                      ) -> tuple[np.ndarray, np.ndarray, float]:
        """Snapshot this shard's message state for the next delta
        refit: the final ``y`` block, its ``task_round`` worker-total
        partial (computed without touching the resident messages) and
        its squared sum."""
        spins = ops.spins
        task_totals = np.bincount(shard.local_tasks, weights=spins * ops.y,
                                  minlength=shard.n_local_tasks)
        x = task_totals[shard.local_tasks] - spins * ops.y
        partial = np.bincount(shard.workers, weights=spins * x,
                              minlength=self.n_workers)
        return np.array(ops.y), partial, float(np.sum(ops.y * ops.y))

    def score_and_collect(self, shard: AnswerShard, ops):
        """:meth:`score_block` and :meth:`collect_state` in one shard
        pass (they share the per-task totals bincount) — the delta
        path's final sweep, bit-identical to calling both."""
        spins = ops.spins
        scores = np.bincount(shard.local_tasks, weights=spins * ops.y,
                             minlength=shard.n_local_tasks)
        alignment = spins * np.sign(scores)[shard.local_tasks]
        sums = np.bincount(shard.workers, weights=alignment,
                           minlength=self.n_workers)
        x = scores[shard.local_tasks] - spins * ops.y
        partial = np.bincount(shard.workers, weights=spins * x,
                              minlength=self.n_workers)
        return (scores, sums, np.array(ops.y), partial,
                float(np.sum(ops.y * ops.y)))

    # -- unused EM hooks -----------------------------------------------
    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        raise NotImplementedError("KOS is not an EM method")

    def accumulate(self, shard: AnswerShard, ops, block) -> None:
        raise NotImplementedError("KOS is not an EM method")

    def finalize(self, stats) -> None:
        raise NotImplementedError("KOS is not an EM method")

    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        raise NotImplementedError("KOS is not an EM method")


@register
class KOS(BinaryMethod):
    """Karger–Oh–Shah message passing on the assignment graph."""

    name = "KOS"
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True

    def __init__(self, n_rounds: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = n_rounds

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _KOSSpec(n_tasks=n_tasks, n_workers=n_workers)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        started = time.perf_counter()
        with self._shard_runner(answers, shard_runner, delta) as runner:
            # One entropy word per fit: deterministic given the seed,
            # independent of any layout (the per-edge seeds are derived
            # from it shard-side — see edge_seed_messages).
            entropy = int(rng.integers(0, 2 ** 63))
            session = (delta.prev.session
                       if delta is not None and delta.prev is not None
                       else None)
            # A message-state delta refit needs a warm start *and* a
            # cached KOS session; anything else demotes to a collecting
            # full fit (`refit="full"` passes no plan at all, so the
            # historical path is untouched bit-for-bit).
            warm = (warm_start is not None and session is not None
                    and isinstance(session, dict)
                    and session.get("family") == "kos"
                    and len(session.get("y", ())) == runner.n_shards)
            if delta is not None and delta.prev is not None and not warm:
                delta = delta.collect_only()

            if warm:
                fit_stats = self._run_delta(runner, answers, delta, entropy)
            else:
                fit_stats = FitStats(mode="full", n_shards=runner.n_shards)
                runner.call("seed_edges", shared=(entropy,))
                for _ in range(self.n_rounds):
                    fit_stats.active_shards.append(runner.n_shards)
                    fit_stats.frozen_shards.append(0)
                    partials = runner.call("task_round")
                    fit_stats.e_block_calls += runner.n_shards
                    worker_totals = functools.reduce(np.add, partials)
                    squares = runner.call("worker_round",
                                          shared=(worker_totals,))
                    fit_stats.accumulate_calls += runner.n_shards
                    norm = np.sqrt(sum(squares) / answers.n_answers)
                    if norm > 0:
                        runner.call("scale_y", shared=(float(norm),))

            shard_state = None
            if delta is not None:
                packed = runner.call("score_and_collect")
                fit_stats.e_block_calls += runner.n_shards
                scores = np.concatenate([p[0] for p in packed])
                sums = functools.reduce(np.add, [p[1] for p in packed])
                shard_state = self._collect_state(runner, packed, delta)
            else:
                results = runner.call("score_block")
                scores = np.concatenate([block for block, _ in results])
                sums = functools.reduce(np.add,
                                        [part for _, part in results])

        truths = np.where(scores > 0, LABEL_TRUE, 1 - LABEL_TRUE)
        ties = scores == 0
        if ties.any():
            truths[ties] = rng.integers(0, 2, size=int(ties.sum()))

        # Worker reliability summary: average alignment of the worker's
        # spin with the final task score sign.
        counts = np.maximum(answers.worker_answer_counts(), 1)
        quality = (sums / counts + 1.0) / 2.0

        posterior = np.zeros((answers.n_tasks, 2))
        posterior[np.arange(answers.n_tasks), truths] = 1.0
        fit_stats.iterations = self.n_rounds
        fit_stats.em_seconds = time.perf_counter() - started
        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=posterior,
            n_iterations=self.n_rounds,
            converged=True,
            extras={"task_scores": scores, "warm_started": warm},
            fit_stats=fit_stats,
            shard_state=shard_state,
        )

    # ------------------------------------------------------------------
    # Delta refit: warm message restarts + frozen-shard scaling
    # ------------------------------------------------------------------
    def _run_delta(self, runner, answers: AnswerSet, delta,
                   entropy: int) -> FitStats:
        """Replay the message rounds from cached per-shard state.

        Clean shards restore their cached final ``y`` (their edge
        arrays are bit-stable under append-only growth); dirty shards —
        and any clean shard whose cached block no longer matches its
        edge count — are re-seeded from edge identity.  Restored shards
        start *frozen*: between verify rounds their worker-total
        partial is the analytic ``s_k · P_k`` and their normaliser
        contribution ``s_k² · q_k``, with ``s_k`` accumulating the
        global per-round scale.  Verify rounds (every
        ``delta.verify_every`` rounds, and always the final round)
        synchronise the frozen messages, run the real round everywhere,
        refresh the caches and thaw shards whose relative prediction
        drift exceeds the threshold.
        """
        prev = delta.prev
        ranges = runner.task_ranges
        n_shards = runner.n_shards
        dirty = np.asarray(delta.dirty, dtype=bool)
        check_delta_layout(ranges, prev, dirty)
        verify_every = max(1, int(delta.verify_every))
        freeze_tol = delta.freeze_tol if delta.freeze_tol is not None else 0.0
        thaw_tol = max(_THAW_DRIFT_FLOOR, verify_every * freeze_tol)

        fit_stats = FitStats(mode="delta", n_shards=n_shards,
                             dirty_shards=int(dirty.sum()))
        session = prev.session
        n_workers = answers.n_workers

        clean_idx = [k for k in range(n_shards) if not dirty[k]]
        restored = runner.call(
            "restore_y", per_shard=[session["y"][k] for k in clean_idx],
            only=clean_idx) if clean_idx else []
        frozen = {k for k, ok in zip(clean_idx, restored) if ok}
        reseed = sorted(set(range(n_shards)) - frozen)
        if reseed:
            runner.call("seed_edges", shared=(entropy,), only=reseed)

        # Per-frozen-shard prediction state: cached worker-total
        # partial, cached squared sum, cumulative scale since caching.
        part = {k: pad_rows(np.asarray(session["partial"][k],
                                       dtype=np.float64), n_workers)
                for k in frozen}
        sq = {k: float(session["sq"][k]) for k in frozen}
        scale = {k: 1.0 for k in frozen}

        for r in range(1, self.n_rounds + 1):
            active = [k for k in range(n_shards) if k not in frozen]
            fit_stats.active_shards.append(len(active))
            fit_stats.frozen_shards.append(n_shards - len(active))
            verify = bool(frozen) and (r % verify_every == 0
                                       or r == self.n_rounds)
            if verify:
                # Sync frozen y to the scale the predictions assumed,
                # then run the round for real everywhere and grade the
                # predictions against it.
                sync = [k for k in sorted(frozen) if scale[k] != 1.0]
                if sync:
                    runner.call("scale_y",
                                per_shard=[(1.0 / scale[k],) for k in sync],
                                only=sync)
                partials = runner.call("task_round")
                fit_stats.e_block_calls += n_shards
                fit_stats.verify_passes += 1
                worker_totals = functools.reduce(np.add, partials)
                for k in sorted(frozen):
                    predicted = scale[k] * part[k]
                    real = partials[k]
                    spread = max(float(np.max(np.abs(real))), 1e-30)
                    drift = float(np.max(np.abs(real - predicted))) / spread
                    if drift > thaw_tol and r < self.n_rounds:
                        frozen.discard(k)
                        fit_stats.thaws += 1
                        part.pop(k)
                        sq.pop(k)
                        scale.pop(k)
                squares = runner.call("worker_round",
                                      shared=(worker_totals,))
                fit_stats.accumulate_calls += n_shards
                norm = np.sqrt(sum(squares) / answers.n_answers)
                if norm > 0:
                    runner.call("scale_y", shared=(float(norm),))
                    # Refresh the surviving frozen caches at the new
                    # (real, post-scale) messages, approximating the
                    # round as the global rescale the freeze model
                    # assumes; the next verify bounds the lag.
                    for k in frozen:
                        part[k] = partials[k] / norm
                        sq[k] = squares[k] / (norm * norm)
                        scale[k] = 1.0
            else:
                partials = runner.call("task_round",
                                       only=active) if active else []
                fit_stats.e_block_calls += len(active)
                worker_totals = np.zeros(n_workers)
                for p in partials:
                    worker_totals += p
                for k in frozen:
                    worker_totals += scale[k] * part[k]
                squares = runner.call("worker_round",
                                      shared=(worker_totals,),
                                      only=active) if active else []
                fit_stats.accumulate_calls += len(active)
                sq_total = sum(squares) + sum(
                    scale[k] ** 2 * sq[k] for k in frozen)
                norm = np.sqrt(sq_total / answers.n_answers)
                if norm > 0:
                    if active:
                        runner.call("scale_y", shared=(float(norm),),
                                    only=active)
                    for k in frozen:
                        scale[k] /= norm
        return fit_stats

    @staticmethod
    def _collect_state(runner, packed, delta) -> ShardState:
        """Capture the per-shard message session the next delta refit
        resumes from (collected by the combined final sweep)."""
        ranges = runner.task_ranges
        cuts = [ranges[0][0]] + [stop for _, stop in ranges]
        spec = runner.spec
        return ShardState(
            task_cuts=tuple(int(c) for c in cuts),
            sizes=(spec.n_tasks, spec.n_workers, spec.n_choices),
            blocks=[np.array(scores) for scores, _, _, _, _ in packed],
            stats=[None] * runner.n_shards,
            base_answers=(delta.prev.base_answers
                          if delta.prev is not None else 0),
            session={
                "family": "kos",
                "y": [y for _, _, y, _, _ in packed],
                "partial": [p for _, _, _, p, _ in packed],
                "sq": [q for _, _, _, _, q in packed],
            },
        )
