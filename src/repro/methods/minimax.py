"""Minimax (Zhou, Basu, Mao & Platt, NIPS 2012) — minimax entropy.

Models *diverse skills*: the answers worker ``w`` gives on task ``i``
are drawn from a per-(task, worker) distribution ``π^w_{i,·}`` whose
maximum-entropy form, subject to the paper's per-task column constraints
and per-worker confusion constraints, is

``π^w_i(k | truth j) = softmax_k( τ_{i,k} + σ^w_{j,k} )``

with per-task multipliers ``τ`` and per-worker multipliers ``σ``.
Inference alternates:

1. given the truth distribution ``q_i(j)``, fit ``τ, σ`` by gradient
   ascent on the expected regularised log-likelihood;
2. given ``τ, σ``, update ``q_i(j) ∝ p_j^γ Π_{w∈W_i} π^w_i(v^w_i | j)``
   with a tempered learned class prior (γ < 1).

Implementation notes (stability, found necessary on imbalanced data and
mirroring the regularised variant of Zhou et al.'s follow-up work):

* ``σ`` is warm-started at the log of the majority-vote confusion
  estimate — a cold start either collapses every task into the majority
  class or lets label semantics drift;
* gradients are normalised by each task's/worker's answer count so the
  step size is scale-free;
* ``τ`` carries a strong L2 penalty: each task contributes only a
  handful of answers, so unpenalised per-task multipliers absorb the
  observed answer frequencies over the outer iterations and flatten
  (then invert) the likelihood.

The survey finds Minimax slow (an optimisation problem per iteration)
and notably weaker than the pack on D_Product; both reproduce here.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    decode_posterior,
    log_normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult


@register
class MinimaxEntropy(CategoricalMethod):
    """Alternating minimax-entropy estimation."""

    name = "Minimax"
    supports_golden = True

    def __init__(self, learning_rate: float = 0.5, gradient_steps: int = 20,
                 l2_tau: float = 3.0, l2_sigma: float = 0.01,
                 prior_temper: float = 0.7, max_iter: int = 15,
                 **kwargs) -> None:
        super().__init__(max_iter=max_iter, **kwargs)
        if not 0.0 <= prior_temper <= 1.0:
            raise ValueError(
                f"prior_temper must be in [0, 1], got {prior_temper}"
            )
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.l2_tau = l2_tau
        self.l2_sigma = l2_sigma
        self.prior_temper = prior_temper

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_tasks, n_workers = answers.n_tasks, answers.n_workers
        n_choices = answers.n_choices
        count_t = np.maximum(answers.task_answer_counts(), 1)[:, None]
        count_w = np.maximum(answers.worker_answer_counts(), 1)[:, None, None]

        posterior = clamp_golden_posterior(self.majority_posterior(answers),
                                           golden)

        # Warm start: sigma = log of the Laplace-smoothed confusion
        # estimate under the majority posterior.
        counts = np.zeros((n_workers, n_choices, n_choices))
        np.add.at(counts, (workers, values), posterior[tasks])
        confusion = counts.transpose(0, 2, 1) + 1.0
        confusion /= confusion.sum(axis=2, keepdims=True)
        sigma = np.log(confusion)
        tau = np.zeros((n_tasks, n_choices))

        def model_log_probs(tau: np.ndarray, sigma: np.ndarray) -> np.ndarray:
            """Per-edge log π^w_i(k | j): shape (n_answers, j, k)."""
            scores = tau[tasks][:, None, :] + sigma[workers]
            scores = scores - scores.max(axis=2, keepdims=True)
            log_z = np.log(np.exp(scores).sum(axis=2, keepdims=True))
            return scores - log_z

        edge_index = np.arange(len(values))
        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        while True:
            # --- Parameter step: normalised gradient ascent. ---
            for _ in range(self.gradient_steps):
                log_pi = model_log_probs(tau, sigma)
                pi = np.exp(log_pi)
                post_edge = posterior[tasks]  # (n_answers, j)
                expected = post_edge[:, :, None] * pi
                observed = np.zeros_like(expected)
                observed[edge_index, :, values] = post_edge
                residual = observed - expected

                grad_tau = np.zeros_like(tau)
                np.add.at(grad_tau, tasks, residual.sum(axis=1))
                grad_sigma = np.zeros_like(sigma)
                np.add.at(grad_sigma, workers, residual)

                tau += self.learning_rate * (grad_tau / count_t
                                             - self.l2_tau * tau)
                sigma += self.learning_rate * (grad_sigma / count_w
                                               - self.l2_sigma * sigma)

            # --- Truth step: tempered-prior posterior. ---
            class_prior = np.clip(posterior.mean(axis=0), 1e-6, None)
            class_prior = class_prior / class_prior.sum()
            log_pi = model_log_probs(tau, sigma)
            edge_ll = log_pi[edge_index, :, values]
            log_post = np.tile(self.prior_temper * np.log(class_prior),
                               (n_tasks, 1))
            np.add.at(log_post, tasks, edge_ll)
            posterior = clamp_golden_posterior(log_normalize_rows(log_post),
                                               golden)
            if tracker.update(posterior):
                break

        # Worker quality: probability mass the worker's model puts on
        # answering correctly, averaged over truth classes.
        softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
        softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
        diag = np.arange(n_choices)
        quality = softmax_sigma[:, diag, diag].mean(axis=1)

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=quality,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"tau": tau, "sigma": sigma},
        )
