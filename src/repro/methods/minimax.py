"""Minimax (Zhou, Basu, Mao & Platt, NIPS 2012) — minimax entropy.

Models *diverse skills*: the answers worker ``w`` gives on task ``i``
are drawn from a per-(task, worker) distribution ``π^w_{i,·}`` whose
maximum-entropy form, subject to the paper's per-task column constraints
and per-worker confusion constraints, is

``π^w_i(k | truth j) = softmax_k( τ_{i,k} + σ^w_{j,k} )``

with per-task multipliers ``τ`` and per-worker multipliers ``σ``.
Inference alternates:

1. given the truth distribution ``q_i(j)``, fit ``τ, σ`` by gradient
   ascent on the expected regularised log-likelihood;
2. given ``τ, σ``, update ``q_i(j) ∝ p_j^γ Π_{w∈W_i} π^w_i(v^w_i | j)``
   with a tempered learned class prior (γ < 1).

Implementation notes (stability, found necessary on imbalanced data and
mirroring the regularised variant of Zhou et al.'s follow-up work):

* ``σ`` is warm-started at the log of the majority-vote confusion
  estimate — a cold start either collapses every task into the majority
  class or lets label semantics drift;
* gradients are normalised by each task's/worker's answer count so the
  step size is scale-free;
* ``τ`` carries a strong L2 penalty: each task contributes only a
  handful of answers, so unpenalised per-task multipliers absorb the
  observed answer frequencies over the outer iterations and flatten
  (then invert) the likelihood.

The survey finds Minimax slow (an optimisation problem per iteration)
and notably weaker than the pack on D_Product; both reproduce here.

Sharding: the M-step is itself iterative (``statistics_m_step = False``
like GLAD), so the spec drives the inner gradient rounds through the
runner — each round maps a shard-local residual kernel (``τ`` gradients
never leave their shard; ``σ`` gradient partials merge per round) and
the parameter updates run on the master.  The per-edge posterior and
observed tensors are fixed across one M-step's rounds and cached
shard-side by ``begin_m_step``.  One shard reproduces the historical
loop bit-for-bit.
"""

from __future__ import annotations

import functools
import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..inference.sharded import (
    ShardedEMSpec,
    majority_block,
    pad_rows,
    run_em_sharded,
)


class _MinimaxSpec(ShardedEMSpec):
    """Shard kernels of the minimax-entropy gradient rounds.

    ``count_t``/``count_w`` (the gradient normalisers) are stamped by
    ``_fit`` — master-side only, like CATD's chi-square coefficient:
    the M-step always runs on the master.
    """

    statistics_m_step = False

    #: Cadence of full exact gradient rounds inside a delta M-step:
    #: straddling workers and frozen ``τ`` rows advance only on these,
    #: so the cadence trades outer iterations against per-round cost.
    FULL_ROUND_EVERY = 4

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int,
                 learning_rate: float, gradient_steps: int, l2_tau: float,
                 l2_sigma: float, prior_temper: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.l2_tau = l2_tau
        self.l2_sigma = l2_sigma
        self.prior_temper = prior_temper

    def build_ops(self, shard: AnswerShard):
        return types.SimpleNamespace(
            edge_index=np.arange(len(shard.values)),
            post_edge=None,
            observed=None,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        # Clean shards' cached ops reference only their own (unchanged)
        # edges; the gradient kernels allocate worker-wide outputs at
        # the spec's current width, so grown sizes just update the
        # fields (a changed label space rebuilds everything).
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        return majority_block(shard)

    # -- parameter-step phases -----------------------------------------
    def confusion_counts(self, shard: AnswerShard, ops,
                         block: np.ndarray) -> np.ndarray:
        """Soft confusion partial driving the sigma warm start."""
        counts = np.zeros((self.n_workers, self.n_choices, self.n_choices))
        np.add.at(counts, (shard.workers, shard.values),
                  block[shard.local_tasks])
        return counts

    def begin_m_step(self, shard: AnswerShard, ops,
                     block: np.ndarray) -> None:
        """Cache the per-edge tensors fixed across one M-step's rounds."""
        post_edge = block[shard.local_tasks]  # (n_edges, j)
        observed = np.zeros(
            (len(shard.values), self.n_choices, self.n_choices))
        observed[ops.edge_index, :, shard.values] = post_edge
        ops.post_edge = post_edge
        ops.observed = observed

    def _edge_log_probs(self, shard: AnswerShard, tau_block: np.ndarray,
                        sigma: np.ndarray) -> np.ndarray:
        """Per-edge log π^w_i(k | j): shape (n_edges, j, k)."""
        scores = (tau_block[shard.local_tasks][:, None, :]
                  + sigma[shard.workers])
        scores = scores - scores.max(axis=2, keepdims=True)
        log_z = np.log(np.exp(scores).sum(axis=2, keepdims=True))
        return scores - log_z

    def grad_step(self, shard: AnswerShard, ops, tau_block: np.ndarray,
                  sigma: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One gradient round's shard partials: the local tau gradient
        block and the worker-wide sigma gradient partial."""
        pi = np.exp(self._edge_log_probs(shard, tau_block, sigma))
        expected = ops.post_edge[:, :, None] * pi
        residual = ops.observed - expected

        grad_tau = np.zeros((shard.n_local_tasks, self.n_choices))
        np.add.at(grad_tau, shard.local_tasks, residual.sum(axis=1))
        grad_sigma = np.zeros(
            (self.n_workers, self.n_choices, self.n_choices))
        np.add.at(grad_sigma, shard.workers, residual)
        return grad_tau, grad_sigma

    # -- master-side M-step --------------------------------------------
    def _init_sigma(self, runner, blocks) -> np.ndarray:
        counts = functools.reduce(
            np.add, runner.call("confusion_counts", per_shard=blocks))
        confusion = counts.transpose(0, 2, 1) + 1.0
        confusion /= confusion.sum(axis=2, keepdims=True)
        return np.log(confusion)

    def _gradient_rounds(self, runner, tau: np.ndarray, sigma: np.ndarray,
                         frozen=frozenset()) -> tuple[np.ndarray, np.ndarray]:
        """The master-driven ascent rounds (shared by the full and
        delta M-steps — same dispatch, same summation order).

        ``frozen`` (delta refits only) names shards whose posterior is
        pinned for this whole M-step.  Every ``FULL_ROUND_EVERY``-th
        round is then a full exact pass — every shard's kernel, every
        parameter stepped, so frozen ``τ`` rows and every worker's
        ``σ`` keep tracking the regulariser's slow manifold exactly as
        the full path does.  The rounds between run kernels only over
        the active shards and step only the parameters whose gradient
        those kernels determine completely: active ``τ`` rows and the
        ``σ`` rows of workers with no answers inside any frozen shard.
        A straddling worker therefore advances on exact steps at a
        reduced cadence instead of taking stale-gradient steps (which
        limit-cycle against the pinned posteriors and never converge).
        No stale gradient is ever applied; drift the active rounds
        can't see is caught by the delta loop's verify passes.  An
        empty ``frozen`` (every full fit) is the historical loop, bit
        for bit."""
        ranges = runner.task_ranges
        active = [k for k in range(runner.n_shards) if k not in frozen]
        local = None
        for step in range(self.gradient_steps):
            if not frozen or step % self.FULL_ROUND_EVERY == 0:
                results = runner.call(
                    "grad_step",
                    per_shard=[(tau[start:stop],)
                               for start, stop in ranges],
                    shared=(sigma,))
                grad_tau = np.concatenate([g for g, _ in results])
                grad_sigma = functools.reduce(np.add,
                                              [p for _, p in results])
                tau += self.learning_rate * (grad_tau / self.count_t
                                             - self.l2_tau * tau)
                sigma += self.learning_rate * (grad_sigma / self.count_w
                                               - self.l2_sigma * sigma)
                if frozen:
                    # σ rows the active kernels determine completely:
                    # support of a worker's gradient is their answer
                    # support, fixed across rounds.
                    in_frozen = np.zeros(self.n_workers, dtype=bool)
                    for k in frozen:
                        in_frozen |= np.any(results[k][1] != 0.0,
                                            axis=(1, 2))
                    local = ~in_frozen
                continue
            fresh = runner.call(
                "grad_step",
                per_shard=[(tau[ranges[k][0]:ranges[k][1]],)
                           for k in active],
                shared=(sigma,), only=active)
            grad_sigma = functools.reduce(
                np.add, [p for _, p in fresh],
                np.zeros((self.n_workers, self.n_choices,
                          self.n_choices)))
            sigma[local] += self.learning_rate * (
                grad_sigma[local] / self.count_w[local]
                - self.l2_sigma * sigma[local])
            for k, (g, _) in zip(active, fresh):
                start, stop = ranges[k]
                tau[start:stop] += self.learning_rate * (
                    g / self.count_t[start:stop]
                    - self.l2_tau * tau[start:stop])
        return tau, sigma

    @staticmethod
    def _class_prior(blocks) -> np.ndarray:
        class_prior = np.clip(
            np.concatenate(blocks).mean(axis=0), 1e-6, None)
        return class_prior / class_prior.sum()

    def m_step(self, runner, blocks, prev_params):
        if prev_params is None:
            tau = np.zeros((self.n_tasks, self.n_choices))
            sigma = self._init_sigma(runner, blocks)
        else:
            tau, sigma = prev_params[0], prev_params[1]
        runner.call("begin_m_step", per_shard=blocks)
        tau, sigma = self._gradient_rounds(runner, tau, sigma)
        return tau, sigma, self._class_prior(blocks)

    #: Marker recorded in a delta refit's stats cache for a frozen
    #: shard whose begin_m_step payload is held worker-side (valid
    #: until the shard's block changes).  Never carried across fits.
    MATCH_CACHED = "minimax-begin-cached"

    def _delta_begin(self, runner, blocks, frozen, stats_cache) -> None:
        """Ship begin_m_step payloads only where the worker-side cache
        is stale (active shards, or frozen ones whose cached payload
        was dropped) — the GLAD pattern: frozen shards keep their
        per-edge tensors resident, so no posterior block is reshipped
        for them."""
        need = [k for k in range(runner.n_shards)
                if k not in frozen
                or stats_cache[k] is not self.MATCH_CACHED]
        if need:
            runner.call("begin_m_step",
                        per_shard=[blocks[k] for k in need],
                        only=need)
        for k in frozen:
            stats_cache[k] = self.MATCH_CACHED

    def m_step_delta(self, runner, blocks, prev_params, frozen,
                     stats_cache, fit_stats=None):
        """Frozen-aware gradient M-step: restart the ascent from the
        cached ``τ/σ`` with only non-cached shards shipping their
        begin payloads, and frozen shards' gradient partials computed
        once per M-step instead of once per round — the active shards
        alone pay the per-round kernels."""
        if prev_params is None:
            return self.m_step(runner, blocks, prev_params)
        tau, sigma = prev_params[0], prev_params[1]
        self._delta_begin(runner, blocks, frozen, stats_cache)
        tau, sigma = self._gradient_rounds(runner, tau, sigma,
                                           frozen=frozen)
        if fit_stats is not None:
            active = runner.n_shards - len(frozen)
            full_rounds = (-(-self.gradient_steps // self.FULL_ROUND_EVERY)
                           if frozen else self.gradient_steps)
            fit_stats.accumulate_calls += (
                full_rounds * runner.n_shards
                + (self.gradient_steps - full_rounds) * active)
        return tau, sigma, self._class_prior(blocks)

    # -- truth step ----------------------------------------------------
    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        tau, sigma, class_prior = params[0], params[1], params[2]
        tau_block = tau[shard.task_start:shard.task_stop]
        log_pi = self._edge_log_probs(shard, tau_block, sigma)
        edge_ll = log_pi[ops.edge_index, :, shard.values]
        log_post = np.tile(self.prior_temper * np.log(class_prior),
                           (shard.n_local_tasks, 1))
        np.add.at(log_post, shard.local_tasks, edge_ll)
        return log_normalize_rows(log_post)

    # -- unused statistics hooks ---------------------------------------
    def accumulate(self, shard: AnswerShard, ops, block) -> None:
        raise NotImplementedError("Minimax's M-step is iterative")

    def finalize(self, stats) -> None:
        raise NotImplementedError("Minimax's M-step is iterative")


@register
class MinimaxEntropy(CategoricalMethod):
    """Alternating minimax-entropy estimation."""

    name = "Minimax"
    supports_golden = True
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True

    def __init__(self, learning_rate: float = 0.5, gradient_steps: int = 20,
                 l2_tau: float = 3.0, l2_sigma: float = 0.01,
                 prior_temper: float = 0.7, max_iter: int = 15,
                 **kwargs) -> None:
        super().__init__(max_iter=max_iter, **kwargs)
        if not 0.0 <= prior_temper <= 1.0:
            raise ValueError(
                f"prior_temper must be in [0, 1], got {prior_temper}"
            )
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.l2_tau = l2_tau
        self.l2_sigma = l2_sigma
        self.prior_temper = prior_temper

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _MinimaxSpec(
            n_tasks=n_tasks, n_workers=n_workers, n_choices=n_choices,
            learning_rate=self.learning_rate,
            gradient_steps=self.gradient_steps,
            l2_tau=self.l2_tau, l2_sigma=self.l2_sigma,
            prior_temper=self.prior_temper)

    def _warm_parameters(self, warm_start: InferenceResult,
                         answers: AnswerSet):
        """The cached ``τ/σ`` (padded to the grown sizes) and a class
        prior recomputed from the warm posterior — the restart point of
        a delta refit's gradient rounds.  Returns ``None`` when the
        warm extras are missing or shaped for a different label
        space."""
        tau = warm_start.extras.get("tau")
        sigma = warm_start.extras.get("sigma")
        if (tau is None or sigma is None
                or tau.shape[1] != answers.n_choices
                or sigma.shape[1:] != (answers.n_choices,
                                       answers.n_choices)):
            return None
        # Copies: the gradient rounds update tau/sigma in place, and
        # the cached result's extras must stay untouched.
        n_prev = len(sigma)
        tau = pad_rows(np.array(tau, dtype=np.float64), answers.n_tasks)
        sigma = pad_rows(np.array(sigma, dtype=np.float64),
                         answers.n_workers)
        if answers.n_workers > n_prev:
            # Unseen workers get the cold path's init — the log
            # majority-vote confusion — not zero rows: a zero σ row
            # makes a new worker's answers initially uninformative and
            # the coupled ascent spends dozens of iterations
            # bootstrapping them, slower than a cold start.
            n_choices = answers.n_choices
            post = np.zeros((answers.n_tasks, n_choices))
            np.add.at(post, (answers.tasks, answers.values), 1.0)
            post /= np.maximum(post.sum(axis=1, keepdims=True), 1.0)
            n_known = len(warm_start.posterior)
            post[:n_known] = warm_start.posterior
            counts = np.zeros((answers.n_workers - n_prev,
                               n_choices, n_choices))
            fresh = answers.workers >= n_prev
            np.add.at(counts,
                      (answers.workers[fresh] - n_prev,
                       answers.values[fresh]),
                      post[answers.tasks[fresh]])
            confusion = counts.transpose(0, 2, 1) + 1.0
            confusion /= confusion.sum(axis=2, keepdims=True)
            sigma[n_prev:] = np.log(confusion)
        class_prior = np.clip(
            warm_start.posterior.mean(axis=0), 1e-6, None)
        return tau, sigma, class_prior / class_prior.sum()

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        with self._shard_runner(answers, shard_runner, delta) as runner:
            spec = runner.spec
            spec.count_t = np.maximum(answers.task_answer_counts(),
                                      1)[:, None]
            spec.count_w = np.maximum(answers.worker_answer_counts(),
                                      1)[:, None, None]
            # Warm gradient restarts run only under a true delta plan:
            # without one the fit is cold, exactly the historical
            # behaviour (so refit="full" streams stay bit-identical).
            initial_parameters = None
            if (warm_start is not None and delta is not None
                    and delta.prev is not None):
                initial_parameters = self._warm_parameters(warm_start,
                                                           answers)
            warm = initial_parameters is not None
            if delta is not None and not warm:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_parameters=initial_parameters,
                delta=delta,
            )

        tau, sigma = outcome.parameters[0], outcome.parameters[1]
        # Worker quality: probability mass the worker's model puts on
        # answering correctly, averaged over truth classes.
        softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
        softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
        diag = np.arange(answers.n_choices)
        quality = softmax_sigma[:, diag, diag].mean(axis=1)

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"tau": tau, "sigma": sigma, "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
