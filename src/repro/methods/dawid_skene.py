"""D&S — Dawid & Skene (1979), maximum-likelihood observer error rates.

The most classical truth-inference method and, per the survey's Table 6,
still among the best.  Worker model: an ``l × l`` *confusion matrix*
``q^w`` where ``q^w[j, k] = Pr(worker answers k | truth is j)``.  EM:

* **E-step** — ``Pr(v*_i = j) ∝ p_j · Π_{w∈W_i} q^w[j, v^w_i]`` with
  class prior ``p``;
* **M-step** — confusion rows from expected counts, prior from the mean
  posterior.

A small Laplace smoothing keeps rows valid when a worker never saw some
truth class; LFC (see :mod:`repro.methods.lfc`) generalises this to full
Beta/Dirichlet priors.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.warmstart import (
    diagonal_confusion,
    expand_posterior,
    neutral_accuracy,
)
from ..inference.em import run_em


@dataclasses.dataclass
class _DSParameters:
    """Confusion matrices (n_workers, l, l) and class prior (l,)."""

    confusion: np.ndarray
    prior: np.ndarray


def initial_confusion_from_quality(quality: np.ndarray, n_choices: int
                                   ) -> np.ndarray:
    """Diagonal confusion matrices from scalar accuracies.

    Used to initialise confusion-matrix methods from a qualification
    test: accuracy ``a`` becomes ``a`` on the diagonal and
    ``(1-a)/(l-1)`` elsewhere.
    """
    quality = np.clip(np.asarray(quality, dtype=np.float64), 1e-3, 1 - 1e-3)
    n_workers = len(quality)
    off = (1.0 - quality) / max(n_choices - 1, 1)
    confusion = np.repeat(off[:, None, None], n_choices, axis=1)
    confusion = np.repeat(confusion, n_choices, axis=2)
    idx = np.arange(n_choices)
    confusion[:, idx, idx] = quality[:, None]
    return confusion


class _ConfusionMatrixEM(CategoricalMethod):
    """Shared EM implementation for D&S and LFC.

    Subclasses control the Dirichlet pseudo-counts added in the M-step:
    D&S uses a tiny symmetric smoothing, LFC a genuine prior with extra
    mass on the diagonal.
    """

    #: Pseudo-count added to every confusion cell in the M-step.
    smoothing_off_diagonal = 0.01
    #: Extra pseudo-count added to diagonal cells (LFC's prior belief
    #: that workers are better than random).
    smoothing_diagonal_bonus = 0.0

    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_choices = answers.n_choices
        n_workers = answers.n_workers
        diag = np.arange(n_choices)

        def m_step(posterior: np.ndarray) -> _DSParameters:
            # counts[w, k, j] accumulates posterior mass of truth j for
            # answers where worker w chose k; transposed to (w, j, k).
            counts = np.zeros((n_workers, n_choices, n_choices))
            np.add.at(counts, (workers, values), posterior[tasks])
            confusion = counts.transpose(0, 2, 1)
            confusion = confusion + self.smoothing_off_diagonal
            confusion[:, diag, diag] += self.smoothing_diagonal_bonus
            confusion /= confusion.sum(axis=2, keepdims=True)
            prior = posterior.mean(axis=0)
            prior = prior / prior.sum()
            return _DSParameters(confusion=confusion, prior=prior)

        def e_step(params: _DSParameters) -> np.ndarray:
            log_conf = np.log(np.clip(params.confusion, 1e-12, None))
            log_post = np.tile(np.log(np.clip(params.prior, 1e-12, None)),
                               (answers.n_tasks, 1))
            # log_conf[workers, :, values] has shape (n_answers, l): the
            # per-truth-class log-likelihood of each observed answer.
            contributions = log_conf[workers, :, values]
            np.add.at(log_post, tasks, contributions)
            return log_normalize_rows(log_post)

        start = None
        warm_params = None
        if warm_start is not None:
            prev_conf = warm_start.extras.get("confusion")
            prev_prior = warm_start.extras.get("class_prior")
            if prev_conf is not None and prev_prior is not None:
                # Resume from the previous confusion matrices; workers
                # that appeared since the last fit get neutral diagonal
                # matrices at the pool's mean accuracy.
                prev_conf = np.asarray(prev_conf, dtype=np.float64)
                n_new = n_workers - prev_conf.shape[0]
                if n_new > 0:
                    prev_conf = np.concatenate([
                        prev_conf,
                        diagonal_confusion(
                            n_new, n_choices,
                            neutral_accuracy(warm_start.worker_quality)),
                    ])
                warm_params = _DSParameters(
                    confusion=prev_conf,
                    prior=np.asarray(prev_prior, dtype=np.float64),
                )
            else:
                start = expand_posterior(warm_start.posterior, answers)
        elif initial_quality is not None:
            confusion0 = initial_confusion_from_quality(initial_quality, n_choices)
            prior0 = np.full(n_choices, 1.0 / n_choices)
            start = e_step(_DSParameters(confusion=confusion0, prior=prior0))
        else:
            start = self.majority_posterior(answers)

        outcome = run_em(
            initial_posterior=start,
            m_step=m_step,
            e_step=e_step,
            tolerance=self.tolerance,
            max_iter=self.max_iter,
            golden=golden,
            initial_parameters=warm_params,
        )
        params: _DSParameters = outcome.parameters
        quality = params.confusion[:, diag, diag].mean(axis=1)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={
                "confusion": params.confusion,
                "class_prior": params.prior,
                "warm_started": warm_start is not None,
            },
        )


@register
class DawidSkene(_ConfusionMatrixEM):
    """Plain maximum-likelihood D&S with minimal smoothing."""

    name = "D&S"
