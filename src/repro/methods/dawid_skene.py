"""D&S — Dawid & Skene (1979), maximum-likelihood observer error rates.

The most classical truth-inference method and, per the survey's Table 6,
still among the best.  Worker model: an ``l × l`` *confusion matrix*
``q^w`` where ``q^w[j, k] = Pr(worker answers k | truth is j)``.  EM:

* **E-step** — ``Pr(v*_i = j) ∝ p_j · Π_{w∈W_i} q^w[j, v^w_i]`` with
  class prior ``p``;
* **M-step** — confusion rows from expected counts, prior from the mean
  posterior.

A small Laplace smoothing keeps rows valid when a worker never saw some
truth class; LFC (see :mod:`repro.methods.lfc`) generalises this to full
Beta/Dirichlet priors.

Both steps are expressed as mergeable sufficient statistics over
task-range shards (:mod:`repro.inference.sharded`): the M-step is
``accumulate`` (expected per-worker answer×truth counts plus the
posterior column sums) → ``merge`` (plain addition) → ``finalize``
(smooth, normalise), and the E-step maps independently over shards.
The plain ``fit`` is simply the single-shard instance of that map-reduce
and reproduces the historical global-array implementation bit-for-bit
(the :mod:`~repro.inference.segops` operators preserve its accumulation
order exactly).
"""

from __future__ import annotations

import dataclasses
import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import (
    diagonal_confusion,
    expand_posterior,
    neutral_accuracy,
)
from ..inference.segops import BasedScatterAdd, SegmentSum
from ..inference.sharded import (
    ShardedEMSpec,
    SufficientStats,
    majority_block,
    pad_rows,
    run_em_sharded,
)


@dataclasses.dataclass
class _DSParameters:
    """Confusion matrices (n_workers, l, l) and class prior (l,)."""

    confusion: np.ndarray
    prior: np.ndarray


def initial_confusion_from_quality(quality: np.ndarray, n_choices: int
                                   ) -> np.ndarray:
    """Diagonal confusion matrices from scalar accuracies.

    Used to initialise confusion-matrix methods from a qualification
    test: accuracy ``a`` becomes ``a`` on the diagonal and
    ``(1-a)/(l-1)`` elsewhere.
    """
    quality = np.clip(np.asarray(quality, dtype=np.float64), 1e-3, 1 - 1e-3)
    n_workers = len(quality)
    off = (1.0 - quality) / max(n_choices - 1, 1)
    confusion = np.repeat(off[:, None, None], n_choices, axis=1)
    confusion = np.repeat(confusion, n_choices, axis=2)
    idx = np.arange(n_choices)
    confusion[:, idx, idx] = quality[:, None]
    return confusion


class _ConfusionSpec(ShardedEMSpec):
    """Sufficient statistics of the confusion-matrix EM (D&S / LFC).

    Per shard, ``accumulate`` produces

    * ``counts[w, k, j]`` — posterior mass of truth ``j`` on answers
      where worker ``w`` chose ``k`` (the expected contingency table);
    * ``posterior_sum[j]`` / ``n_tasks`` — for the class prior.

    Both merge by addition; ``finalize`` adds the Dirichlet
    pseudo-counts and row-normalises, exactly as the unsharded M-step
    always has.
    """

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int,
                 smoothing_off_diagonal: float,
                 smoothing_diagonal_bonus: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices
        self.smoothing_off_diagonal = smoothing_off_diagonal
        self.smoothing_diagonal_bonus = smoothing_diagonal_bonus

    def build_ops(self, shard: AnswerShard):
        n_choices = self.n_choices
        # Row w*l + k identifies the (worker, answered-label) cell.
        rows_wv = shard.workers * n_choices + shard.values
        return types.SimpleNamespace(
            # M-step: answers read their task's posterior row directly.
            count_sum=SegmentSum(rows_wv, self.n_workers * n_choices,
                                 cols=shard.local_tasks,
                                 n_cols=shard.n_local_tasks),
            # E-step: answers read their (worker, label) row of the
            # per-iteration log-likelihood table, on a log-prior base.
            e_scatter=BasedScatterAdd(shard.local_tasks,
                                      shard.n_local_tasks,
                                      cols=rows_wv,
                                      n_cols=self.n_workers * n_choices),
            # Worker width the operators were built at: a retained
            # operator from before a worker-space growth pads its
            # outputs up to (and reads tables sliced down to) this.
            n_workers=self.n_workers,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        # The interleaved (worker, label) row layout bakes n_choices
        # into every operator; worker/task growth is pad-compatible.
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        return majority_block(shard)

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        counts = ops.count_sum(block).reshape(
            ops.n_workers, self.n_choices, self.n_choices)
        return SufficientStats(
            counts=pad_rows(counts, self.n_workers),
            posterior_sum=block.sum(axis=0),
            n_tasks=float(block.shape[0]),
        )

    def finalize(self, stats: SufficientStats) -> _DSParameters:
        diag = np.arange(self.n_choices)
        # counts[w, k, j] -> confusion[w, j, k], then MAP smoothing.
        confusion = stats["counts"].transpose(0, 2, 1)
        confusion = confusion + self.smoothing_off_diagonal
        confusion[:, diag, diag] += self.smoothing_diagonal_bonus
        confusion /= confusion.sum(axis=2, keepdims=True)
        prior = stats["posterior_sum"] / stats["n_tasks"]
        prior = prior / prior.sum()
        return _DSParameters(confusion=confusion, prior=prior)

    def e_block(self, shard: AnswerShard, ops,
                params: _DSParameters) -> np.ndarray:
        # A retained operator predates any newly arrived workers; this
        # shard's answers reference none of them, so slicing their rows
        # off the table is exact.
        confusion = params.confusion[:ops.n_workers]
        log_conf = np.log(np.clip(confusion, 1e-12, None))
        # lc[w*l + k, j]: per-truth-class log-likelihood of worker w
        # answering k — a small table the kernel reads per answer, on
        # top of the log-prior base.
        lc = np.ascontiguousarray(log_conf.transpose(0, 2, 1)).reshape(
            ops.n_workers * self.n_choices, self.n_choices)
        log_prior = np.log(np.clip(params.prior, 1e-12, None))
        return log_normalize_rows(ops.e_scatter(log_prior, lc))


class _ConfusionMatrixEM(CategoricalMethod):
    """Shared EM implementation for D&S and LFC.

    Subclasses control the Dirichlet pseudo-counts added in the M-step:
    D&S uses a tiny symmetric smoothing, LFC a genuine prior with extra
    mass on the diagonal.
    """

    #: Pseudo-count added to every confusion cell in the M-step.
    smoothing_off_diagonal = 0.01
    #: Extra pseudo-count added to diagonal cells (LFC's prior belief
    #: that workers are better than random).
    smoothing_diagonal_bonus = 0.0

    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True
    supports_seed_posterior = True

    def make_em_spec(self, n_tasks: int, n_workers: int,
                     n_choices: int) -> _ConfusionSpec:
        return _ConfusionSpec(
            n_tasks=n_tasks,
            n_workers=n_workers,
            n_choices=n_choices,
            smoothing_off_diagonal=self.smoothing_off_diagonal,
            smoothing_diagonal_bonus=self.smoothing_diagonal_bonus,
        )

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        n_choices = answers.n_choices
        n_workers = answers.n_workers
        diag = np.arange(n_choices)
        with self._shard_runner(answers, shard_runner, delta) as runner:
            start = None
            warm_params = None
            if warm_start is not None:
                prev_conf = warm_start.extras.get("confusion")
                prev_prior = warm_start.extras.get("class_prior")
                if prev_conf is not None and prev_prior is not None:
                    # Resume from the previous confusion matrices;
                    # workers that appeared since the last fit get
                    # neutral diagonal matrices at the pool's mean
                    # accuracy.
                    prev_conf = np.asarray(prev_conf, dtype=np.float64)
                    n_new = n_workers - prev_conf.shape[0]
                    if n_new > 0:
                        prev_conf = np.concatenate([
                            prev_conf,
                            diagonal_confusion(
                                n_new, n_choices,
                                neutral_accuracy(warm_start.worker_quality)),
                        ])
                    warm_params = _DSParameters(
                        confusion=prev_conf,
                        prior=np.asarray(prev_prior, dtype=np.float64),
                    )
                else:
                    start = expand_posterior(warm_start.posterior, answers)
            elif initial_quality is not None:
                params0 = _DSParameters(
                    confusion=initial_confusion_from_quality(
                        initial_quality, n_choices),
                    prior=np.full(n_choices, 1.0 / n_choices),
                )
                start = np.concatenate(
                    runner.call("e_block", shared=(params0,)), axis=0)
            else:
                # None lets run_em_sharded fall through to the per-shard
                # majority-vote initialisation.
                start = seed_posterior

            if delta is not None and warm_params is None:
                # A delta refit resumes from warm parameters; without
                # them, run full but still collect the next fit's state.
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_posterior=start,
                initial_parameters=warm_params,
                delta=delta,
            )
        params: _DSParameters = outcome.parameters
        quality = params.confusion[:, diag, diag].mean(axis=1)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={
                "confusion": params.confusion,
                "class_prior": params.prior,
                "warm_started": warm_start is not None,
            },
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )


@register
class DawidSkene(_ConfusionMatrixEM):
    """Plain maximum-likelihood D&S with minimal smoothing."""

    name = "D&S"
