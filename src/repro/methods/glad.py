"""GLAD (Whitehill et al., NIPS 2009) — worker ability × task difficulty.

The only surveyed method with an explicit *task-difficulty* model: the
probability that worker ``w`` answers task ``i`` correctly is
``sigmoid(alpha_w * beta_i)`` where ``alpha_w`` is the worker's ability
(can be negative — a malicious worker) and ``beta_i > 0`` is the task's
easiness (the paper's ``1/(1+e^{-d_i q^w})``).

Inference is EM where the M-step runs gradient ascent on the expected
complete log-*posterior* over ``alpha`` and ``log beta`` (keeping
easiness positive).  Following the original paper, which is MAP
estimation with Gaussian priors on ability and difficulty, a weak
``N(1, 1/prior_strength)`` prior on ``alpha`` and ``N(0,
1/prior_strength)`` prior on ``log beta`` regularise the ascent — on
cleanly separable data the unpenalised likelihood is maximised at
``alpha·beta → ∞``, so without the prior the iteration never settles.
The data gradients have the compact form
``d/d alpha_w = Σ beta_i (P(truth = answer) − sigmoid)``, and
symmetrically for ``beta`` — this is what makes GLAD slow (Table 6 shows
it is orders of magnitude slower than D&S), and we keep that structure.

Multi-class answers spread the incorrect mass uniformly over the other
``l − 1`` labels, the standard generalisation the survey uses for
S_Rel / S_Adult.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    decode_posterior,
    log_normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.warmstart import expand_task_vector, expand_worker_vector


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


@register
class Glad(CategoricalMethod):
    """EM with gradient-ascent M-step over abilities and difficulties."""

    name = "GLAD"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True

    def __init__(self, learning_rate: float = 0.05, gradient_steps: int = 12,
                 prior_strength: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        if prior_strength < 0:
            raise ValueError("prior_strength must be non-negative")
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.prior_strength = prior_strength

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_choices = answers.n_choices

        if warm_start is not None:
            # Resume abilities and easiness from the previous fit (alpha
            # is GLAD's worker quality; easiness lives in the extras).
            # New workers start at the neutral ability 1.0, new tasks at
            # easiness 1 (log_beta = 0), as in a cold start.
            alpha = expand_worker_vector(warm_start.worker_quality,
                                         answers.n_workers, 1.0)
            prev_easiness = warm_start.extras.get("task_easiness")
            if prev_easiness is not None:
                log_beta = expand_task_vector(
                    np.log(np.clip(prev_easiness, np.exp(-5.0), np.exp(5.0))),
                    answers.n_tasks, 0.0,
                )
            else:
                log_beta = np.zeros(answers.n_tasks)
        elif initial_quality is not None:
            # Map accuracy in [0,1] to ability via the logit at beta=1.
            clipped = np.clip(initial_quality, 0.05, 0.95)
            alpha = np.log(clipped / (1.0 - clipped))
            log_beta = np.zeros(answers.n_tasks)
        else:
            alpha = np.ones(answers.n_workers)
            log_beta = np.zeros(answers.n_tasks)

        def e_step(alpha: np.ndarray, log_beta: np.ndarray) -> np.ndarray:
            p_correct = _sigmoid(alpha[workers] * np.exp(log_beta[tasks]))
            p_correct = np.clip(p_correct, 1e-10, 1 - 1e-10)
            log_c = np.log(p_correct)
            log_w = np.log((1.0 - p_correct) / max(n_choices - 1, 1))
            log_post = np.zeros((answers.n_tasks, n_choices))
            base = np.bincount(tasks, weights=log_w, minlength=answers.n_tasks)
            log_post += base[:, None]
            np.add.at(log_post, (tasks, values), log_c - log_w)
            return log_normalize_rows(log_post)

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        done = False
        if warm_start is not None:
            # Open with an E-step from the resumed parameters so the
            # starting posterior covers newly arrived tasks too; count
            # it so warm and cold iteration totals compare honestly.
            posterior = clamp_golden_posterior(e_step(alpha, log_beta), golden)
            done = tracker.update(posterior)
        else:
            posterior = clamp_golden_posterior(self.majority_posterior(answers),
                                               golden)
        while not done:
            # M-step: a few gradient-ascent steps on Q(alpha, log beta).
            match = posterior[tasks, values]
            for _ in range(self.gradient_steps):
                beta = np.exp(log_beta)
                p = _sigmoid(alpha[workers] * beta[tasks])
                residual = match - p
                grad_alpha = np.bincount(
                    workers, weights=residual * beta[tasks],
                    minlength=answers.n_workers,
                ) - self.prior_strength * (alpha - 1.0)
                grad_logbeta = np.bincount(
                    tasks, weights=residual * alpha[workers] * beta[tasks],
                    minlength=answers.n_tasks,
                ) - self.prior_strength * log_beta
                alpha = alpha + self.learning_rate * grad_alpha
                log_beta = log_beta + self.learning_rate * grad_logbeta
                # Mild clamping keeps exp(log_beta) finite on pathological
                # inputs without affecting normal runs.
                log_beta = np.clip(log_beta, -5.0, 5.0)
                alpha = np.clip(alpha, -10.0, 10.0)

            posterior = clamp_golden_posterior(e_step(alpha, log_beta), golden)
            if tracker.update(posterior):
                break

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=alpha,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"task_easiness": np.exp(log_beta),
                    "warm_started": warm_start is not None},
        )
