"""GLAD (Whitehill et al., NIPS 2009) — worker ability × task difficulty.

The only surveyed method with an explicit *task-difficulty* model: the
probability that worker ``w`` answers task ``i`` correctly is
``sigmoid(alpha_w * beta_i)`` where ``alpha_w`` is the worker's ability
(can be negative — a malicious worker) and ``beta_i > 0`` is the task's
easiness (the paper's ``1/(1+e^{-d_i q^w})``).

Inference is EM where the M-step runs gradient ascent on the expected
complete log-*posterior* over ``alpha`` and ``log beta`` (keeping
easiness positive).  Following the original paper, which is MAP
estimation with Gaussian priors on ability and difficulty, a weak
``N(1, 1/prior_strength)`` prior on ``alpha`` and ``N(0,
1/prior_strength)`` prior on ``log beta`` regularise the ascent — on
cleanly separable data the unpenalised likelihood is maximised at
``alpha·beta → ∞``, so without the prior the iteration never settles.
The data gradients have the compact form
``d/d alpha_w = Σ beta_i (P(truth = answer) − sigmoid)``, and
symmetrically for ``beta`` — this is what makes GLAD slow (Table 6 shows
it is orders of magnitude slower than D&S), and we keep that structure.

Multi-class answers spread the incorrect mass uniformly over the other
``l − 1`` labels, the standard generalisation the survey uses for
S_Rel / S_Adult.

Sharding: ``log beta`` is task-partitioned and ``alpha`` is global, so
each gradient-ascent step is itself a small map-reduce — shards return
their per-worker ability-gradient partial sums (merged by addition) and
their own slice of the easiness gradient.  The M-step therefore
overrides the default accumulate/merge/finalize path of
:class:`~repro.inference.sharded.ShardedEMSpec` with an iterated
map-reduce; the E-step maps over shards like every other method.
"""

from __future__ import annotations

import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import expand_task_vector, expand_worker_vector
from ..inference.segops import BasedScatterAdd, SegmentSum
from ..inference.sharded import (
    ShardedEMSpec,
    majority_block,
    pad_rows,
    run_em_sharded,
)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


class _GladSpec(ShardedEMSpec):
    """Sharded GLAD: mapped gradient rounds plus a mapped E-step.

    Parameters are the tuple ``(alpha, log_beta)`` — global worker
    abilities and the task-partitioned log-easiness.  ``initial_state``
    holds the cold-start values the first M-step ascends from (set by
    the fitting method; never needed by shard workers).
    """

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int,
                 learning_rate: float, gradient_steps: int,
                 prior_strength: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.prior_strength = prior_strength
        self.initial_state: tuple[np.ndarray, np.ndarray] | None = None
        # Per-shard posterior-match cache, refreshed once per M-step by
        # begin_m_step and read by every gradient round of that M-step
        # (worker-side state: lives in the process that runs the shard).
        self._match: dict[int, np.ndarray] = {}

    #: GLAD's M-step is an iterated gradient map-reduce, not mergeable
    #: statistics; delta refits go through :meth:`m_step_delta`.
    statistics_m_step = False

    def build_ops(self, shard: AnswerShard):
        rows_tv = shard.local_tasks * self.n_choices + shard.values
        return types.SimpleNamespace(
            worker_sum=SegmentSum(shard.workers, self.n_workers),
            task_sum=SegmentSum(shard.local_tasks, shard.n_local_tasks),
            bonus_scatter=BasedScatterAdd(
                rows_tv, shard.n_local_tasks * self.n_choices),
            n_workers=self.n_workers,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def invalidate_shard(self, index: int) -> None:
        super().invalidate_shard(index)
        self._match.pop(index, None)

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        return majority_block(shard)

    # -- M-step: iterated gradient map-reduce --------------------------
    def m_step(self, runner, blocks, prev_params):
        if prev_params is not None:
            alpha, log_beta = prev_params
        else:
            assert self.initial_state is not None, \
                "cold GLAD m_step needs spec.initial_state"
            alpha, log_beta = self.initial_state
        ranges = runner.task_ranges
        # One pass caches each shard's posterior-match vector so the
        # gradient rounds neither regather it nor reship the blocks.
        runner.call("begin_m_step", per_shard=blocks)
        for _ in range(self.gradient_steps):
            partials = runner.call(
                "grad_step",
                per_shard=[log_beta[start:stop] for start, stop in ranges],
                shared=(alpha,),
            )
            data_alpha = partials[0][0]
            for part, _unused in partials[1:]:
                data_alpha = data_alpha + part
            grad_alpha = data_alpha - self.prior_strength * (alpha - 1.0)
            data_beta = (partials[0][1] if len(partials) == 1 else
                         np.concatenate([p[1] for p in partials]))
            grad_logbeta = data_beta - self.prior_strength * log_beta
            alpha = alpha + self.learning_rate * grad_alpha
            log_beta = log_beta + self.learning_rate * grad_logbeta
            # Mild clamping keeps exp(log_beta) finite on pathological
            # inputs without affecting normal runs.
            log_beta = np.clip(log_beta, -5.0, 5.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        return (alpha, log_beta)

    #: Marker recorded in a delta refit's stats cache for a frozen
    #: shard whose posterior-match is held worker-side (valid until the
    #: shard's block changes).  Never carried across fits.
    MATCH_CACHED = "glad-match-cached"

    def m_step_delta(self, runner, blocks, prev_params, frozen,
                     stats_cache, fit_stats=None):
        """Frozen-aware gradient M-step for delta refits.

        GLAD freezes the *posterior match* of a frozen shard, not its
        gradient: a cached per-worker gradient partial destabilises the
        ascent (the data gradient depends strongly on the current
        ``alpha``/``beta``, so replaying a stale partial for twelve
        rounds sends the ascent off), whereas gradients computed fresh
        against a frozen posterior are exactly the incremental-EM
        M-step given the frozen E-state — stable by construction.  The
        saving for a frozen shard is its skipped E-steps plus the
        ``begin_m_step`` payload: its match stays cached worker-side
        across M-steps (and, in the process tier, across fit messages),
        so no posterior block is shipped for it.
        """
        if prev_params is not None:
            alpha, log_beta = prev_params
        else:
            assert self.initial_state is not None, \
                "cold GLAD m_step needs spec.initial_state"
            alpha, log_beta = self.initial_state
        alpha = np.array(alpha, dtype=np.float64)
        log_beta = np.array(log_beta, dtype=np.float64)
        ranges = runner.task_ranges
        need_begin = [k for k in range(runner.n_shards)
                      if k not in frozen
                      or stats_cache[k] is not self.MATCH_CACHED]
        if need_begin:
            runner.call("begin_m_step",
                        per_shard=[blocks[k] for k in need_begin],
                        only=need_begin)
        for k in frozen:
            stats_cache[k] = self.MATCH_CACHED
        # The gradient rounds mirror m_step exactly (same dispatch,
        # same summation order); only the begin payloads were skipped.
        for _ in range(self.gradient_steps):
            partials = runner.call(
                "grad_step",
                per_shard=[log_beta[start:stop]
                           for start, stop in ranges],
                shared=(alpha,),
            )
            data_alpha = partials[0][0]
            for part, _unused in partials[1:]:
                data_alpha = data_alpha + part
            grad_alpha = data_alpha - self.prior_strength * (alpha - 1.0)
            data_beta = (partials[0][1] if len(partials) == 1 else
                         np.concatenate([p[1] for p in partials]))
            grad_logbeta = data_beta - self.prior_strength * log_beta
            alpha = alpha + self.learning_rate * grad_alpha
            log_beta = log_beta + self.learning_rate * grad_logbeta
            log_beta = np.clip(log_beta, -5.0, 5.0)
            alpha = np.clip(alpha, -10.0, 10.0)
        if fit_stats is not None:
            fit_stats.accumulate_calls += (runner.n_shards
                                           * self.gradient_steps)
        return (alpha, log_beta)

    def begin_m_step(self, shard: AnswerShard, ops,
                     block: np.ndarray) -> None:
        """Cache this shard's posterior mass on the answered labels for
        the gradient rounds of the current M-step."""
        self._match[shard.index] = block[shard.local_tasks, shard.values]

    def grad_step(self, shard: AnswerShard, ops,
                  log_beta_local: np.ndarray, alpha: np.ndarray):
        """One shard's data gradients at the current ``(alpha, beta)``:
        per-worker partial sums (to merge) and the local easiness
        gradient (to concatenate)."""
        beta_t = np.exp(log_beta_local)[shard.local_tasks]
        alpha_w = alpha[shard.workers]
        p = _sigmoid(alpha_w * beta_t)
        residual = self._match[shard.index] - p
        return (pad_rows(ops.worker_sum(residual * beta_t),
                         self.n_workers),
                ops.task_sum((residual * alpha_w) * beta_t))

    # The statistics hooks are unused — m_step above replaces them.
    def accumulate(self, shard, ops, block):  # pragma: no cover
        raise NotImplementedError("GLAD merges gradients, not statistics")

    def finalize(self, stats):  # pragma: no cover
        raise NotImplementedError("GLAD merges gradients, not statistics")

    # -- E-step --------------------------------------------------------
    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        alpha, log_beta = params
        log_beta_local = log_beta[shard.task_start: shard.task_stop]
        p_correct = _sigmoid(
            alpha[shard.workers]
            * np.exp(log_beta_local)[shard.local_tasks])
        p_correct = np.clip(p_correct, 1e-10, 1 - 1e-10)
        log_c = np.log(p_correct)
        log_w = np.log((1.0 - p_correct) / max(self.n_choices - 1, 1))
        base = ops.task_sum(log_w)
        base_cells = np.broadcast_to(
            base[:, None], (shard.n_local_tasks, self.n_choices)
        ).reshape(-1)
        log_post = ops.bonus_scatter(base_cells, log_c - log_w).reshape(
            shard.n_local_tasks, self.n_choices)
        return log_normalize_rows(log_post)


@register
class Glad(CategoricalMethod):
    """EM with gradient-ascent M-step over abilities and difficulties."""

    name = "GLAD"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True
    supports_seed_posterior = True

    def __init__(self, learning_rate: float = 0.05, gradient_steps: int = 12,
                 prior_strength: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        if prior_strength < 0:
            raise ValueError("prior_strength must be non-negative")
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.prior_strength = prior_strength

    def make_em_spec(self, n_tasks: int, n_workers: int,
                     n_choices: int) -> _GladSpec:
        return _GladSpec(
            n_tasks=n_tasks,
            n_workers=n_workers,
            n_choices=n_choices,
            learning_rate=self.learning_rate,
            gradient_steps=self.gradient_steps,
            prior_strength=self.prior_strength,
        )

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        start = None
        warm_params = None
        if warm_start is not None:
            # Resume abilities and easiness from the previous fit (alpha
            # is GLAD's worker quality; easiness lives in the extras).
            # New workers start at the neutral ability 1.0, new tasks at
            # easiness 1 (log_beta = 0), as in a cold start.
            alpha = expand_worker_vector(warm_start.worker_quality,
                                         answers.n_workers, 1.0)
            prev_easiness = warm_start.extras.get("task_easiness")
            if prev_easiness is not None:
                log_beta = expand_task_vector(
                    np.log(np.clip(prev_easiness, np.exp(-5.0), np.exp(5.0))),
                    answers.n_tasks, 0.0,
                )
            else:
                log_beta = np.zeros(answers.n_tasks)
            warm_params = (alpha, log_beta)
            cold_state = None
        elif initial_quality is not None:
            # Map accuracy in [0,1] to ability via the logit at beta=1.
            clipped = np.clip(initial_quality, 0.05, 0.95)
            cold_state = (np.log(clipped / (1.0 - clipped)),
                          np.zeros(answers.n_tasks))
            start = seed_posterior
        else:
            cold_state = (np.ones(answers.n_workers),
                          np.zeros(answers.n_tasks))
            start = seed_posterior

        with self._shard_runner(answers, shard_runner, delta) as runner:
            runner.spec.initial_state = cold_state
            if delta is not None and warm_params is None:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_posterior=start,
                initial_parameters=warm_params,
                delta=delta,
            )
        alpha, log_beta = outcome.parameters
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=alpha,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"task_easiness": np.exp(log_beta),
                    "warm_started": warm_start is not None},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
