"""Ordinal minimax conditional entropy (Zhou, Liu, Platt & Meek, 2014).

An *extension* beyond the survey's 17 methods (the survey cites this as
[62] but does not evaluate it): for tasks whose choices are ordinal —
relevance grades, maturity ratings — the plain minimax-entropy model
wastes parameters on arbitrary label confusions.  The ordinal variant
ties the worker multipliers through threshold features: for every split
``s ∈ {1, …, l−1}`` the labels are dichotomised into ``< s`` and
``≥ s``, and the worker's behaviour is parameterised *per split* by a
2×2 matrix ``ω^w_s[a, b]`` (a = truth side, b = answer side):

``σ^w[j, k] = Σ_s ω^w_s[ 1[j ≥ s], 1[k ≥ s] ]``

This reduces per-worker parameters from ``l²`` to ``4(l−1)`` and forces
confusions to respect the label ordering — confusing 'relevant' with
'highly relevant' is cheap, confusing it with 'broken link' is not.
Everything else (per-task ``τ``, alternating optimisation, warm start,
tempered class prior) follows :mod:`repro.methods.minimax`.

Registered as ``"Minimax-Ord"`` with ``is_extension = True``: it never
enters the paper-faithful method lists unless explicitly requested.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    decode_posterior,
    log_normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult


@register
class MinimaxOrdinal(CategoricalMethod):
    """Minimax conditional entropy with ordinal threshold features."""

    name = "Minimax-Ord"
    is_extension = True
    supports_golden = True

    def __init__(self, learning_rate: float = 0.5, gradient_steps: int = 20,
                 l2_tau: float = 3.0, l2_omega: float = 0.01,
                 prior_temper: float = 0.7, max_iter: int = 15,
                 **kwargs) -> None:
        super().__init__(max_iter=max_iter, **kwargs)
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.l2_tau = l2_tau
        self.l2_omega = l2_omega
        self.prior_temper = prior_temper

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_tasks, n_workers = answers.n_tasks, answers.n_workers
        n_choices = answers.n_choices
        n_splits = max(n_choices - 1, 1)
        count_t = np.maximum(answers.task_answer_counts(), 1)[:, None]
        count_w = np.maximum(answers.worker_answer_counts(),
                             1)[:, None, None, None]

        # side[s, j] = 1 when label j lies at or above split s.
        splits = np.arange(1, n_splits + 1)
        labels = np.arange(n_choices)
        side = (labels[None, :] >= splits[:, None]).astype(np.int64)

        posterior = clamp_golden_posterior(self.majority_posterior(answers),
                                           golden)

        # Warm start omega from the majority-vote split statistics: for
        # each split, a 2x2 log-confusion over the dichotomised labels.
        omega = np.zeros((n_workers, n_splits, 2, 2))
        counts2 = np.zeros((n_workers, n_splits, 2, 2))
        truth_hat = posterior.argmax(axis=1)
        for s in range(n_splits):
            truth_side = side[s][truth_hat[tasks]]
            answer_side = side[s][values]
            np.add.at(counts2, (workers, s, truth_side, answer_side), 1.0)
        counts2 += 1.0  # Laplace
        omega = np.log(counts2 / counts2.sum(axis=3, keepdims=True))

        def sigma_from_omega(omega: np.ndarray) -> np.ndarray:
            """Expand split parameters into the (w, j, k) multipliers."""
            sigma = np.zeros((n_workers, n_choices, n_choices))
            for s in range(n_splits):
                sigma += omega[:, s][:, side[s][:, None], side[s][None, :]]
            return sigma

        def model_log_probs(tau, sigma):
            scores = tau[tasks][:, None, :] + sigma[workers]
            scores = scores - scores.max(axis=2, keepdims=True)
            log_z = np.log(np.exp(scores).sum(axis=2, keepdims=True))
            return scores - log_z

        tau = np.zeros((n_tasks, n_choices))
        edge_index = np.arange(len(values))
        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        while True:
            for _ in range(self.gradient_steps):
                sigma = sigma_from_omega(omega)
                log_pi = model_log_probs(tau, sigma)
                pi = np.exp(log_pi)
                post_edge = posterior[tasks]
                expected = post_edge[:, :, None] * pi
                observed = np.zeros_like(expected)
                observed[edge_index, :, values] = post_edge
                residual = observed - expected  # (n_answers, j, k)

                grad_tau = np.zeros_like(tau)
                np.add.at(grad_tau, tasks, residual.sum(axis=1))

                # Chain rule into the split parameters: each (j, k) cell
                # feeds the (1[j>=s], 1[k>=s]) cell of every split s.
                grad_sigma = np.zeros((n_workers, n_choices, n_choices))
                np.add.at(grad_sigma, workers, residual)
                grad_omega = np.zeros_like(omega)
                for s in range(n_splits):
                    for a in (0, 1):
                        for b in (0, 1):
                            mask = ((side[s][:, None] == a)
                                    & (side[s][None, :] == b))
                            grad_omega[:, s, a, b] = grad_sigma[:, mask].sum(
                                axis=1)

                tau += self.learning_rate * (grad_tau / count_t
                                             - self.l2_tau * tau)
                omega += self.learning_rate * (grad_omega / count_w
                                               - self.l2_omega * omega)

            sigma = sigma_from_omega(omega)
            class_prior = np.clip(posterior.mean(axis=0), 1e-6, None)
            class_prior = class_prior / class_prior.sum()
            log_pi = model_log_probs(tau, sigma)
            edge_ll = log_pi[edge_index, :, values]
            log_post = np.tile(self.prior_temper * np.log(class_prior),
                               (n_tasks, 1))
            np.add.at(log_post, tasks, edge_ll)
            posterior = clamp_golden_posterior(log_normalize_rows(log_post),
                                               golden)
            if tracker.update(posterior):
                break

        sigma = sigma_from_omega(omega)
        softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
        softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
        diag = np.arange(n_choices)
        quality = softmax_sigma[:, diag, diag].mean(axis=1)

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=quality,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"tau": tau, "omega": omega, "sigma": sigma},
        )
