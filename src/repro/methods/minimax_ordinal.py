"""Ordinal minimax conditional entropy (Zhou, Liu, Platt & Meek, 2014).

An *extension* beyond the survey's 17 methods (the survey cites this as
[62] but does not evaluate it): for tasks whose choices are ordinal —
relevance grades, maturity ratings — the plain minimax-entropy model
wastes parameters on arbitrary label confusions.  The ordinal variant
ties the worker multipliers through threshold features: for every split
``s ∈ {1, …, l−1}`` the labels are dichotomised into ``< s`` and
``≥ s``, and the worker's behaviour is parameterised *per split* by a
2×2 matrix ``ω^w_s[a, b]`` (a = truth side, b = answer side):

``σ^w[j, k] = Σ_s ω^w_s[ 1[j ≥ s], 1[k ≥ s] ]``

This reduces per-worker parameters from ``l²`` to ``4(l−1)`` and forces
confusions to respect the label ordering — confusing 'relevant' with
'highly relevant' is cheap, confusing it with 'broken link' is not.
Everything else (per-task ``τ``, alternating optimisation, warm start,
tempered class prior) follows :mod:`repro.methods.minimax`, including
the sharded gradient rounds: the shard kernels are inherited unchanged
(the residuals don't know about splits) and only the master-side
parameter updates chain-rule the merged ``σ`` gradient into ``ω``.

Registered as ``"Minimax-Ord"`` with ``is_extension = True``: it never
enters the paper-faithful method lists unless explicitly requested.
"""

from __future__ import annotations

import functools
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..inference.sharded import pad_rows, run_em_sharded
from .minimax import _MinimaxSpec


class _MinimaxOrdinalSpec(_MinimaxSpec):
    """Minimax shard kernels with split-parameterised workers.

    ``grad_step``/``begin_m_step``/``e_block`` come from the parent —
    the shards see only ``τ`` and the expanded ``σ``; the ``ω``
    bookkeeping is entirely master-side.
    """

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int,
                 learning_rate: float, gradient_steps: int, l2_tau: float,
                 l2_omega: float, prior_temper: float) -> None:
        super().__init__(
            n_tasks=n_tasks, n_workers=n_workers, n_choices=n_choices,
            learning_rate=learning_rate, gradient_steps=gradient_steps,
            l2_tau=l2_tau, l2_sigma=l2_omega, prior_temper=prior_temper)
        self.l2_omega = l2_omega
        self.n_splits = max(n_choices - 1, 1)
        # side[s, j] = 1 when label j lies at or above split s.
        splits = np.arange(1, self.n_splits + 1)
        labels = np.arange(n_choices)
        self.side = (labels[None, :] >= splits[:, None]).astype(np.int64)

    # -- phases --------------------------------------------------------
    def split_counts(self, shard: AnswerShard, ops,
                     block: np.ndarray) -> np.ndarray:
        """Per-split 2x2 confusion partial driving the omega warm
        start (integral counts, so the merge is exact)."""
        counts2 = np.zeros((self.n_workers, self.n_splits, 2, 2))
        truth_hat = block.argmax(axis=1)
        for s in range(self.n_splits):
            truth_side = self.side[s][truth_hat[shard.local_tasks]]
            answer_side = self.side[s][shard.values]
            np.add.at(counts2, (shard.workers, s, truth_side, answer_side),
                      1.0)
        return counts2

    # -- master-side M-step --------------------------------------------
    def _init_omega(self, runner, blocks) -> np.ndarray:
        counts2 = functools.reduce(
            np.add, runner.call("split_counts", per_shard=blocks))
        counts2 += 1.0  # Laplace
        return np.log(counts2 / counts2.sum(axis=3, keepdims=True))

    def _sigma_from_omega(self, omega: np.ndarray) -> np.ndarray:
        """Expand split parameters into the (w, j, k) multipliers."""
        sigma = np.zeros((self.n_workers, self.n_choices, self.n_choices))
        for s in range(self.n_splits):
            sigma += omega[:, s][:, self.side[s][:, None],
                                 self.side[s][None, :]]
        return sigma

    def _omega_rounds(self, runner, tau, omega):
        """The master-driven gradient rounds over ``τ`` and ``ω`` —
        shared verbatim by the cold M-step and the delta restart."""
        ranges = runner.task_ranges
        for _ in range(self.gradient_steps):
            sigma = self._sigma_from_omega(omega)
            results = runner.call(
                "grad_step",
                per_shard=[(tau[start:stop],) for start, stop in ranges],
                shared=(sigma,))
            grad_tau = np.concatenate([g for g, _ in results])
            grad_sigma = functools.reduce(np.add,
                                          [p for _, p in results])

            # Chain rule into the split parameters: each (j, k) cell
            # feeds the (1[j>=s], 1[k>=s]) cell of every split s.
            grad_omega = np.zeros_like(omega)
            for s in range(self.n_splits):
                for a in (0, 1):
                    for b in (0, 1):
                        mask = ((self.side[s][:, None] == a)
                                & (self.side[s][None, :] == b))
                        grad_omega[:, s, a, b] = grad_sigma[:, mask].sum(
                            axis=1)

            tau += self.learning_rate * (grad_tau / self.count_t
                                         - self.l2_tau * tau)
            omega += self.learning_rate * (grad_omega / self.count_w
                                           - self.l2_omega * omega)
        return tau, omega

    def m_step(self, runner, blocks, prev_params):
        if prev_params is None:
            tau = np.zeros((self.n_tasks, self.n_choices))
            omega = self._init_omega(runner, blocks)
        else:
            tau, omega = prev_params[0], prev_params[3]
        runner.call("begin_m_step", per_shard=blocks)
        tau, omega = self._omega_rounds(runner, tau, omega)
        return (tau, self._sigma_from_omega(omega),
                self._class_prior(blocks), omega)

    def m_step_delta(self, runner, blocks, prev_params, frozen,
                     stats_cache, fit_stats=None):
        """Delta M-step: converged shards keep their cached residual
        tables (``begin_m_step`` skipped); the gradient rounds still
        span every shard, which is exact because frozen shards'
        posterior blocks are pinned."""
        if prev_params is None:
            return self.m_step(runner, blocks, prev_params)
        tau, omega = prev_params[0], prev_params[3]
        self._delta_begin(runner, blocks, frozen, stats_cache)
        tau, omega = self._omega_rounds(runner, tau, omega)
        if fit_stats is not None:
            fit_stats.accumulate_calls += (runner.n_shards
                                           * self.gradient_steps)
        return (tau, self._sigma_from_omega(omega),
                self._class_prior(blocks), omega)


@register
class MinimaxOrdinal(CategoricalMethod):
    """Minimax conditional entropy with ordinal threshold features."""

    name = "Minimax-Ord"
    is_extension = True
    supports_golden = True
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True

    def __init__(self, learning_rate: float = 0.5, gradient_steps: int = 20,
                 l2_tau: float = 3.0, l2_omega: float = 0.01,
                 prior_temper: float = 0.7, max_iter: int = 15,
                 **kwargs) -> None:
        super().__init__(max_iter=max_iter, **kwargs)
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.l2_tau = l2_tau
        self.l2_omega = l2_omega
        self.prior_temper = prior_temper

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _MinimaxOrdinalSpec(
            n_tasks=n_tasks, n_workers=n_workers, n_choices=n_choices,
            learning_rate=self.learning_rate,
            gradient_steps=self.gradient_steps,
            l2_tau=self.l2_tau, l2_omega=self.l2_omega,
            prior_temper=self.prior_temper)

    def _warm_parameters(self, warm_start: InferenceResult,
                         answers: AnswerSet, spec):
        """Cached ``τ/ω`` padded to the grown sizes, with ``σ``
        re-expanded from ``ω`` and the class prior recomputed from the
        warm posterior.  ``None`` when the warm extras don't match the
        current label space."""
        tau = warm_start.extras.get("tau")
        omega = warm_start.extras.get("omega")
        if (tau is None or omega is None
                or tau.shape[1] != answers.n_choices
                or omega.shape[1:] != (spec.n_splits, 2, 2)):
            return None
        tau = pad_rows(np.array(tau, dtype=np.float64), answers.n_tasks)
        omega = pad_rows(np.array(omega, dtype=np.float64),
                         answers.n_workers)
        class_prior = np.clip(
            warm_start.posterior.mean(axis=0), 1e-6, None)
        return (tau, spec._sigma_from_omega(omega),
                class_prior / class_prior.sum(), omega)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        with self._shard_runner(answers, shard_runner, delta) as runner:
            spec = runner.spec
            spec.count_t = np.maximum(answers.task_answer_counts(),
                                      1)[:, None]
            spec.count_w = np.maximum(answers.worker_answer_counts(),
                                      1)[:, None, None, None]
            initial_parameters = None
            if (warm_start is not None and delta is not None
                    and delta.prev is not None):
                initial_parameters = self._warm_parameters(
                    warm_start, answers, spec)
            warm = initial_parameters is not None
            if delta is not None and not warm:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_parameters=initial_parameters,
                delta=delta,
            )

        tau, sigma, omega = (outcome.parameters[0], outcome.parameters[1],
                             outcome.parameters[3])
        softmax_sigma = np.exp(sigma - sigma.max(axis=2, keepdims=True))
        softmax_sigma /= softmax_sigma.sum(axis=2, keepdims=True)
        diag = np.arange(answers.n_choices)
        quality = softmax_sigma[:, diag, diag].mean(axis=1)

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"tau": tau, "omega": omega, "sigma": sigma,
                    "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
