"""ZC — ZenCrowd (Demartini, Difallah & Cudré-Mauroux, WWW 2012).

Worker model: a single *worker probability* ``q^w`` in [0, 1] — the
probability the worker answers a task correctly.  ZC maximises the
likelihood of the observed answers with the truths as latent variables
(paper Equation 1) via EM:

* **E-step** — ``Pr(v*_i = z) ∝ Π_w q_w^{1[v=z]} ((1-q_w)/(l-1))^{1[v≠z]}``;
* **M-step** — ``q_w`` = expected fraction of worker ``w``'s answers that
  match the (soft) truth.

For single-choice tasks with ``l`` choices the incorrect-answer mass is
spread uniformly over the other ``l - 1`` choices, the standard
extension the survey applies to run ZC on S_Rel/S_Adult.

The M-step is expressed as mergeable sufficient statistics
(:mod:`repro.inference.sharded`): per shard, the posterior mass on the
answered labels summed per worker plus the per-worker answer counts;
merged by addition and finalised into ``q_w`` — so the same code runs
unsharded, sharded in-process, or fanned over worker processes.
"""

from __future__ import annotations

import functools
import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import clip_probability, decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import expand_worker_vector, neutral_accuracy
from ..inference.segops import BasedScatterAdd, SegmentSum
from ..inference.sharded import (
    ShardedEMSpec,
    SufficientStats,
    majority_block,
    pad_rows,
    run_em_sharded,
)


class _ZCSpec(ShardedEMSpec):
    """Sharded statistics of the worker-probability EM."""

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices

    def build_ops(self, shard: AnswerShard):
        rows_tv = shard.local_tasks * self.n_choices + shard.values
        return types.SimpleNamespace(
            # M-step: answers read their (task, answered-label) cell of
            # the posterior block directly.
            matched_sum=SegmentSum(shard.workers, self.n_workers,
                                   cols=rows_tv,
                                   n_cols=shard.n_local_tasks
                                   * self.n_choices),
            # E-step: per-answer reads of tiny per-worker tables.
            base_sum=SegmentSum(shard.local_tasks, shard.n_local_tasks,
                                cols=shard.workers,
                                n_cols=self.n_workers),
            bonus_scatter=BasedScatterAdd(
                rows_tv, shard.n_local_tasks * self.n_choices,
                cols=shard.workers, n_cols=self.n_workers),
            answer_counts=np.bincount(shard.workers,
                                      minlength=self.n_workers),
            # Worker width the operators were built at (see
            # ShardedEMSpec.resize).
            n_workers=self.n_workers,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        return majority_block(shard)

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        return SufficientStats(
            matched_sum=pad_rows(ops.matched_sum(np.ravel(block)),
                                 self.n_workers),
            answer_counts=pad_rows(ops.answer_counts, self.n_workers),
        )

    def finalize(self, stats: SufficientStats) -> np.ndarray:
        counts = np.maximum(stats["answer_counts"], 1)
        return stats["matched_sum"] / counts

    def e_block(self, shard: AnswerShard, ops,
                quality: np.ndarray) -> np.ndarray:
        # A retained operator predates any newly arrived workers, none
        # of which answered in this shard: slice their entries off.
        q = clip_probability(quality[:ops.n_workers])
        log_correct = np.log(q)
        log_wrong = np.log((1.0 - q) / max(self.n_choices - 1, 1))
        # Every answer contributes log_wrong to all labels of its task,
        # plus (log_correct - log_wrong) to the answered label; both are
        # per-worker tables read in place by the fused kernels.
        base = ops.base_sum(log_wrong)
        base_cells = np.broadcast_to(
            base[:, None], (shard.n_local_tasks, self.n_choices)
        ).reshape(-1)
        log_post = ops.bonus_scatter(
            base_cells, log_correct - log_wrong
        ).reshape(shard.n_local_tasks, self.n_choices)
        return log_normalize_rows(log_post)


@register
class ZenCrowd(CategoricalMethod):
    """EM over the worker-probability model."""

    name = "ZC"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True
    supports_seed_posterior = True

    def make_em_spec(self, n_tasks: int, n_workers: int,
                     n_choices: int) -> _ZCSpec:
        return _ZCSpec(n_tasks=n_tasks, n_workers=n_workers,
                       n_choices=n_choices)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        with self._shard_runner(answers, shard_runner, delta) as runner:
            start = None
            warm_params = None
            if warm_start is not None:
                # The worker probability *is* ZC's EM parameter: resume
                # from the previous qualities; unseen workers start at
                # the pool's neutral seed accuracy.
                warm_params = expand_worker_vector(
                    warm_start.worker_quality, answers.n_workers,
                    neutral_accuracy(warm_start.worker_quality),
                )
            elif initial_quality is not None:
                start = np.concatenate(
                    runner.call("e_block", shared=(initial_quality,)),
                    axis=0)
            else:
                start = seed_posterior

            if delta is not None and warm_params is None:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_posterior=start,
                initial_parameters=warm_params,
                delta=delta,
            )
            if (outcome.shard_state is not None
                    and all(s is not None
                            for s in outcome.shard_state.stats)):
                # The collected state already holds every shard's
                # statistics at the final posterior — finalizing their
                # merge IS the m_step below, minus the recomputation.
                quality = runner.spec.finalize(functools.reduce(
                    lambda a, b: a.merge(b), outcome.shard_state.stats))
            else:
                quality = runner.m_step(outcome.posterior)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"warm_started": warm_start is not None},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
