"""ZC — ZenCrowd (Demartini, Difallah & Cudré-Mauroux, WWW 2012).

Worker model: a single *worker probability* ``q^w`` in [0, 1] — the
probability the worker answers a task correctly.  ZC maximises the
likelihood of the observed answers with the truths as latent variables
(paper Equation 1) via EM:

* **E-step** — ``Pr(v*_i = z) ∝ Π_w q_w^{1[v=z]} ((1-q_w)/(l-1))^{1[v≠z]}``;
* **M-step** — ``q_w`` = expected fraction of worker ``w``'s answers that
  match the (soft) truth.

For single-choice tasks with ``l`` choices the incorrect-answer mass is
spread uniformly over the other ``l - 1`` choices, the standard
extension the survey applies to run ZC on S_Rel/S_Adult.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import clip_probability, decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.warmstart import expand_worker_vector, neutral_accuracy
from ..inference.em import run_em


@register
class ZenCrowd(CategoricalMethod):
    """EM over the worker-probability model."""

    name = "ZC"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_choices = answers.n_choices

        def e_step(quality: np.ndarray) -> np.ndarray:
            q = clip_probability(quality)
            log_correct = np.log(q)
            log_wrong = np.log((1.0 - q) / max(n_choices - 1, 1))
            # Every answer contributes log_wrong to all labels of its
            # task, plus (log_correct - log_wrong) to the answered label.
            log_post = np.zeros((answers.n_tasks, n_choices))
            base = np.bincount(tasks, weights=log_wrong[workers],
                               minlength=answers.n_tasks)
            log_post += base[:, None]
            bonus = (log_correct - log_wrong)[workers]
            np.add.at(log_post, (tasks, values), bonus)
            return log_normalize_rows(log_post)

        def m_step(posterior: np.ndarray) -> np.ndarray:
            matched = posterior[tasks, values]
            sums = np.bincount(workers, weights=matched,
                               minlength=answers.n_workers)
            counts = np.maximum(answers.worker_answer_counts(), 1)
            return sums / counts

        start = None
        warm_params = None
        if warm_start is not None:
            # The worker probability *is* ZC's EM parameter: resume from
            # the previous qualities; unseen workers start at the pool's
            # neutral seed accuracy.
            warm_params = expand_worker_vector(
                warm_start.worker_quality, answers.n_workers,
                neutral_accuracy(warm_start.worker_quality),
            )
        elif initial_quality is not None:
            start = e_step(initial_quality)
        else:
            start = self.majority_posterior(answers)

        outcome = run_em(
            initial_posterior=start,
            m_step=m_step,
            e_step=e_step,
            tolerance=self.tolerance,
            max_iter=self.max_iter,
            golden=golden,
            initial_parameters=warm_params,
        )
        quality = m_step(outcome.posterior)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(outcome.posterior, rng),
            worker_quality=quality,
            posterior=outcome.posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"warm_started": warm_start is not None},
        )
