"""Multi (Welinder, Branson, Perona & Belongie, NIPS 2010).

"The multidimensional wisdom of crowds": tasks live in a K-dimensional
latent topic space (``x_i ∈ R^K``), and each worker is a linear
classifier in that space — a direction ``w_w`` (diverse skills), a
threshold/bias ``b_w``, and an implicit variance captured by ``‖w_w‖``
(a longer vector ⇒ sharper, lower-variance decisions).  The probability
of a positive answer is ``sigmoid(⟨w_w, x_i⟩ + b_w)``.

Following the survey's description (Table 4: latent topics + diverse
skills + worker bias + worker variance, decision-making only), we do MAP
estimation by alternating gradient ascent on task vectors and worker
parameters with Gaussian priors — the Welinder paper's own inference is
this alternating MAP scheme.  The truth is decoded from the first latent
coordinate, whose prior separates the two classes (``x_i[0] ~ ±μ``).

The survey finds Multi is competitive but not a top performer and is
moderately slow; both follow from the gradient-based MAP loop.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import BinaryMethod
from ..core.framework import ConvergenceTracker, decode_posterior
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.tasktypes import LABEL_TRUE
from .glad import _sigmoid


@register
class MultidimensionalWisdom(BinaryMethod):
    """MAP estimation of the Welinder latent-space annotator model."""

    name = "Multi"

    def __init__(self, n_topics: int = 2, learning_rate: float = 0.1,
                 gradient_steps: int = 8, prior_scale: float = 1.0,
                 bias_prior_scale: float = 0.3,
                 class_separation: float = 1.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_topics < 1:
            raise ValueError(f"n_topics must be >= 1, got {n_topics}")
        self.n_topics = n_topics
        self.learning_rate = learning_rate
        self.gradient_steps = gradient_steps
        self.prior_scale = prior_scale
        # The bias prior must be tight: on imbalanced data a loose bias
        # absorbs the class skew and the task embeddings lose the class
        # signal entirely (every worker "prefers F" instead of most
        # tasks *being* F).
        self.bias_prior_scale = bias_prior_scale
        self.class_separation = class_separation

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        # Targets in {0, 1}: did the worker answer T?
        targets = (answers.values.astype(np.int64) == LABEL_TRUE).astype(float)
        n_tasks, n_workers = answers.n_tasks, answers.n_workers
        k = self.n_topics

        # Initialise task vectors from the vote share (first coordinate
        # carries the class signal), small noise on the other topics.
        counts = answers.vote_counts()
        totals = np.maximum(counts.sum(axis=1), 1.0)
        vote_share = counts[:, LABEL_TRUE] / totals
        x = rng.normal(scale=0.1, size=(n_tasks, k))
        x[:, 0] = (vote_share - 0.5) * 2.0 * self.class_separation

        # Workers start as the "ideal" annotator: aligned with the class
        # axis, zero bias.
        w = np.zeros((n_workers, k))
        w[:, 0] = 1.0
        b = np.zeros(n_workers)

        mu = self.class_separation
        inv_prior = 1.0 / (self.prior_scale**2)
        inv_prior_bias = 1.0 / (self.bias_prior_scale**2)
        # Gradients are normalised by per-task / per-worker answer counts
        # so the step size is independent of redundancy (without this,
        # high-redundancy tasks oscillate and the embedding diverges).
        count_t = np.maximum(answers.task_answer_counts(), 1)[:, None]
        count_w = np.maximum(answers.worker_answer_counts(), 1)

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        while True:
            for _ in range(self.gradient_steps):
                logits = np.einsum("ek,ek->e", w[workers], x[tasks]) + b[workers]
                residual = targets - _sigmoid(logits)  # per-edge

                # Task-vector gradients: pull x toward explaining the
                # answers, with a two-component prior on coordinate 0
                # (mixture of ±mu, approximated by pulling toward the
                # nearer mode) and zero-mean prior on the rest.
                grad_x = np.zeros_like(x)
                np.add.at(grad_x, tasks, residual[:, None] * w[workers])
                grad_x = grad_x / count_t
                nearer_mode = np.where(x[:, 0] >= 0, mu, -mu)
                grad_x[:, 0] -= inv_prior * (x[:, 0] - nearer_mode)
                grad_x[:, 1:] -= inv_prior * x[:, 1:]
                x = x + self.learning_rate * grad_x

                # Worker gradients with N(e_1, prior) / N(0, prior) priors.
                logits = np.einsum("ek,ek->e", w[workers], x[tasks]) + b[workers]
                residual = targets - _sigmoid(logits)
                grad_w = np.zeros_like(w)
                np.add.at(grad_w, workers, residual[:, None] * x[tasks])
                grad_w = grad_w / count_w[:, None]
                prior_mean = np.zeros_like(w)
                prior_mean[:, 0] = 1.0
                grad_w -= inv_prior * (w - prior_mean)
                grad_b = (np.bincount(workers, weights=residual,
                                      minlength=n_workers) / count_w
                          - inv_prior_bias * b)
                w = w + self.learning_rate * grad_w
                b = b + self.learning_rate * grad_b

            # Truth belief from the class coordinate.
            belief = _sigmoid(2.0 * mu * x[:, 0])
            if tracker.update(belief):
                break

        posterior = np.column_stack([1.0 - belief, belief])
        # Quality summary: alignment of the worker direction with the
        # class axis, scaled by its sharpness (vector norm) and penalised
        # by |bias| (systematic over/under-calling).
        norms = np.linalg.norm(w, axis=1)
        alignment = np.where(norms > 0, w[:, 0] / np.maximum(norms, 1e-12), 0.0)
        quality = _sigmoid(alignment * norms - np.abs(b))

        return InferenceResult(
            method=self.name,
            truths=decode_posterior(posterior, rng),
            worker_quality=quality,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={
                "task_embedding": x,
                "worker_direction": w,
                "worker_bias": b,
                "worker_variance": 1.0 / np.maximum(norms, 1e-12),
            },
        )
