"""CBCC — Community BCC (Venanzi et al., WWW 2014).

Extends BCC with *communities*: "each worker belongs to one community,
where each community has a representative confusion matrix, and workers
in the same community share very similar confusion matrices" (survey
Section 5.3).  This pools statistics across the long tail of workers
who answered only a handful of tasks.

Like our BCC (see :mod:`repro.methods.bcc`), the chain keeps the truth
as a soft posterior and samples the remaining latent structure:

1. sample each community's confusion matrix from the Dirichlet
   conditional aggregated over its members' (soft) answer counts;
2. sample each worker's community from the categorical conditional
   (likelihood of the worker's answers under each community matrix ×
   a Dirichlet-multinomial size prior);
3. sample the class prior and recompute the truth posterior, each
   worker answering through their community's matrix.

We follow the survey's simplified reading where a worker's matrix *is*
its community matrix; the per-worker perturbation of the original model
matters mostly for very large pools.

Sharding mirrors BCC (shared :class:`~repro.methods.bcc` shard
kernels): the per-worker soft counts map-reduce over the shards, and
every draw — community matrices, memberships, class prior — happens in
the master-side ``sample`` closure, which also owns the membership
vector across sweeps.  One shard is bit-identical to the historical
sampler; shard counts define the determinism contract as in BCC.  So
does the delta contract (chain continuation, see
:mod:`repro.methods.bcc`): the cached payload additionally carries the
membership vector and the per-worker quality accumulator, and new
workers draw their initial community from the restored stream.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import decode_posterior, log_normalize_rows
from ..core.registry import register
from ..core.result import InferenceResult
from ..inference.distributions import sample_categorical_rows, sample_dirichlet_rows
from ..inference.sharded import SufficientStats, pad_rows, run_gibbs_sharded
from .bcc import _ConfusionCountSpec, chain_restart, chain_state


@register
class CBCC(CategoricalMethod):
    """Community-based Bayesian classifier combination."""

    name = "CBCC"
    supports_golden = False  # the survey does not extend CBCC with golden tasks
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True

    def __init__(self, n_communities: int = 3, n_samples: int = 50,
                 burn_in: int = 20, alpha_diagonal: float = 4.0,
                 alpha_off_diagonal: float = 1.0, beta_prior: float = 1.0,
                 community_prior: float = 1.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_communities < 1:
            raise ValueError(f"n_communities must be >= 1, got {n_communities}")
        if n_samples < 1 or burn_in < 0:
            raise ValueError("n_samples must be >= 1 and burn_in >= 0")
        self.n_communities = n_communities
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.alpha_diagonal = alpha_diagonal
        self.alpha_off_diagonal = alpha_off_diagonal
        self.beta_prior = beta_prior
        self.community_prior = community_prior

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _ConfusionCountSpec(n_tasks=n_tasks, n_workers=n_workers,
                                   n_choices=n_choices)

    def _session_ok(self, session, answers: AnswerSet) -> bool:
        """Whether a cached chain payload can continue on ``answers``."""
        if not isinstance(session, dict) or session.get("family") != "cbcc":
            return False
        if session.get("communities") != self.n_communities:
            return False
        tally = np.asarray(session.get("tally", ()))
        membership = np.asarray(session.get("membership", ()))
        return (tally.ndim == 2 and tally.shape[1] == answers.n_choices
                and tally.shape[0] <= answers.n_tasks
                and membership.ndim == 1
                and len(membership) <= answers.n_workers)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        n_choices = answers.n_choices
        n_workers = answers.n_workers
        n_comm = self.n_communities
        diag = np.arange(n_choices)

        # Staggered diagonal priors differentiate communities into
        # quality tiers (the lowest tier is a near-spammer prior).
        alpha = np.full((n_comm, n_choices, n_choices),
                        self.alpha_off_diagonal)
        for m in range(n_comm):
            strength = self.alpha_diagonal * (m + 1) / n_comm
            alpha[m, diag, diag] = max(strength, self.alpha_off_diagonal)

        session = (delta.prev.session
                   if delta is not None and delta.prev is not None
                   and delta.dirty is not None else None)
        warm = warm_start is not None and self._session_ok(session, answers)
        if delta is not None and not warm:
            delta = delta.collect_only()

        burn_in = self.burn_in
        n_sweeps = self.burn_in + self.n_samples
        prior_sweeps = 0
        if warm:
            # Continue the cached chain: restore the generator, resume
            # the membership vector (new workers draw their community
            # from the restored stream), skip burn-in.
            rng.bit_generator.state = session["rng_state"]
            membership = np.array(session["membership"], dtype=np.int64)
            if len(membership) < n_workers:
                membership = np.concatenate([
                    membership,
                    rng.integers(0, n_comm,
                                 size=n_workers - len(membership))])
            quality_sum = pad_rows(
                np.array(session["quality_sum"], dtype=np.float64),
                n_workers)
            retained = int(session["retained_quality"])
            prior_sweeps = int(session["sweeps"])
            burn_in = 0
            n_sweeps = max(self.n_samples // 2, 8)
        else:
            membership = rng.integers(0, n_comm, size=n_workers)
            quality_sum = np.zeros(n_workers)
            retained = 0

        def sample(merged: SufficientStats, sweep: int):
            nonlocal membership, quality_sum, retained
            # 1. Community confusion matrices from member soft counts.
            worker_counts = merged["confusion_counts"].transpose(0, 2, 1)
            comm_counts = np.zeros((n_comm, n_choices, n_choices))
            np.add.at(comm_counts, membership, worker_counts)
            confusion = sample_dirichlet_rows(comm_counts + alpha, rng)
            log_conf = np.log(np.clip(confusion, 1e-12, None))

            # 2. Worker communities from their answer likelihoods.
            # ll[w, m] = sum_{j,k} worker_counts[w,j,k] * log_conf[m,j,k]
            worker_ll = np.einsum("wjk,mjk->wm", worker_counts, log_conf)
            comm_sizes = np.bincount(membership, minlength=n_comm)
            log_size_prior = np.log(comm_sizes + self.community_prior)
            membership = sample_categorical_rows(
                log_normalize_rows(worker_ll + log_size_prior), rng)

            # 3. Class prior; the truth update happens in e_block.
            prior = sample_dirichlet_rows(
                merged["class_sums"] + self.beta_prior, rng)

            if sweep >= burn_in:
                quality_sum += confusion[membership][:, diag,
                                                     diag].mean(axis=1)
                retained += 1
            return (log_conf[membership],
                    np.log(np.clip(prior, 1e-12, None)))

        with self._shard_runner(answers, shard_runner, delta) as runner:
            init = self.majority_posterior(answers)
            tally = None
            chain_retained = 0
            dirty_count = 0
            if warm:
                dirty = np.asarray(delta.dirty, dtype=bool)
                dirty_count = int(dirty.sum())
                init, tally, chain_retained = chain_restart(
                    session, delta.prev, runner.task_ranges, dirty, init)
            outcome = run_gibbs_sharded(
                runner,
                n_sweeps=n_sweeps,
                burn_in=burn_in,
                sample=sample,
                golden=None,
                initial_state=init,
                tally=tally,
                retained=chain_retained,
                mode="delta" if warm else "gibbs",
                dirty=dirty_count,
            )
            shard_state = None
            if delta is not None:
                shard_state = chain_state(runner, outcome, delta, {
                    "family": "cbcc",
                    "communities": n_comm,
                    "tally": outcome.tally,
                    "retained": outcome.retained,
                    "sweeps": prior_sweeps + n_sweeps,
                    "rng_state": rng.bit_generator.state,
                    "membership": membership,
                    "quality_sum": quality_sum,
                    "retained_quality": retained,
                })

        final = outcome.tally / max(outcome.retained, 1)
        quality = quality_sum / max(retained, 1)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(final, rng),
            worker_quality=quality,
            posterior=final,
            n_iterations=prior_sweeps + n_sweeps,
            converged=True,
            extras={"community": membership, "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=shard_state,
        )
