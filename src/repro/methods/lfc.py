"""LFC and LFC_N — Learning From Crowds (Raykar et al., JMLR 2010).

LFC extends D&S by placing Beta/Dirichlet priors on the confusion-matrix
rows ("the worker's quality q^w_{j,k} is generated following a Beta
distribution") and doing MAP instead of ML estimation — i.e. the M-step
adds prior pseudo-counts.  The survey runs LFC with mildly optimistic
priors (diagonal-heavy), which is what makes it more robust than plain
D&S at low redundancy.

LFC_N is Raykar's numeric variant: each worker has a Gaussian noise
model ``v^w_i ~ N(v*_i, sigma_w^2)``; EM alternates precision-weighted
truth estimates and per-worker variance estimates.  Both steps decompose
over task-range shards: the E-step is per-task, and the M-step's
sufficient statistics are the per-worker squared-residual sums and
answer counts, merged by addition and finalised into variances.
"""

from __future__ import annotations

import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import NumericMethod
from ..core.framework import clamp_golden_values
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import expand_worker_vector
from ..inference.segops import SegmentSum
from ..inference.sharded import (
    ShardedEMSpec,
    SufficientStats,
    pad_rows,
    run_em_sharded,
)
from .dawid_skene import _ConfusionMatrixEM


@register
class LearningFromCrowds(_ConfusionMatrixEM):
    """D&S with Dirichlet MAP smoothing (categorical tasks)."""

    name = "LFC"
    # LFC shares D&S's EM wholesale, capabilities included.  Declared
    # explicitly (not just inherited) so the registry-wide capability
    # audit reads the truth off this class; a refactor of the shared
    # base can no longer silently drop a capability from LFC alone.
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True
    supports_seed_posterior = True
    #: Symmetric pseudo-count on every cell plus a diagonal bonus:
    #: equivalent to Beta/Dirichlet priors favouring correct answers.
    #: Kept weak by default — strong diagonal priors visibly distort the
    #: minority-class rows of workers with few answers on rare classes.
    smoothing_off_diagonal = 0.2
    smoothing_diagonal_bonus = 0.2

    def __init__(self, prior_strength: float = 0.2,
                 diagonal_bonus: float = 0.2, **kwargs) -> None:
        super().__init__(**kwargs)
        if prior_strength < 0 or diagonal_bonus < 0:
            raise ValueError("prior pseudo-counts must be non-negative")
        self.smoothing_off_diagonal = prior_strength
        self.smoothing_diagonal_bonus = diagonal_bonus


class _LFCNumericSpec(ShardedEMSpec):
    """Sharded statistics of the Gaussian worker-variance EM.

    The iterated state is the per-task truth vector (1-D blocks); the
    parameters are the per-worker variances.
    """

    golden_clamp = staticmethod(clamp_golden_values)

    def __init__(self, n_tasks: int, n_workers: int,
                 min_variance: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.min_variance = min_variance

    def build_ops(self, shard: AnswerShard):
        return types.SimpleNamespace(
            worker_sum=SegmentSum(shard.workers, self.n_workers),
            task_sum=SegmentSum(shard.local_tasks, shard.n_local_tasks),
            answer_counts=np.bincount(shard.workers,
                                      minlength=self.n_workers),
            task_counts=np.maximum(
                np.bincount(shard.local_tasks,
                            minlength=shard.n_local_tasks), 1),
            n_workers=self.n_workers,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if n_workers < self.n_workers or n_tasks < self.n_tasks:
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        """Per-task mean of the observed answers."""
        return ops.task_sum(shard.values) / ops.task_counts

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        residual = (shard.values - block[shard.local_tasks]) ** 2
        return SufficientStats(
            residual_sum=pad_rows(ops.worker_sum(residual),
                                  self.n_workers),
            answer_counts=pad_rows(ops.answer_counts, self.n_workers),
        )

    def finalize(self, stats: SufficientStats) -> np.ndarray:
        counts = np.maximum(stats["answer_counts"], 1)
        return np.maximum(stats["residual_sum"] / counts,
                          self.min_variance)

    def e_block(self, shard: AnswerShard, ops,
                variance: np.ndarray) -> np.ndarray:
        """Precision-weighted truth per task."""
        weights = 1.0 / variance[shard.workers]
        numer = ops.task_sum(weights * shard.values)
        denom = ops.task_sum(weights)
        return numer / np.where(denom > 0, denom, 1.0)


@register
class LearningFromCrowdsNumeric(NumericMethod):
    """Gaussian worker-variance model for numeric tasks (LFC_N).

    ``initial_quality`` is accepted but has never influenced the fit:
    the pre-refactor code derived an initial variance from it that the
    first M-step overwrote before any use, and this implementation
    preserves that behaviour exactly (the flag stays on so the
    qualification experiments keep treating LFC_N as they always have).
    """

    name = "LFC_N"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True

    def __init__(self, min_variance: float = 1e-6, **kwargs) -> None:
        super().__init__(**kwargs)
        self.min_variance = min_variance

    def make_em_spec(self, n_tasks: int, n_workers: int,
                     n_choices: int = 0) -> _LFCNumericSpec:
        return _LFCNumericSpec(n_tasks=n_tasks, n_workers=n_workers,
                               min_variance=self.min_variance)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        # Initial truth: per-task mean (the spec's init_block).  A warm
        # start instead opens with an E-step from the previous
        # per-worker variances (expanded with the global variance for
        # unseen workers), so the resumed truths already weight every
        # current answer by the learned precisions.
        warm_params = None
        if warm_start is not None:
            values = answers.values
            prev_var = warm_start.extras.get("worker_variance")
            global_var = max(np.var(values) if len(values) else 1.0,
                             self.min_variance)
            if prev_var is not None:
                warm_params = expand_worker_vector(
                    np.maximum(prev_var, self.min_variance),
                    answers.n_workers, global_var,
                )
            else:
                warm_params = np.full(answers.n_workers, global_var)

        with self._shard_runner(answers, shard_runner, delta) as runner:
            if delta is not None and warm_params is None:
                delta = delta.collect_only()
            outcome = run_em_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_parameters=warm_params,
                delta=delta,
            )
        variance = np.asarray(outcome.parameters, dtype=np.float64)
        quality = 1.0 / (1.0 + np.sqrt(variance))
        return InferenceResult(
            method=self.name,
            truths=outcome.posterior,
            worker_quality=quality,
            posterior=None,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"worker_variance": variance,
                    "warm_started": warm_start is not None},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )
