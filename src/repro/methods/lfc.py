"""LFC and LFC_N — Learning From Crowds (Raykar et al., JMLR 2010).

LFC extends D&S by placing Beta/Dirichlet priors on the confusion-matrix
rows ("the worker's quality q^w_{j,k} is generated following a Beta
distribution") and doing MAP instead of ML estimation — i.e. the M-step
adds prior pseudo-counts.  The survey runs LFC with mildly optimistic
priors (diagonal-heavy), which is what makes it more robust than plain
D&S at low redundancy.

LFC_N is Raykar's numeric variant: each worker has a Gaussian noise
model ``v^w_i ~ N(v*_i, sigma_w^2)``; EM alternates precision-weighted
truth estimates and per-worker variance estimates.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import NumericMethod
from ..core.framework import ConvergenceTracker, clamp_golden_values
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.warmstart import expand_worker_vector
from .dawid_skene import _ConfusionMatrixEM


@register
class LearningFromCrowds(_ConfusionMatrixEM):
    """D&S with Dirichlet MAP smoothing (categorical tasks)."""

    name = "LFC"
    #: Symmetric pseudo-count on every cell plus a diagonal bonus:
    #: equivalent to Beta/Dirichlet priors favouring correct answers.
    #: Kept weak by default — strong diagonal priors visibly distort the
    #: minority-class rows of workers with few answers on rare classes.
    smoothing_off_diagonal = 0.2
    smoothing_diagonal_bonus = 0.2

    def __init__(self, prior_strength: float = 0.2,
                 diagonal_bonus: float = 0.2, **kwargs) -> None:
        super().__init__(**kwargs)
        if prior_strength < 0 or diagonal_bonus < 0:
            raise ValueError("prior pseudo-counts must be non-negative")
        self.smoothing_off_diagonal = prior_strength
        self.smoothing_diagonal_bonus = diagonal_bonus


@register
class LearningFromCrowdsNumeric(NumericMethod):
    """Gaussian worker-variance model for numeric tasks (LFC_N)."""

    name = "LFC_N"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True

    def __init__(self, min_variance: float = 1e-6, **kwargs) -> None:
        super().__init__(**kwargs)
        self.min_variance = min_variance

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values
        counts_w = np.maximum(answers.worker_answer_counts(), 1)
        counts_t = np.maximum(answers.task_answer_counts(), 1)

        def weighted_truths(variance: np.ndarray) -> np.ndarray:
            """E-step: precision-weighted truth per task."""
            weights = 1.0 / variance[workers]
            numer = np.bincount(tasks, weights=weights * values,
                                minlength=answers.n_tasks)
            denom = np.bincount(tasks, weights=weights,
                                minlength=answers.n_tasks)
            return numer / np.where(denom > 0, denom, 1.0)

        # Initial truth: per-task mean.  A warm start instead opens with
        # an E-step from the previous per-worker variances (expanded
        # with the global variance for unseen workers), so the resumed
        # truths already weight every current answer by the learned
        # precisions.
        if warm_start is not None:
            prev_var = warm_start.extras.get("worker_variance")
            global_var = max(np.var(values) if len(values) else 1.0,
                             self.min_variance)
            if prev_var is not None:
                variance = expand_worker_vector(
                    np.maximum(prev_var, self.min_variance),
                    answers.n_workers, global_var,
                )
            else:
                variance = np.full(answers.n_workers, global_var)
            truths = weighted_truths(variance)
        else:
            truths = np.bincount(tasks, weights=values,
                                 minlength=answers.n_tasks) / counts_t
            if initial_quality is not None:
                scale = np.var(values) if len(values) else 1.0
                variance = np.maximum(
                    (1.0 - np.clip(initial_quality, 0.0, 1.0)) * scale,
                    self.min_variance,
                )
            else:
                variance = np.full(answers.n_workers,
                                   max(np.var(values), self.min_variance))
        truths = clamp_golden_values(truths, golden)

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        # The warm priming E-step above is real work: count it so warm
        # and cold iteration totals compare honestly.
        done = warm_start is not None and tracker.update(truths)
        while not done:
            # M-step: per-worker variance against current truths.
            residual = (values - truths[tasks]) ** 2
            sums = np.bincount(workers, weights=residual,
                               minlength=answers.n_workers)
            variance = np.maximum(sums / counts_w, self.min_variance)

            truths = clamp_golden_values(weighted_truths(variance), golden)
            if tracker.update(truths):
                break

        quality = 1.0 / (1.0 + np.sqrt(variance))
        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=None,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"worker_variance": variance,
                    "warm_started": warm_start is not None},
        )
