"""BCC — Bayesian Classifier Combination (Kim & Ghahramani, AISTATS 2012).

The fully Bayesian counterpart of D&S: confusion matrices and class
prior carry Dirichlet priors and the *posterior joint probability*
``Π_i Pr(v*_i|β) Π_w Pr(q^w|α) Π Pr(v^w_i | q^w, v*_i)``
is explored by sampling (survey Section 5.3).

Implementation note — soft-label chain.  A textbook Gibbs sweep samples
hard truth labels; on heavily imbalanced data the sampled minority-class
labels contaminate the confusion-matrix counts and the minority class
collapses (F1 well below D&S, which the survey does *not* observe for
BCC).  We therefore keep the truth as a full posterior ("collapsing" the
label draw) and sample only the parameters:

1. build expected confusion counts from the current truth posterior;
2. sample each worker's confusion rows from their Dirichlet conditional;
3. sample the class prior from its Dirichlet conditional;
4. recompute the truth posterior exactly;
5. after burn-in, tally the posterior.

This preserves BCC's Bayesian treatment of worker parameters — the part
that differentiates it from D&S's point estimates — while matching the
survey's observation that BCC and D&S land very close together.

The sweeps run through :func:`repro.inference.sharded.run_gibbs_sharded`:
per sweep the shards accumulate the soft confusion counts (step 1 as a
map-reduce), the Dirichlet draws stay on the master generator (steps
2–3 in the ``sample`` closure), and the posterior recomputation (step
4) maps back over the shards.  One shard is bit-identical to the
historical sampler; multiple shards reorder the statistics merge, which
steers the rejection samplers onto different — statistically
equivalent — draws, so the determinism contract is per (seed, shard
count).

Delta contract — *chain continuation*.  A fit under a delta plan caches
the chain on :attr:`~repro.inference.sharded.ShardState.session`: the
lifetime posterior tally, the master generator's bit state, and the
closure's accumulators, with the final per-shard assignment blocks on
the usual ``blocks``.  The next (warm) refit restores the generator and
continues the *same* chain with no new burn-in and a shorter sweep
budget: clean shards resume their cached assignment blocks, dirty or
grown shards are re-primed from the majority estimate, and newly
appended tasks enter the lifetime average seeded at their majority row.
The continued draws extend the original stream, so a grown chain is
deterministic per (seed, shard count, batch history).
"""

from __future__ import annotations

import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import (
    clamp_golden_posterior,
    decode_posterior,
    log_normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..inference.distributions import sample_dirichlet_rows
from ..inference.sharded import (
    ShardedEMSpec,
    ShardState,
    SufficientStats,
    check_delta_layout,
    majority_block,
    pad_rows,
    run_gibbs_sharded,
)


def chain_restart(session, prev: ShardState, ranges, dirty: np.ndarray,
                  init: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """``(initial_state, tally, retained)`` of a continued Gibbs chain.

    Clean shards resume their cached assignment blocks; dirty shards
    (and any block whose task range changed) are re-primed from the
    majority estimate ``init``.  The lifetime tally is extended for
    newly appended tasks with their majority row times the retained
    count, so ``tally / retained`` stays a per-row convex average.
    """
    check_delta_layout(ranges, prev, dirty)
    n_tasks = len(init)
    state = np.empty_like(init)
    for k, (start, stop) in enumerate(ranges):
        block = np.asarray(prev.blocks[k], dtype=np.float64)
        if dirty[k] or len(block) != stop - start:
            state[start:stop] = init[start:stop]
        else:
            state[start:stop] = block
    retained = int(session["retained"])
    tally = np.array(session["tally"], dtype=np.float64)
    if len(tally) < n_tasks:
        tally = np.concatenate([tally, init[len(tally):] * retained])
    return state, tally, retained


def chain_state(runner, outcome, delta, session) -> ShardState:
    """The :class:`ShardState` a finished Gibbs fit leaves behind: the
    final assignment blocks plus the opaque chain payload."""
    ranges = runner.task_ranges
    spec = runner.spec
    cuts = [ranges[0][0]] + [stop for _, stop in ranges]
    return ShardState(
        task_cuts=tuple(int(c) for c in cuts),
        sizes=(spec.n_tasks, spec.n_workers, spec.n_choices),
        blocks=[np.array(outcome.state[start:stop])
                for start, stop in ranges],
        stats=[None] * len(ranges),
        base_answers=(delta.prev.base_answers
                      if delta.prev is not None else 0),
        session=session,
    )


class _ConfusionCountSpec(ShardedEMSpec):
    """Gibbs shard kernels shared by BCC and CBCC.

    ``accumulate`` builds the sweep conditional's sufficient statistics
    — soft per-worker confusion counts plus the class mass; ``e_block``
    recomputes the truth posterior from a per-worker log-confusion
    table and log class prior.  All randomness lives in the master-side
    ``sample`` closure, so these phases are deterministic.
    """

    def __init__(self, n_tasks: int, n_workers: int,
                 n_choices: int) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices

    def build_ops(self, shard: AnswerShard):
        return types.SimpleNamespace()

    def init_block(self, shard: AnswerShard, ops) -> np.ndarray:
        return majority_block(shard)

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        # counts[w, k, j]: posterior mass of truth j where worker w
        # answered k (the consumer transposes to (w, j, k)).
        counts = np.zeros((self.n_workers, self.n_choices, self.n_choices))
        np.add.at(counts, (shard.workers, shard.values),
                  block[shard.local_tasks])
        return SufficientStats(confusion_counts=counts,
                               class_sums=block.sum(axis=0))

    def finalize(self, stats: SufficientStats):
        raise NotImplementedError(
            "Gibbs parameters are drawn by the sample closure")

    def e_block(self, shard: AnswerShard, ops, params) -> np.ndarray:
        worker_log_conf, log_prior = params
        log_post = np.tile(log_prior, (shard.n_local_tasks, 1))
        np.add.at(log_post, shard.local_tasks,
                  worker_log_conf[shard.workers, :, shard.values])
        return log_normalize_rows(log_post)

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True


@register
class BCC(CategoricalMethod):
    """Posterior sampling over (confusion matrices, class prior)."""

    name = "BCC"
    supports_golden = True
    supports_sharding = True
    supports_warm_start = True
    supports_delta = True

    def __init__(self, n_samples: int = 50, burn_in: int = 20,
                 alpha_diagonal: float = 2.0, alpha_off_diagonal: float = 1.0,
                 beta_prior: float = 1.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_samples < 1 or burn_in < 0:
            raise ValueError("n_samples must be >= 1 and burn_in >= 0")
        if alpha_diagonal <= 0 or alpha_off_diagonal <= 0 or beta_prior <= 0:
            raise ValueError("Dirichlet hyper-parameters must be positive")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.alpha_diagonal = alpha_diagonal
        self.alpha_off_diagonal = alpha_off_diagonal
        self.beta_prior = beta_prior

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        return _ConfusionCountSpec(n_tasks=n_tasks, n_workers=n_workers,
                                   n_choices=n_choices)

    def _confusion_prior(self, n_choices: int) -> np.ndarray:
        alpha = np.full((n_choices, n_choices), self.alpha_off_diagonal)
        np.fill_diagonal(alpha, self.alpha_diagonal)
        return alpha

    def _continuation_sweeps(self) -> int:
        """Sweep budget of a continued chain: the chain is mixed, so
        roughly half a fresh retained window keeps the lifetime average
        moving without re-paying burn-in."""
        return max(self.n_samples // 2, 8)

    def _session_ok(self, session, answers: AnswerSet) -> bool:
        """Whether a cached chain payload can continue on ``answers``."""
        if not isinstance(session, dict) or session.get("family") != "bcc":
            return False
        tally = np.asarray(session.get("tally", ()))
        conf = np.asarray(session.get("confusion_sum", ()))
        return (tally.ndim == 2 and tally.shape[1] == answers.n_choices
                and tally.shape[0] <= answers.n_tasks
                and conf.ndim == 3 and conf.shape[0] <= answers.n_workers
                and conf.shape[1:] == (answers.n_choices,
                                       answers.n_choices))

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        n_choices = answers.n_choices
        n_workers = answers.n_workers
        alpha = self._confusion_prior(n_choices)

        session = (delta.prev.session
                   if delta is not None and delta.prev is not None
                   and delta.dirty is not None else None)
        warm = warm_start is not None and self._session_ok(session, answers)
        if delta is not None and not warm:
            delta = delta.collect_only()

        confusion_sum = np.zeros((n_workers, n_choices, n_choices))
        retained_conf = 0
        burn_in = self.burn_in
        n_sweeps = self.burn_in + self.n_samples
        prior_sweeps = 0
        if warm:
            # Continue the cached chain: restore the generator and the
            # closure accumulators, skip burn-in (the chain is mixed).
            rng.bit_generator.state = session["rng_state"]
            confusion_sum = pad_rows(
                np.array(session["confusion_sum"], dtype=np.float64),
                n_workers)
            retained_conf = int(session["retained_conf"])
            prior_sweeps = int(session["sweeps"])
            burn_in = 0
            n_sweeps = self._continuation_sweeps()

        def sample(merged: SufficientStats, sweep: int):
            nonlocal confusion_sum, retained_conf
            confusion = sample_dirichlet_rows(
                merged["confusion_counts"].transpose(0, 2, 1) + alpha, rng)
            prior = sample_dirichlet_rows(
                merged["class_sums"] + self.beta_prior, rng)
            if sweep >= burn_in:
                confusion_sum += confusion
                retained_conf += 1
            return (np.log(np.clip(confusion, 1e-12, None)),
                    np.log(np.clip(prior, 1e-12, None)))

        with self._shard_runner(answers, shard_runner, delta) as runner:
            init = self.majority_posterior(answers)
            tally = None
            retained = 0
            dirty_count = 0
            if warm:
                dirty = np.asarray(delta.dirty, dtype=bool)
                dirty_count = int(dirty.sum())
                init, tally, retained = chain_restart(
                    session, delta.prev, runner.task_ranges, dirty, init)
            outcome = run_gibbs_sharded(
                runner,
                n_sweeps=n_sweeps,
                burn_in=burn_in,
                sample=sample,
                golden=golden,
                initial_state=init,
                tally=tally,
                retained=retained,
                mode="delta" if warm else "gibbs",
                dirty=dirty_count,
            )
            shard_state = None
            if delta is not None:
                shard_state = chain_state(runner, outcome, delta, {
                    "family": "bcc",
                    "tally": outcome.tally,
                    "retained": outcome.retained,
                    "sweeps": prior_sweeps + n_sweeps,
                    "rng_state": rng.bit_generator.state,
                    "confusion_sum": confusion_sum,
                    "retained_conf": retained_conf,
                })

        final = outcome.tally / max(outcome.retained, 1)
        final = clamp_golden_posterior(final, golden)
        mean_confusion = confusion_sum / max(retained_conf, 1)
        diag = np.arange(n_choices)
        quality = mean_confusion[:, diag, diag].mean(axis=1)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(final, rng),
            worker_quality=quality,
            posterior=final,
            n_iterations=prior_sweeps + n_sweeps,
            converged=True,
            extras={"confusion": mean_confusion, "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=shard_state,
        )
