"""BCC — Bayesian Classifier Combination (Kim & Ghahramani, AISTATS 2012).

The fully Bayesian counterpart of D&S: confusion matrices and class
prior carry Dirichlet priors and the *posterior joint probability*
``Π_i Pr(v*_i|β) Π_w Pr(q^w|α) Π Pr(v^w_i | q^w, v*_i)``
is explored by sampling (survey Section 5.3).

Implementation note — soft-label chain.  A textbook Gibbs sweep samples
hard truth labels; on heavily imbalanced data the sampled minority-class
labels contaminate the confusion-matrix counts and the minority class
collapses (F1 well below D&S, which the survey does *not* observe for
BCC).  We therefore keep the truth as a full posterior ("collapsing" the
label draw) and sample only the parameters:

1. build expected confusion counts from the current truth posterior;
2. sample each worker's confusion rows from their Dirichlet conditional;
3. sample the class prior from its Dirichlet conditional;
4. recompute the truth posterior exactly;
5. after burn-in, tally the posterior.

This preserves BCC's Bayesian treatment of worker parameters — the part
that differentiates it from D&S's point estimates — while matching the
survey's observation that BCC and D&S land very close together.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import CategoricalMethod
from ..core.framework import (
    clamp_golden_posterior,
    decode_posterior,
    log_normalize_rows,
    normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..inference.distributions import sample_dirichlet_rows


@register
class BCC(CategoricalMethod):
    """Posterior sampling over (confusion matrices, class prior)."""

    name = "BCC"
    supports_golden = True

    def __init__(self, n_samples: int = 50, burn_in: int = 20,
                 alpha_diagonal: float = 2.0, alpha_off_diagonal: float = 1.0,
                 beta_prior: float = 1.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_samples < 1 or burn_in < 0:
            raise ValueError("n_samples must be >= 1 and burn_in >= 0")
        if alpha_diagonal <= 0 or alpha_off_diagonal <= 0 or beta_prior <= 0:
            raise ValueError("Dirichlet hyper-parameters must be positive")
        self.n_samples = n_samples
        self.burn_in = burn_in
        self.alpha_diagonal = alpha_diagonal
        self.alpha_off_diagonal = alpha_off_diagonal
        self.beta_prior = beta_prior

    def _confusion_prior(self, n_choices: int) -> np.ndarray:
        alpha = np.full((n_choices, n_choices), self.alpha_off_diagonal)
        np.fill_diagonal(alpha, self.alpha_diagonal)
        return alpha

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        values = answers.values.astype(np.int64)
        n_choices = answers.n_choices
        n_workers = answers.n_workers
        n_tasks = answers.n_tasks
        alpha = self._confusion_prior(n_choices)

        posterior = clamp_golden_posterior(
            normalize_rows(answers.vote_counts()), golden)
        tally = np.zeros((n_tasks, n_choices))
        confusion_sum = np.zeros((n_workers, n_choices, n_choices))
        retained = 0

        total_sweeps = self.burn_in + self.n_samples
        for sweep in range(total_sweeps):
            # Expected confusion counts under the current posterior:
            # counts[w, k, j] accumulates posterior mass of truth j for
            # answers where worker w chose k; transpose to (w, j, k).
            counts = np.zeros((n_workers, n_choices, n_choices))
            np.add.at(counts, (workers, values), posterior[tasks])
            confusion = sample_dirichlet_rows(
                counts.transpose(0, 2, 1) + alpha, rng)

            prior = sample_dirichlet_rows(
                posterior.sum(axis=0) + self.beta_prior, rng)

            log_conf = np.log(np.clip(confusion, 1e-12, None))
            log_post = np.tile(np.log(np.clip(prior, 1e-12, None)),
                               (n_tasks, 1))
            np.add.at(log_post, tasks, log_conf[workers, :, values])
            posterior = clamp_golden_posterior(
                log_normalize_rows(log_post), golden)

            if sweep >= self.burn_in:
                tally += posterior
                confusion_sum += confusion
                retained += 1

        final = tally / max(retained, 1)
        final = clamp_golden_posterior(final, golden)
        mean_confusion = confusion_sum / max(retained, 1)
        diag = np.arange(n_choices)
        quality = mean_confusion[:, diag, diag].mean(axis=1)
        return InferenceResult(
            method=self.name,
            truths=decode_posterior(final, rng),
            worker_quality=quality,
            posterior=final,
            n_iterations=total_sweeps,
            converged=True,
            extras={"confusion": mean_confusion},
        )
