"""CATD (Li et al., PVLDB 2014) — confidence-aware truth discovery.

CATD extends the PM-style weighted aggregation with a *confidence*
coefficient: a worker who answered only a handful of tasks gets an
uncertain quality estimate, so their weight is scaled by the chi-square
upper quantile ``X²(0.975, |T^w|)`` of their answer count (Section 4.2.4
of the survey).  The weight update is

``w_k = X²(0.975, |T^w|) / Σ_{i∈T^w} d(v^w_i, v*_i)``

and the truth step is the usual weighted vote (categorical) or weighted
mean (numeric).  The survey notes CATD is sensitive to low-quality
workers on S_Rel — a direct consequence of the unbounded weight ratio,
which we reproduce rather than patch.

The iteration is expressed as an alternating sharded estimation
(:class:`repro.inference.sharded.AlternatingSpec`): the truth step maps
over task-range shards through order-preserving ``np.bincount``
scatters (CATD/PM converge too quickly for a frozen-CSR operator to
amortise its construction sort), the weight step merges per-shard loss
sums (0/1 mismatch counts are integral, so the merge is exact) — one
shard reproduces the historical loop bit-for-bit.
"""

from __future__ import annotations

import types
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import GeneralMethod
from ..core.framework import (
    argmax_rows,
    clamp_golden_values,
    decode_posterior,
    normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..core.shards import AnswerShard
from ..core.warmstart import expand_worker_vector
from ..inference.distributions import chi_square_confidence
from ..inference.sharded import (
    AlternatingSpec,
    SufficientStats,
    pad_rows,
    run_alternating_sharded,
)


class _WeightedVoteSpec(AlternatingSpec):
    """Shared shard kernels of the categorical CATD/PM truth step.

    The truth step is a weighted vote: every answer scatters its
    worker's weight onto its (task, label) cell.  The weight step needs
    each worker's 0/1 loss sum, i.e. their answer count minus the mass
    they placed on the current truth labels — both per-shard partials
    merge exactly (integral sums).  ``finalize`` (the weight formula)
    is the method-specific part.
    """

    def __init__(self, n_tasks: int, n_workers: int, n_choices: int,
                 regularization: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = n_choices
        self.regularization = regularization

    def build_ops(self, shard: AnswerShard):
        # Unlike the EM methods, CATD/PM converge in a handful of
        # iterations, so a frozen-CSR operator never amortises its
        # construction sort.  Both steps are plain ``np.bincount``
        # scatters instead: bincount accumulates each bin in input
        # order, exactly like the ``np.add.at`` loop it replaces, so
        # the single-shard bitwise contract is preserved.
        return types.SimpleNamespace(
            # Truth step target cell of every answer.
            rows_tv=shard.local_tasks * self.n_choices + shard.values,
            n_rows=shard.n_local_tasks * self.n_choices,
            # Each local task's first cell, for truth-cell scatters.
            cell_base=np.arange(shard.n_local_tasks) * self.n_choices,
            # Worker width the operators were built at (see
            # ShardedEMSpec.resize).
            n_workers=self.n_workers,
        )

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != self.n_choices or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def e_block(self, shard: AnswerShard, ops,
                weights: np.ndarray) -> np.ndarray:
        # A retained operator predates any newly arrived workers, none
        # of which answered in this shard, so the gather only ever
        # touches the first ``ops.n_workers`` weight entries.
        scores = np.bincount(
            ops.rows_tv, weights=weights[shard.workers],
            minlength=ops.n_rows,
        ).reshape(shard.n_local_tasks, self.n_choices)
        return normalize_rows(scores)

    def _loss_stats(self, shard: AnswerShard, ops,
                    truths: np.ndarray) -> SufficientStats:
        """Per-worker 0/1 loss sums for the shard's truth labels."""
        # Counting the (minority) mismatches directly gives the same
        # integral sums as ``answer_counts - matched`` while touching
        # only the missed answers' worker ids; marking the truth cells
        # in a byte table turns the per-answer truth lookup into a
        # single packed gather instead of an int64 gather + compare.
        missed_cell = np.ones(ops.n_rows, dtype=bool)
        missed_cell[ops.cell_base + truths] = False
        missed = missed_cell[ops.rows_tv]
        losses = np.bincount(shard.workers[missed],
                             minlength=ops.n_workers
                             ).astype(np.float64)
        return SufficientStats(
            losses=pad_rows(losses, self.n_workers)
        )

    def accumulate(self, shard: AnswerShard, ops,
                   block: np.ndarray) -> SufficientStats:
        return self._loss_stats(shard, ops, argmax_rows(block))


class _WeightedMeanSpec(AlternatingSpec):
    """Shared shard kernels of the numeric CATD/PM truth step.

    Truth step: per-task weighted mean of the answers; weight step:
    per-worker sums of scaled squared residuals.  The residual scale
    (the global answer spread) is a master-side constant shipped through
    ``accumulate_shared``.
    """

    golden_clamp = staticmethod(clamp_golden_values)

    def __init__(self, n_tasks: int, n_workers: int,
                 regularization: float) -> None:
        super().__init__()
        self.n_tasks = n_tasks
        self.n_workers = n_workers
        self.n_choices = 0
        self.regularization = regularization

    def build_ops(self, shard: AnswerShard):
        return types.SimpleNamespace(n_workers=self.n_workers)

    def resize(self, n_tasks: int, n_workers: int, n_choices: int) -> bool:
        if (n_choices != 0 or n_workers < self.n_workers
                or n_tasks < self.n_tasks):
            return False
        self.n_tasks, self.n_workers = n_tasks, n_workers
        return True

    def e_block(self, shard: AnswerShard, ops,
                weights: np.ndarray) -> np.ndarray:
        w = weights[:ops.n_workers][shard.workers]
        numer = np.bincount(shard.local_tasks, weights=w * shard.values,
                            minlength=shard.n_local_tasks)
        denom = np.bincount(shard.local_tasks, weights=w,
                            minlength=shard.n_local_tasks)
        denom = np.where(denom > 0, denom, 1.0)
        return numer / denom

    def accumulate(self, shard: AnswerShard, ops, block: np.ndarray,
                   scale: float) -> SufficientStats:
        distances = ((shard.values - block[shard.local_tasks]) / scale) ** 2
        losses = np.bincount(shard.workers, weights=distances,
                             minlength=ops.n_workers)
        return SufficientStats(losses=pad_rows(losses, self.n_workers))


class _CATDVoteSpec(_WeightedVoteSpec):
    """Categorical CATD: chi-square-scaled inverse-loss weights."""

    def finalize(self, stats: SufficientStats) -> np.ndarray:
        # ``coefficient`` is stamped by CATD._fit (master-side only:
        # finalize always runs on the master, worker processes never
        # need it).
        return CATD._normalize(
            self.coefficient / (stats["losses"] + self.regularization)
        )


class _CATDMeanSpec(_WeightedMeanSpec):
    """Numeric CATD: same weight formula over squared residuals."""

    finalize = _CATDVoteSpec.finalize


@register
class CATD(GeneralMethod):
    """Chi-square-confidence weighted truth discovery."""

    name = "CATD"
    supports_initial_quality = True
    supports_golden = True
    supports_warm_start = True
    supports_delta = True
    supports_sharding = True

    def __init__(self, confidence: float = 0.975, regularization: float = 0.01,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.5 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
        self.confidence = confidence
        self.regularization = regularization

    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        if n_choices == 0:
            return _CATDMeanSpec(n_tasks=n_tasks, n_workers=n_workers,
                                 regularization=self.regularization)
        return _CATDVoteSpec(n_tasks=n_tasks, n_workers=n_workers,
                             n_choices=n_choices,
                             regularization=self.regularization)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
        warm_start: InferenceResult | None = None,
        shard_runner=None,
        delta=None,
    ) -> InferenceResult:
        categorical = answers.task_type.is_categorical
        coefficient = chi_square_confidence(
            answers.worker_answer_counts(), self.confidence
        )
        with self._shard_runner(answers, shard_runner, delta) as runner:
            spec = runner.spec
            spec.coefficient = coefficient
            if not categorical:
                values = answers.values
                scale = np.std(values) if np.std(values) > 0 else 1.0
                spec.accumulate_shared = (float(scale),)

            warm = warm_start is not None
            if warm:
                # The weights are fully recomputed from the losses after
                # one truth step, so the warm values only seed that
                # step; unseen workers start at the normalised mean.
                weights = self._normalize(expand_worker_vector(
                    warm_start.worker_quality, answers.n_workers, 1.0))
            elif initial_quality is not None:
                weights = self._normalize(
                    coefficient * np.clip(initial_quality, 0.05, 1.0))
            else:
                weights = self._normalize(
                    np.where(coefficient > 0, coefficient, 0.0))

            if delta is not None and not warm:
                delta = delta.collect_only()
            outcome = run_alternating_sharded(
                runner,
                tolerance=self.tolerance,
                max_iter=self.max_iter,
                golden=golden,
                initial_parameters=weights,
                rng=rng,
                count_prime=warm,
                delta=delta,
            )

        posterior = outcome.posterior if categorical else None
        return InferenceResult(
            method=self.name,
            truths=(decode_posterior(posterior, rng) if categorical
                    else outcome.posterior),
            worker_quality=outcome.parameters,
            posterior=posterior,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            extras={"chi_square_coefficient": coefficient,
                    "warm_started": warm},
            fit_stats=outcome.fit_stats,
            shard_state=outcome.shard_state,
        )

    @staticmethod
    def _normalize(weights: np.ndarray) -> np.ndarray:
        total = weights.sum()
        if total <= 0:
            return np.full_like(weights, 1.0 / max(len(weights), 1))
        return weights * (len(weights) / total)
