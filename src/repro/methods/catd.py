"""CATD (Li et al., PVLDB 2014) — confidence-aware truth discovery.

CATD extends the PM-style weighted aggregation with a *confidence*
coefficient: a worker who answered only a handful of tasks gets an
uncertain quality estimate, so their weight is scaled by the chi-square
upper quantile ``X²(0.975, |T^w|)`` of their answer count (Section 4.2.4
of the survey).  The weight update is

``w_k = X²(0.975, |T^w|) / Σ_{i∈T^w} d(v^w_i, v*_i)``

and the truth step is the usual weighted vote (categorical) or weighted
mean (numeric).  The survey notes CATD is sensitive to low-quality
workers on S_Rel — a direct consequence of the unbounded weight ratio,
which we reproduce rather than patch.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import GeneralMethod
from ..core.framework import (
    ConvergenceTracker,
    clamp_golden_posterior,
    clamp_golden_values,
    decode_posterior,
    normalize_rows,
)
from ..core.registry import register
from ..core.result import InferenceResult
from ..inference.distributions import chi_square_confidence


@register
class CATD(GeneralMethod):
    """Chi-square-confidence weighted truth discovery."""

    name = "CATD"
    supports_initial_quality = True
    supports_golden = True

    def __init__(self, confidence: float = 0.975, regularization: float = 0.01,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.5 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
        self.confidence = confidence
        self.regularization = regularization

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        tasks = answers.tasks
        workers = answers.workers
        categorical = answers.task_type.is_categorical
        values = answers.values.astype(np.int64) if categorical else answers.values

        coefficient = chi_square_confidence(
            answers.worker_answer_counts(), self.confidence
        )

        if initial_quality is not None:
            weights = coefficient * np.clip(initial_quality, 0.05, 1.0)
        else:
            weights = np.where(coefficient > 0, coefficient, 0.0)
        weights = self._normalize(weights)

        if not categorical:
            scale = np.std(values) if np.std(values) > 0 else 1.0

        tracker = ConvergenceTracker(tolerance=self.tolerance,
                                     max_iter=self.max_iter)
        posterior = None
        while True:
            w = weights[workers]
            if categorical:
                scores = np.zeros((answers.n_tasks, answers.n_choices))
                np.add.at(scores, (tasks, values), w)
                posterior = clamp_golden_posterior(normalize_rows(scores), golden)
                truths = posterior.argmax(axis=1)
                distances = (values != truths[tasks]).astype(np.float64)
            else:
                numer = np.bincount(tasks, weights=w * values,
                                    minlength=answers.n_tasks)
                denom = np.bincount(tasks, weights=w, minlength=answers.n_tasks)
                denom = np.where(denom > 0, denom, 1.0)
                truths = clamp_golden_values(numer / denom, golden)
                distances = ((values - truths[tasks]) / scale) ** 2

            losses = np.bincount(workers, weights=distances,
                                 minlength=answers.n_workers)
            weights = self._normalize(
                coefficient / (losses + self.regularization)
            )
            if tracker.update(weights):
                break

        return InferenceResult(
            method=self.name,
            truths=(decode_posterior(posterior, rng) if categorical else truths),
            worker_quality=weights,
            posterior=posterior,
            n_iterations=tracker.iteration,
            converged=tracker.converged,
            extras={"chi_square_coefficient": coefficient},
        )

    @staticmethod
    def _normalize(weights: np.ndarray) -> np.ndarray:
        total = weights.sum()
        if total <= 0:
            return np.full_like(weights, 1.0 / max(len(weights), 1))
        return weights * (len(weights) / total)
