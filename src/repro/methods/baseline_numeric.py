"""Mean and Median — the direct-computation baselines for numeric tasks.

The paper's Section 5.1: "for numeric tasks, Mean and Median are two
baseline methods that regard the mean and median of workers' answers as
the truth for each task".  Notably, Table 6 shows Mean *wins* on
N_Emotion — one of the paper's headline findings about numeric tasks
being under-served by sophisticated methods.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.base import NumericMethod
from ..core.registry import register
from ..core.result import InferenceResult


class _DirectNumeric(NumericMethod):
    """Shared logic: aggregate each task's answers with a reducer."""

    reducer: Callable[[np.ndarray], float] = staticmethod(np.mean)

    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        truths = np.zeros(answers.n_tasks, dtype=np.float64)
        for task in range(answers.n_tasks):
            idx = answers.answers_of_task(task)
            if len(idx):
                truths[task] = self.reducer(answers.values[idx])

        # No worker model; report the inverse of each worker's RMSE
        # against the aggregate, so that "higher is better" holds.
        errors = (answers.values - truths[answers.tasks]) ** 2
        sums = np.bincount(answers.workers, weights=errors,
                           minlength=answers.n_workers)
        counts = np.maximum(answers.worker_answer_counts(), 1)
        rmse = np.sqrt(sums / counts)
        quality = 1.0 / (1.0 + rmse)

        return InferenceResult(
            method=self.name,
            truths=truths,
            worker_quality=quality,
            posterior=None,
            n_iterations=0,
            converged=True,
            extras={"worker_rmse": rmse},
        )


@register
class MeanAggregation(_DirectNumeric):
    """Per-task arithmetic mean of the collected answers."""

    name = "Mean"
    reducer = staticmethod(np.mean)


@register
class MedianAggregation(_DirectNumeric):
    """Per-task median — robust to outlier answers."""

    name = "Median"
    reducer = staticmethod(np.median)
