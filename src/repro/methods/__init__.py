"""The 17 truth-inference algorithms surveyed by the paper (Table 4),
plus post-paper extensions (currently ``Minimax-Ord``).

Importing this package registers every method with
:mod:`repro.core.registry`; look them up by their paper names::

    from repro.core import create
    method = create("D&S", seed=0)

Extension methods carry ``is_extension = True`` and stay out of the
paper-faithful experiment lists unless explicitly requested.
"""

from .baseline_numeric import MeanAggregation, MedianAggregation
from .bcc import BCC
from .catd import CATD
from .cbcc import CBCC
from .dawid_skene import DawidSkene
from .glad import Glad
from .kos import KOS
from .lfc import LearningFromCrowds, LearningFromCrowdsNumeric
from .majority import MajorityVoting
from .minimax import MinimaxEntropy
from .minimax_ordinal import MinimaxOrdinal
from .multi import MultidimensionalWisdom
from .pm import PM
from .vi import VIBeliefPropagation, VIMeanField
from .zc import ZenCrowd

__all__ = [
    "BCC",
    "CATD",
    "CBCC",
    "DawidSkene",
    "Glad",
    "KOS",
    "LearningFromCrowds",
    "LearningFromCrowdsNumeric",
    "MajorityVoting",
    "MeanAggregation",
    "MedianAggregation",
    "MinimaxEntropy",
    "MinimaxOrdinal",
    "MultidimensionalWisdom",
    "PM",
    "VIBeliefPropagation",
    "VIMeanField",
    "ZenCrowd",
]
