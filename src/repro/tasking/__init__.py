"""Online task assignment — the paper's §7 future direction (6).

Assignment policies (random / round-robin / uncertainty / QASCA-style
expected accuracy) and an online collection session that couples them
with the platform simulator and periodic truth inference.
"""

from .policies import (
    POLICIES,
    AssignmentPolicy,
    AssignmentState,
    ExpectedAccuracyPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    UncertaintyPolicy,
    create_policy,
)
from .session import OnlineSession, SessionTrace, compare_policies

__all__ = [
    "POLICIES",
    "AssignmentPolicy",
    "AssignmentState",
    "ExpectedAccuracyPolicy",
    "OnlineSession",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SessionTrace",
    "UncertaintyPolicy",
    "compare_policies",
    "create_policy",
]
