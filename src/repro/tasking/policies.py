"""Online task-assignment policies (paper §7, future direction 6).

The paper's evaluation is *static* — answers are given.  Its Section 7
points at Online Task Assignment (citing QASCA [60] and iCrowd [19]) as
the natural next step: when a worker arrives, which task should they
get?  This module implements the standard policy ladder:

* :class:`RandomPolicy` — uniform over eligible tasks;
* :class:`RoundRobinPolicy` — fewest-answers-first (the budget-balanced
  baseline most platforms ship);
* :class:`UncertaintyPolicy` — highest current truth-posterior entropy;
* :class:`ExpectedAccuracyPolicy` — QASCA-style: pick the task whose
  expected posterior-max gain is largest under a Bayes update with the
  arriving worker's estimated quality.

Policies operate on an :class:`AssignmentState` snapshot so they are
pure and unit-testable.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np


@dataclasses.dataclass
class AssignmentState:
    """What a policy may look at when choosing a task.

    Attributes
    ----------
    posterior:
        Current (n_tasks, n_choices) truth estimate.
    answer_counts:
        Answers collected so far per task.
    worker_quality:
        Current per-worker quality estimates in [0, 1].
    eligible:
        Boolean mask of tasks the arriving worker may be given (not yet
        answered by them, below the redundancy cap).
    """

    posterior: np.ndarray
    answer_counts: np.ndarray
    worker_quality: np.ndarray
    eligible: np.ndarray

    @property
    def n_choices(self) -> int:
        return self.posterior.shape[1]


class AssignmentPolicy(abc.ABC):
    """Strategy interface: pick one eligible task for a worker."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, state: AssignmentState, worker: int,
               rng: np.random.Generator) -> int:
        """Return the index of the task to assign (must be eligible)."""

    @staticmethod
    def _eligible_indices(state: AssignmentState) -> np.ndarray:
        idx = np.nonzero(state.eligible)[0]
        if len(idx) == 0:
            raise ValueError("no eligible tasks for this worker")
        return idx


class RandomPolicy(AssignmentPolicy):
    """Uniformly random eligible task."""

    name = "random"

    def select(self, state, worker, rng):
        return int(rng.choice(self._eligible_indices(state)))


class RoundRobinPolicy(AssignmentPolicy):
    """Fewest answers first; ties broken randomly.

    Equalises redundancy across tasks — what a platform does when it
    replicates every HIT the same number of times.
    """

    name = "round-robin"

    def select(self, state, worker, rng):
        idx = self._eligible_indices(state)
        counts = state.answer_counts[idx]
        candidates = idx[counts == counts.min()]
        return int(rng.choice(candidates))


class UncertaintyPolicy(AssignmentPolicy):
    """Highest-entropy task first.

    Spends the budget where the current truth estimate is least sure.
    """

    name = "uncertainty"

    def select(self, state, worker, rng):
        idx = self._eligible_indices(state)
        p = np.clip(state.posterior[idx], 1e-12, 1.0)
        entropy = -(p * np.log(p)).sum(axis=1)
        candidates = idx[np.isclose(entropy, entropy.max())]
        return int(rng.choice(candidates))


class ExpectedAccuracyPolicy(AssignmentPolicy):
    """QASCA-style expected-accuracy maximisation.

    For each eligible task, simulate the Bayes update of the task's
    posterior for every answer the arriving worker could give (using the
    worker's scalar quality as a symmetric confusion model), weight the
    resulting posterior-max by the predicted answer probability, and
    assign the task with the largest expected gain over its current
    posterior max.  This is the expected-accuracy variant of QASCA's
    assignment objective.
    """

    name = "expected-accuracy"

    def select(self, state, worker, rng):
        idx = self._eligible_indices(state)
        quality = float(np.clip(state.worker_quality[worker], 1e-3, 1 - 1e-3))
        n_choices = state.n_choices
        wrong = (1.0 - quality) / max(n_choices - 1, 1)

        p = np.clip(state.posterior[idx], 1e-12, 1.0)  # (m, K)
        # likelihood[j, k] = Pr(answer k | truth j) under the scalar model
        likelihood = np.full((n_choices, n_choices), wrong)
        np.fill_diagonal(likelihood, quality)
        # Predicted answer distribution per task: p @ likelihood.
        answer_prob = p @ likelihood  # (m, K)
        gain = np.zeros(len(idx))
        current_max = p.max(axis=1)
        for answer in range(n_choices):
            updated = p * likelihood[:, answer]  # (m, K)
            updated_sum = updated.sum(axis=1, keepdims=True)
            updated = updated / np.where(updated_sum > 0, updated_sum, 1.0)
            gain += answer_prob[:, answer] * updated.max(axis=1)
        gain -= current_max
        candidates = idx[np.isclose(gain, gain.max())]
        return int(rng.choice(candidates))


#: All built-in policies keyed by name.
POLICIES = {
    policy.name: policy
    for policy in (RandomPolicy, RoundRobinPolicy, UncertaintyPolicy,
                   ExpectedAccuracyPolicy)
}


def create_policy(name: str) -> AssignmentPolicy:
    """Instantiate a policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
