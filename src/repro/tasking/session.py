"""Online answer-collection session driving an assignment policy.

Couples the platform simulator's behavioural workers with an
:class:`~repro.tasking.policies.AssignmentPolicy` and a truth-inference
method: workers arrive one at a time, the policy picks their task, the
worker's behaviour model produces an answer, and the truth posterior /
worker-quality estimates are refreshed periodically by running the
inference method on everything collected so far.

This realises the experiment the paper's §7(6) asks for: "it is
interesting to see how the answers collected by different task
assignment strategies can affect the truth inference quality".
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..core.answers import AnswerSet
from ..core.framework import normalize_rows
from ..core.registry import create
from ..core.tasktypes import TaskType
from ..exceptions import DatasetError
from ..metrics.quality import accuracy
from ..simulation.workers import CategoricalWorker
from .policies import AssignmentPolicy, AssignmentState


@dataclasses.dataclass
class SessionTrace:
    """Quality trajectory of one online session.

    ``checkpoints`` holds (answers_collected, accuracy) pairs measured
    against the (latent) truth each time the inference refreshes —
    the series the extension benchmark plots.
    """

    policy: str
    checkpoints: list[tuple[int, float]]
    answers: AnswerSet
    final_accuracy: float


class OnlineSession:
    """Simulates online assignment + collection + periodic inference.

    Parameters
    ----------
    truths:
        Latent ground truth per task (used by worker behaviour models
        and for trajectory evaluation only — never shown to the policy).
    workers:
        Behavioural worker models.
    policy:
        The assignment strategy under test.
    method:
        Registry name of the inference method used for the periodic
        posterior/quality refresh (default MV-free ZC: cheap and gives
        worker-quality estimates the smarter policies need).
    redundancy_cap:
        Maximum answers any single task may receive.
    refresh_every:
        Refresh the posterior/qualities after this many new answers.
    """

    def __init__(
        self,
        truths: np.ndarray,
        workers: Sequence[CategoricalWorker],
        policy: AssignmentPolicy,
        method: str = "ZC",
        redundancy_cap: int = 20,
        refresh_every: int = 200,
        seed: int | None = None,
    ) -> None:
        self.truths = np.asarray(truths, dtype=np.int64)
        self.workers = list(workers)
        if not self.workers:
            raise DatasetError("worker pool must be non-empty")
        widths = {w.n_choices for w in self.workers}
        if len(widths) != 1:
            raise DatasetError(f"workers disagree on n_choices: {widths}")
        self.n_choices = widths.pop()
        self.policy = policy
        self.method = method
        self.redundancy_cap = redundancy_cap
        self.refresh_every = refresh_every
        self.rng = np.random.default_rng(seed)

    @property
    def n_tasks(self) -> int:
        return len(self.truths)

    # ------------------------------------------------------------------
    def run(self, n_answers: int) -> SessionTrace:
        """Collect ``n_answers`` answers under the policy."""
        if n_answers < 1:
            raise DatasetError(f"n_answers must be >= 1, got {n_answers}")
        n_tasks = self.n_tasks
        n_workers = len(self.workers)
        task_log: list[int] = []
        worker_log: list[int] = []
        value_log: list[int] = []

        counts = np.zeros(n_tasks, dtype=np.int64)
        answered = np.zeros((n_workers, n_tasks), dtype=bool)
        posterior = np.full((n_tasks, self.n_choices), 1.0 / self.n_choices)
        quality = np.full(n_workers, 0.7)
        checkpoints: list[tuple[int, float]] = []

        for step in range(n_answers):
            worker = int(self.rng.integers(0, n_workers))
            eligible = (~answered[worker]) & (counts < self.redundancy_cap)
            if not eligible.any():
                continue  # this worker has nothing left to do
            state = AssignmentState(
                posterior=posterior,
                answer_counts=counts,
                worker_quality=quality,
                eligible=eligible,
            )
            task = self.policy.select(state, worker, self.rng)
            answer = self.workers[worker].answer(int(self.truths[task]),
                                                 self.rng)
            task_log.append(task)
            worker_log.append(worker)
            value_log.append(int(answer))
            counts[task] += 1
            answered[worker, task] = True

            # Cheap incremental posterior update (quality-weighted vote)
            # between refreshes keeps the smarter policies informed.
            weight = max(float(quality[worker]), 1e-3)
            posterior[task] *= 1.0  # copy-on-write not needed: in place
            posterior[task, answer] += weight
            posterior[task] = posterior[task] / posterior[task].sum()

            if (step + 1) % self.refresh_every == 0 or step + 1 == n_answers:
                posterior, quality = self._refresh(
                    task_log, worker_log, value_log, n_workers)
                estimate = posterior.argmax(axis=1)
                checkpoints.append(
                    (step + 1, accuracy(self.truths, estimate)))

        answers = AnswerSet(
            task_indices=task_log,
            worker_indices=worker_log,
            values=value_log,
            task_type=(TaskType.DECISION_MAKING if self.n_choices == 2
                       else TaskType.SINGLE_CHOICE),
            n_choices=self.n_choices,
            n_tasks=n_tasks,
            n_workers=n_workers,
        )
        final = checkpoints[-1][1] if checkpoints else float("nan")
        return SessionTrace(
            policy=self.policy.name,
            checkpoints=checkpoints,
            answers=answers,
            final_accuracy=final,
        )

    # ------------------------------------------------------------------
    def _refresh(self, task_log, worker_log, value_log, n_workers):
        """Re-run the inference method on everything collected so far."""
        answers = AnswerSet(
            task_indices=task_log,
            worker_indices=worker_log,
            values=value_log,
            task_type=(TaskType.DECISION_MAKING if self.n_choices == 2
                       else TaskType.SINGLE_CHOICE),
            n_choices=self.n_choices,
            n_tasks=self.n_tasks,
            n_workers=n_workers,
        )
        result = create(self.method,
                        seed=int(self.rng.integers(2**31))).fit(answers)
        if result.posterior is not None:
            posterior = result.posterior.copy()
        else:
            posterior = normalize_rows(answers.vote_counts())
        quality = np.clip(result.worker_quality, 0.0, 1.0)
        return posterior, quality


def compare_policies(
    truths: np.ndarray,
    workers: Sequence[CategoricalWorker],
    policies: Sequence[AssignmentPolicy],
    n_answers: int,
    seed: int = 0,
    **session_kwargs,
) -> dict[str, SessionTrace]:
    """Run the same workload under several policies (same seed)."""
    traces = {}
    for policy in policies:
        session = OnlineSession(truths, workers, policy, seed=seed,
                                **session_kwargs)
        traces[policy.name] = session.run(n_answers)
    return traces
