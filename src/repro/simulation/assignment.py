"""Task-to-worker assignment strategies.

Two complementary generators for the bipartite answer graph:

* :func:`assign_by_task` — every task receives an exact number of
  answers, workers chosen with probability proportional to an activity
  weight.  This matches how AMT-style platforms replicate HITs (each
  task posted ``r`` times, picked up by whichever workers are active)
  and yields the long-tail worker redundancy of Figure 2 when the
  weights are Zipf-distributed.
* :func:`assign_by_worker` — every worker contributes an exact number of
  answers over distinct tasks, tasks chosen to balance remaining need.

Both return parallel ``(task_indices, worker_indices)`` arrays with no
duplicate (task, worker) pair — a worker answers a task at most once, as
in all the paper's datasets.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError


def assign_by_task(
    task_redundancy: np.ndarray,
    worker_weights: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Choose ``task_redundancy[i]`` distinct workers for each task.

    Workers are sampled without replacement per task, with probability
    proportional to ``worker_weights`` — heavy-weight workers pick up
    many HITs, light ones few.
    """
    task_redundancy = np.asarray(task_redundancy, dtype=np.int64)
    worker_weights = np.asarray(worker_weights, dtype=np.float64)
    n_workers = len(worker_weights)
    if (task_redundancy < 0).any():
        raise DatasetError("task redundancy must be non-negative")
    if task_redundancy.max(initial=0) > n_workers:
        raise DatasetError(
            f"a task needs {task_redundancy.max()} answers but only "
            f"{n_workers} workers exist"
        )
    if (worker_weights <= 0).any():
        raise DatasetError("worker weights must be positive")

    probabilities = worker_weights / worker_weights.sum()
    tasks_out: list[np.ndarray] = []
    workers_out: list[np.ndarray] = []
    for task, r in enumerate(task_redundancy):
        if r == 0:
            continue
        chosen = rng.choice(n_workers, size=int(r), replace=False,
                            p=probabilities)
        tasks_out.append(np.full(int(r), task, dtype=np.int64))
        workers_out.append(chosen.astype(np.int64))
    if not tasks_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(tasks_out), np.concatenate(workers_out)


def assign_by_worker(
    n_tasks: int,
    worker_counts: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Give each worker ``worker_counts[w]`` distinct tasks.

    Tasks are sampled per worker with probability proportional to the
    number of answers each task still "wants" (plus a floor so saturated
    tasks remain eligible), which keeps the per-task redundancy tight
    around the mean.
    """
    worker_counts = np.asarray(worker_counts, dtype=np.int64)
    if (worker_counts < 0).any():
        raise DatasetError("worker counts must be non-negative")
    if worker_counts.max(initial=0) > n_tasks:
        raise DatasetError(
            f"a worker answers {worker_counts.max()} tasks but only "
            f"{n_tasks} tasks exist"
        )

    total = int(worker_counts.sum())
    target = max(1.0, total / max(n_tasks, 1))
    need = np.full(n_tasks, target, dtype=np.float64)

    tasks_out: list[np.ndarray] = []
    workers_out: list[np.ndarray] = []
    # Most active workers first: they need the most distinct tasks.
    for worker in np.argsort(-worker_counts):
        count = int(worker_counts[worker])
        if count == 0:
            continue
        weights = np.maximum(need, 0.0) + 1e-3
        probabilities = weights / weights.sum()
        chosen = rng.choice(n_tasks, size=count, replace=False,
                            p=probabilities)
        need[chosen] -= 1.0
        tasks_out.append(chosen.astype(np.int64))
        workers_out.append(np.full(count, worker, dtype=np.int64))
    if not tasks_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(tasks_out), np.concatenate(workers_out)


def redundancy_schedule(n_tasks: int, total_answers: int) -> np.ndarray:
    """Per-task answer counts summing exactly to ``total_answers``.

    Spreads the remainder of ``total_answers / n_tasks`` over the first
    tasks, mirroring how a fixed budget is spent on a task batch.
    """
    if n_tasks < 1:
        raise DatasetError(f"n_tasks must be >= 1, got {n_tasks}")
    if total_answers < 0:
        raise DatasetError(f"total_answers must be >= 0, got {total_answers}")
    base = total_answers // n_tasks
    remainder = total_answers % n_tasks
    schedule = np.full(n_tasks, base, dtype=np.int64)
    schedule[:remainder] += 1
    return schedule
