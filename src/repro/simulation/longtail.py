"""Long-tail activity sampling (paper Section 6.2.2, Figure 2).

The paper observes worker redundancy "conforms to the long-tail
phenomenon: most workers answer a few tasks and only a few workers
answer plenty of tasks".  We model per-worker activity with a Zipf-like
power law over worker ranks, normalised to hit a target total answer
count, which reproduces both the histogram shape of Figure 2 and the
|V| column of Table 5.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError


def zipf_activity(
    n_workers: int,
    total_answers: int,
    exponent: float = 1.0,
    minimum: int = 1,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Answer counts per worker following a rank-``exponent`` power law.

    Counts sum exactly to ``total_answers`` (remainders are distributed
    to the head of the distribution) and every worker gets at least
    ``minimum`` answers.  With ``rng`` provided, ranks are shuffled so
    that worker index does not encode activity.
    """
    if n_workers < 1:
        raise DatasetError(f"n_workers must be >= 1, got {n_workers}")
    if total_answers < n_workers * minimum:
        raise DatasetError(
            f"total_answers={total_answers} cannot give every one of "
            f"{n_workers} workers at least {minimum} answers"
        )
    if exponent < 0:
        raise DatasetError(f"exponent must be >= 0, got {exponent}")

    ranks = np.arange(1, n_workers + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()

    budget = total_answers - n_workers * minimum
    counts = minimum + np.floor(weights * budget).astype(np.int64)
    shortfall = total_answers - int(counts.sum())
    # Hand the integer remainder to the most active workers, one each.
    for k in range(shortfall):
        counts[k % n_workers] += 1

    if rng is not None:
        rng.shuffle(counts)
    return counts


def observed_tail_share(counts: np.ndarray, head_fraction: float = 0.2
                        ) -> float:
    """Fraction of answers from the busiest ``head_fraction`` of workers."""
    counts = np.sort(np.asarray(counts))[::-1]
    total = counts.sum()
    if total == 0:
        return float("nan")
    head = max(1, int(np.ceil(head_fraction * len(counts))))
    return float(counts[:head].sum() / total)
