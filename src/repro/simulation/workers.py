"""Simulated worker behaviour models.

The paper's Section 1 taxonomy of crowd workers — experts, ordinary
workers, spammers ("randomly answer tasks in order to deceive money")
and malicious workers ("intentionally give wrong answers") — realised as
answer-generating models.  Categorical workers answer through a
confusion matrix (the most expressive model in the survey's Table 4,
which subsumes worker probability); numeric workers answer through the
bias + variance Gaussian model of Section 4.2.3.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..exceptions import DatasetError


@dataclasses.dataclass
class CategoricalWorker:
    """A worker whose answers follow a confusion matrix.

    ``confusion[j, k] = Pr(answer k | truth j)`` — exactly the paper's
    Section 4.2.2 model.
    """

    confusion: np.ndarray

    def __post_init__(self) -> None:
        self.confusion = np.asarray(self.confusion, dtype=np.float64)
        if (self.confusion.ndim != 2
                or self.confusion.shape[0] != self.confusion.shape[1]):
            raise DatasetError(
                f"confusion matrix must be square, got {self.confusion.shape}"
            )
        sums = self.confusion.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise DatasetError(f"confusion rows must sum to 1, got {sums}")
        if (self.confusion < 0).any():
            raise DatasetError("confusion entries must be non-negative")

    @property
    def n_choices(self) -> int:
        return self.confusion.shape[0]

    @property
    def accuracy_per_class(self) -> np.ndarray:
        """Diagonal of the confusion matrix."""
        return np.diag(self.confusion).copy()

    def expected_accuracy(self, class_prior: np.ndarray | None = None) -> float:
        """Marginal accuracy under a class prior (uniform by default)."""
        diag = self.accuracy_per_class
        if class_prior is None:
            return float(diag.mean())
        prior = np.asarray(class_prior, dtype=np.float64)
        return float(diag @ (prior / prior.sum()))

    def answer(self, truth: int, rng: np.random.Generator) -> int:
        """Sample one answer for a task whose truth is ``truth``."""
        return int(rng.choice(self.n_choices, p=self.confusion[int(truth)]))

    def answer_many(self, truths: np.ndarray, rng: np.random.Generator
                    ) -> np.ndarray:
        """Vectorised sampling of answers for many tasks at once."""
        truths = np.asarray(truths, dtype=np.int64)
        cdf = self.confusion.cumsum(axis=1)[truths]
        draws = rng.random((len(truths), 1))
        return (draws > cdf).sum(axis=1)


@dataclasses.dataclass
class NumericWorker:
    """Bias + variance Gaussian answer model (paper Section 4.2.3).

    ``v^w_i ~ N(v*_i + bias, sigma^2)``: positive bias = systematic
    overestimation; sigma captures the error spread around the bias.
    """

    bias: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DatasetError(f"sigma must be non-negative, got {self.sigma}")

    def answer_many(self, truths: np.ndarray, rng: np.random.Generator,
                    noise_scale: np.ndarray | None = None) -> np.ndarray:
        """Sample answers; ``noise_scale`` multiplies sigma per task.

        Task-level difficulty (a noisier photo, an ambiguous text) scales
        every worker's noise on that task — error the worker "owns" in
        the data but did not cause, which is exactly what defeats naive
        per-worker variance weighting.
        """
        truths = np.asarray(truths, dtype=np.float64)
        scale = np.full(len(truths), self.sigma)
        if noise_scale is not None:
            scale = scale * np.asarray(noise_scale, dtype=np.float64)
        return truths + self.bias + rng.normal(scale=scale)

    def expected_rmse(self) -> float:
        """RMSE this worker converges to: sqrt(bias² + sigma²)."""
        return float(np.sqrt(self.bias**2 + self.sigma**2))


# ----------------------------------------------------------------------
# Factory functions for the worker archetypes of the paper's Section 1.
# ----------------------------------------------------------------------
def reliable_worker(accuracy: float, n_choices: int) -> CategoricalWorker:
    """A worker with symmetric per-class accuracy.

    Accuracy on the diagonal, remaining mass spread over the wrong
    choices — the confusion matrix a *worker probability* model assumes.
    """
    if not 0.0 <= accuracy <= 1.0:
        raise DatasetError(f"accuracy must be in [0, 1], got {accuracy}")
    off = (1.0 - accuracy) / max(n_choices - 1, 1)
    confusion = np.full((n_choices, n_choices), off)
    np.fill_diagonal(confusion, accuracy)
    return CategoricalWorker(confusion)


def asymmetric_binary_worker(recall_true: float, recall_false: float
                             ) -> CategoricalWorker:
    """A binary worker with different accuracies per truth class.

    This is the D_Product situation the paper analyses: spotting one
    difference suffices to answer 'F' correctly (high ``recall_false``)
    but answering 'T' correctly requires checking every feature (lower
    ``recall_true``).  Label convention: index 0 = F, index 1 = T.
    """
    for name, value in (("recall_true", recall_true),
                        ("recall_false", recall_false)):
        if not 0.0 <= value <= 1.0:
            raise DatasetError(f"{name} must be in [0, 1], got {value}")
    confusion = np.array([
        [recall_false, 1.0 - recall_false],
        [1.0 - recall_true, recall_true],
    ])
    return CategoricalWorker(confusion)


def spammer(n_choices: int) -> CategoricalWorker:
    """Uniformly random answers regardless of the truth."""
    confusion = np.full((n_choices, n_choices), 1.0 / n_choices)
    return CategoricalWorker(confusion)


def malicious_worker(n_choices: int, wrongness: float = 0.9
                     ) -> CategoricalWorker:
    """Intentionally wrong answers: diagonal mass ``1 - wrongness``."""
    if not 0.0 <= wrongness <= 1.0:
        raise DatasetError(f"wrongness must be in [0, 1], got {wrongness}")
    return reliable_worker(1.0 - wrongness, n_choices)


def biased_spammer(n_choices: int, favourite: int, strength: float = 0.8
                   ) -> CategoricalWorker:
    """A worker who answers their favourite label regardless of truth.

    The archetype behind the paper's observation that worker-probability
    methods (ZC, CATD) degrade on S_Rel: a column-biased worker looks
    "somewhat accurate" to a scalar quality model (they are right
    whenever the truth happens to be their favourite), so their flood of
    identical votes keeps distorting tasks, while a confusion matrix
    captures the column structure and neutralises them.
    """
    if not 0 <= favourite < n_choices:
        raise DatasetError(
            f"favourite must be in [0, {n_choices}), got {favourite}"
        )
    if not 0.0 <= strength <= 1.0:
        raise DatasetError(f"strength must be in [0, 1], got {strength}")
    rest = (1.0 - strength) / n_choices
    confusion = np.full((n_choices, n_choices), rest)
    confusion[:, favourite] += strength
    return CategoricalWorker(confusion)


def sample_worker_pool(
    n_workers: int,
    n_choices: int,
    rng: np.random.Generator,
    mean_accuracy: float = 0.7,
    accuracy_spread: float = 0.15,
    spammer_fraction: float = 0.05,
    malicious_fraction: float = 0.0,
) -> list[CategoricalWorker]:
    """Draw a heterogeneous worker pool around a target mean accuracy.

    Reliable workers get accuracies from a clipped normal; a fraction are
    spammers and (optionally) malicious — the mixture Figure 3 of the
    paper shows empirically.
    """
    workers: list[CategoricalWorker] = []
    for _ in range(n_workers):
        draw = rng.random()
        if draw < spammer_fraction:
            workers.append(spammer(n_choices))
        elif draw < spammer_fraction + malicious_fraction:
            workers.append(malicious_worker(n_choices))
        else:
            accuracy = float(np.clip(
                rng.normal(mean_accuracy, accuracy_spread),
                1.0 / n_choices, 0.99,
            ))
            workers.append(reliable_worker(accuracy, n_choices))
    return workers
