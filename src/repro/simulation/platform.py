"""CrowdPlatform — a simulated AMT-style answer-collection pipeline.

The substitute for the real crowdsourcing platforms the paper collected
its data from.  Given a set of tasks with (latent) ground truths and a
pool of behavioural worker models, the platform:

* assigns tasks to workers (exact per-task redundancy, long-tail worker
  activity — see :mod:`repro.simulation.assignment`);
* collects one answer per assignment from each worker's behaviour model;
* optionally runs a **qualification test** (Section 6.3.2): a fixed set
  of golden tasks each worker answers before the real work, from which
  an initial quality estimate is computed;
* optionally plants **hidden golden tasks** (Section 6.3.3) whose truth
  the requester knows.

Every sampling decision flows through one :class:`numpy.random.Generator`
so that a platform run is exactly reproducible from its seed.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..core.answers import AnswerSet
from ..core.tasktypes import TaskType
from ..exceptions import DatasetError
from .assignment import assign_by_task, redundancy_schedule
from .workers import CategoricalWorker, NumericWorker


@dataclasses.dataclass
class QualificationRecord:
    """A worker's performance on the qualification test.

    ``accuracy`` is the fraction of the golden tasks answered correctly
    (categorical) or an RMSE-derived score in [0, 1] (numeric) — the
    quantity used to initialise worker qualities in Table 7's protocol.
    """

    worker: int
    n_golden: int
    accuracy: float


class CrowdPlatform:
    """Collects simulated answers for a batch of tasks.

    Parameters
    ----------
    truths:
        Ground-truth labels (int) or values (float) per task.
    workers:
        Behavioural models; their list index is the worker index.
    task_type:
        Task type of the batch.
    n_choices:
        Choice count for single-choice batches.
    seed:
        Seed for the platform's random generator.
    """

    def __init__(
        self,
        truths: np.ndarray,
        workers: Sequence[CategoricalWorker] | Sequence[NumericWorker],
        task_type: TaskType,
        n_choices: int | None = None,
        seed: int | None = None,
        task_difficulty: np.ndarray | None = None,
    ) -> None:
        self.truths = np.asarray(truths)
        self.workers = list(workers)
        self.task_type = task_type
        self.n_choices = n_choices
        self.rng = np.random.default_rng(seed)
        # Per-task noise multiplier for numeric batches (1.0 = nominal).
        self.task_difficulty = (
            np.asarray(task_difficulty, dtype=np.float64)
            if task_difficulty is not None else None
        )
        if (self.task_difficulty is not None
                and len(self.task_difficulty) != len(self.truths)):
            raise DatasetError("task_difficulty length must equal n_tasks")
        if len(self.workers) == 0:
            raise DatasetError("worker pool must be non-empty")
        if task_type.is_categorical:
            widths = {w.n_choices for w in self.workers}
            if len(widths) != 1:
                raise DatasetError(f"workers disagree on n_choices: {widths}")
            width = widths.pop()
            if n_choices is None:
                self.n_choices = width
            elif n_choices != width:
                raise DatasetError(
                    f"n_choices={n_choices} but workers have {width} choices"
                )

    @property
    def n_tasks(self) -> int:
        return len(self.truths)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    def collect(
        self,
        total_answers: int | None = None,
        redundancy: int | None = None,
        worker_weights: np.ndarray | None = None,
    ) -> AnswerSet:
        """Run the batch and return the collected answer set.

        Exactly one of ``total_answers`` (budget spread over tasks) or
        ``redundancy`` (uniform answers per task) must be given.
        ``worker_weights`` shapes the long tail; defaults to a Zipf law.
        """
        if (total_answers is None) == (redundancy is None):
            raise DatasetError(
                "specify exactly one of total_answers / redundancy"
            )
        if redundancy is not None:
            schedule = np.full(self.n_tasks, int(redundancy), dtype=np.int64)
        else:
            schedule = redundancy_schedule(self.n_tasks, int(total_answers))

        if worker_weights is None:
            ranks = np.arange(1, self.n_workers + 1, dtype=np.float64)
            worker_weights = ranks**-1.0
            self.rng.shuffle(worker_weights)

        tasks, workers = assign_by_task(schedule, worker_weights, self.rng)
        values = self._answers_for(tasks, workers)
        return AnswerSet(
            task_indices=tasks,
            worker_indices=workers,
            values=values,
            task_type=self.task_type,
            n_choices=self.n_choices,
            n_tasks=self.n_tasks,
            n_workers=self.n_workers,
        )

    def _answers_for(self, tasks: np.ndarray, workers: np.ndarray
                     ) -> np.ndarray:
        """Sample one answer per (task, worker) assignment."""
        values = np.zeros(len(tasks),
                          dtype=np.int64 if self.task_type.is_categorical
                          else np.float64)
        for worker in np.unique(workers):
            edge = workers == worker
            truths = self.truths[tasks[edge]]
            if self.task_difficulty is not None and self.task_type.is_numeric:
                values[edge] = self.workers[worker].answer_many(
                    truths, self.rng,
                    noise_scale=self.task_difficulty[tasks[edge]])
            else:
                values[edge] = self.workers[worker].answer_many(truths,
                                                                self.rng)
        return values

    # ------------------------------------------------------------------
    def qualification_test(self, n_golden: int = 20
                           ) -> list[QualificationRecord]:
        """Run each worker through ``n_golden`` fresh golden tasks.

        Golden tasks are sampled from the same truth distribution as the
        batch (with replacement), answered through the worker's model,
        and scored against the known truths — the platform-side version
        of AMT's qualification mechanism used for D_PosSent.
        """
        if n_golden < 1:
            raise DatasetError(f"n_golden must be >= 1, got {n_golden}")
        records = []
        for worker_idx, worker in enumerate(self.workers):
            golden_truths = self.rng.choice(self.truths, size=n_golden,
                                            replace=True)
            given = worker.answer_many(golden_truths, self.rng)
            if self.task_type.is_categorical:
                score = float(np.mean(given == golden_truths))
            else:
                error = float(np.sqrt(np.mean((given - golden_truths) ** 2)))
                spread = float(np.std(self.truths)) or 1.0
                score = float(np.clip(1.0 - error / (2.0 * spread), 0.0, 1.0))
            records.append(QualificationRecord(
                worker=worker_idx, n_golden=n_golden, accuracy=score))
        return records

    def plant_golden(self, fraction: float) -> dict[int, float]:
        """Pick a random ``fraction`` of tasks as hidden-test goldens.

        Returns the mapping from task index to its (known) truth that
        methods supporting golden clamping consume.
        """
        if not 0.0 <= fraction <= 1.0:
            raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
        n_golden = int(round(fraction * self.n_tasks))
        chosen = self.rng.choice(self.n_tasks, size=n_golden, replace=False)
        return {int(t): self.truths[t] for t in chosen}
