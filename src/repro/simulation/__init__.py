"""Crowdsourcing-platform simulation substrate.

Replaces the real platforms (AMT, CrowdFlower) the paper collected data
from: behavioural worker models, long-tail activity, assignment, and a
platform pipeline with qualification/hidden-test support.
"""

from .assignment import assign_by_task, assign_by_worker, redundancy_schedule
from .longtail import observed_tail_share, zipf_activity
from .platform import CrowdPlatform, QualificationRecord
from .workers import (
    CategoricalWorker,
    NumericWorker,
    asymmetric_binary_worker,
    biased_spammer,
    malicious_worker,
    reliable_worker,
    sample_worker_pool,
    spammer,
)

__all__ = [
    "CategoricalWorker",
    "CrowdPlatform",
    "NumericWorker",
    "QualificationRecord",
    "assign_by_task",
    "assign_by_worker",
    "asymmetric_binary_worker",
    "biased_spammer",
    "malicious_worker",
    "observed_tail_share",
    "redundancy_schedule",
    "reliable_worker",
    "sample_worker_pool",
    "spammer",
    "zipf_activity",
]
