"""Task-level analysis: difficulty estimation and disagreement triage.

The paper's task models (GLAD's difficulty, §4.1.1) estimate difficulty
*inside* a specific inference method.  This module provides
method-agnostic task diagnostics a requester can act on directly:
which tasks are contested, which look like systematic traps (everyone
confidently agreeing may still be wrong — the S_Adult signature), and
which simply need more answers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.answers import AnswerSet
from ..core.result import InferenceResult


def task_entropy(answers: AnswerSet) -> np.ndarray:
    """Normalised answer entropy per task (0 = unanimous, 1 = uniform).

    The per-task version of the paper's consistency statistic C; tasks
    with no answers get NaN.
    """
    answers.require_categorical()
    counts = answers.vote_counts()
    totals = counts.sum(axis=1)
    out = np.full(answers.n_tasks, np.nan)
    answered = totals > 0
    fractions = counts[answered] / totals[answered][:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(fractions > 0, fractions * np.log(fractions), 0.0)
    out[answered] = -terms.sum(axis=1) / np.log(answers.n_choices)
    return out


def contested_tasks(answers: AnswerSet, entropy_threshold: float = 0.9,
                    min_answers: int = 2) -> np.ndarray:
    """Tasks whose answers are split nearly evenly.

    These are the highest-value targets for extra redundancy — exactly
    the tasks an uncertainty assignment policy routes new workers to.
    """
    entropy = task_entropy(answers)
    counts = answers.task_answer_counts()
    return np.nonzero((entropy >= entropy_threshold)
                      & (counts >= min_answers))[0]


def underanswered_tasks(answers: AnswerSet, minimum: int = 1) -> np.ndarray:
    """Tasks that received fewer than ``minimum`` answers."""
    return np.nonzero(answers.task_answer_counts() < minimum)[0]


@dataclasses.dataclass
class DisagreementReport:
    """Posterior-vs-votes triage of one inference run.

    ``overruled`` — tasks where the method's inferred truth differs
    from the plurality vote (the method actively used worker-quality
    information); ``uncertain`` — tasks whose final posterior stays
    close to uniform (the method is guessing); ``unanimous_uncertain``
    is the dangerous corner: unanimous votes that the posterior still
    distrusts.
    """

    overruled: np.ndarray
    uncertain: np.ndarray
    unanimous_uncertain: np.ndarray

    def summary(self) -> str:
        return (f"{len(self.overruled)} tasks overruled vs plurality, "
                f"{len(self.uncertain)} uncertain, "
                f"{len(self.unanimous_uncertain)} unanimous-but-uncertain")


def disagreement_report(answers: AnswerSet, result: InferenceResult,
                        uncertainty_threshold: float = 0.6
                        ) -> DisagreementReport:
    """Cross-examine an inference result against the raw votes."""
    answers.require_categorical()
    if result.posterior is None:
        raise ValueError(f"{result.method} exposes no posterior to audit")
    counts = answers.vote_counts()
    answered = counts.sum(axis=1) > 0
    plurality = counts.argmax(axis=1)

    overruled = np.nonzero(answered
                           & (result.truths != plurality))[0]
    confidence = result.posterior.max(axis=1)
    uncertain = np.nonzero(answered
                           & (confidence < uncertainty_threshold))[0]
    unanimous = answered & ((counts > 0).sum(axis=1) == 1)
    unanimous_uncertain = np.nonzero(
        unanimous & (confidence < uncertainty_threshold))[0]
    return DisagreementReport(
        overruled=overruled,
        uncertain=uncertain,
        unanimous_uncertain=unanimous_uncertain,
    )


def estimate_difficulty_from_result(answers: AnswerSet,
                                    result: InferenceResult) -> np.ndarray:
    """Per-task difficulty estimate from a fitted method.

    Uses GLAD's explicit easiness when available (converted so that
    *higher = harder*), otherwise falls back to one minus the
    quality-weighted fraction of answers matching the inferred truth —
    a method-agnostic difficulty proxy.
    """
    easiness = result.extras.get("task_easiness")
    if easiness is not None:
        easiness = np.asarray(easiness, dtype=np.float64)
        return 1.0 / (1.0 + easiness)

    answers.require_categorical()
    quality = np.clip(result.worker_quality, 0.0, None)
    match = (answers.values.astype(np.int64)
             == result.truths[answers.tasks]).astype(float)
    weights = quality[answers.workers]
    matched = np.bincount(answers.tasks, weights=weights * match,
                          minlength=answers.n_tasks)
    total = np.bincount(answers.tasks, weights=weights,
                        minlength=answers.n_tasks)
    with np.errstate(invalid="ignore", divide="ignore"):
        agreement = matched / total
    agreement[total == 0] = np.nan
    return 1.0 - agreement
