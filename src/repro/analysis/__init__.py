"""Unsupervised crowd-data analysis: worker audits and task triage.

Generalises the paper's Section 6.2 analyses (which require ground
truth) to the truth-free setting a requester faces in production.
"""

from .tasks import (
    DisagreementReport,
    contested_tasks,
    disagreement_report,
    estimate_difficulty_from_result,
    task_entropy,
    underanswered_tasks,
)
from .workers import (
    PoolProfile,
    WorkerFlag,
    detect_inverters,
    detect_label_bias,
    detect_uniform_spammers,
    profile_pool,
)

__all__ = [
    "DisagreementReport",
    "PoolProfile",
    "WorkerFlag",
    "contested_tasks",
    "detect_inverters",
    "detect_label_bias",
    "detect_uniform_spammers",
    "disagreement_report",
    "estimate_difficulty_from_result",
    "profile_pool",
    "task_entropy",
    "underanswered_tasks",
]
