"""Worker-pool analysis: spammer detection and pool profiling.

Generalises the paper's Section 6.2.3 analysis (worker quality against
ground truth) to the unsupervised setting a requester actually faces:
no truth, only answers.  The detectors use the structure the paper's
methods exploit — a spammer's answers are independent of everyone
else's, a biased spammer's answers are independent of the task — and
surface them as auditable flags rather than silent down-weighting.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.answers import AnswerSet
from ..metrics.agreement import pairwise_agreement_matrix


@dataclasses.dataclass
class WorkerFlag:
    """One flagged worker with the evidence behind the flag."""

    worker: int
    reason: str
    score: float
    n_answers: int

    def __str__(self) -> str:
        return (f"worker {self.worker}: {self.reason} "
                f"(score={self.score:.3f}, answers={self.n_answers})")


def detect_uniform_spammers(
    answers: AnswerSet,
    margin_above_chance: float = 0.08,
    min_answers: int = 10,
) -> list[WorkerFlag]:
    """Flag workers whose answers agree with nobody beyond chance.

    A uniform spammer's expected agreement with any other worker is
    *chance level* — roughly the collision probability of the answer
    marginals (≈ ``1/l`` for balanced labels, 0.5 for binary) —
    regardless of the other worker's quality, while honest workers
    agree with each other well above it.  Workers whose mean pairwise
    agreement sits within ``margin_above_chance`` of the chance level
    (and who answered at least ``min_answers`` tasks) are flagged.
    """
    answers.require_categorical()
    matrix = pairwise_agreement_matrix(answers)
    counts = answers.worker_answer_counts()
    # Chance level from the pool's marginal answer distribution.
    marginals = np.bincount(answers.values.astype(np.int64),
                            minlength=answers.n_choices)
    marginals = marginals / max(marginals.sum(), 1)
    chance = float((marginals**2).sum())
    threshold = chance + margin_above_chance

    flags = []
    for worker in range(answers.n_workers):
        if counts[worker] < min_answers:
            continue
        row = np.delete(matrix[worker], worker)
        mean_agreement = float(np.nanmean(row)) if np.isfinite(row).any() \
            else float("nan")
        if np.isnan(mean_agreement):
            continue
        if mean_agreement < threshold:
            flags.append(WorkerFlag(
                worker=worker,
                reason="agreement at chance level with every other "
                       "worker (uniform-spammer signature)",
                score=mean_agreement,
                n_answers=int(counts[worker]),
            ))
    return flags


def detect_label_bias(
    answers: AnswerSet,
    dominance_threshold: float = 0.75,
    min_answers: int = 10,
) -> list[WorkerFlag]:
    """Flag workers who give (almost) the same label to everything.

    The biased-spammer signature of the S_Rel replica: answer
    distribution concentrated on one label far beyond the pool's
    marginal label distribution.
    """
    answers.require_categorical()
    counts = answers.worker_answer_counts()
    values = answers.values.astype(np.int64)
    flags = []
    for worker in range(answers.n_workers):
        idx = answers.answers_of_worker(worker)
        if len(idx) < min_answers:
            continue
        given = values[idx]
        distribution = np.bincount(given, minlength=answers.n_choices)
        dominance = float(distribution.max() / distribution.sum())
        if dominance >= dominance_threshold:
            favourite = int(distribution.argmax())
            flags.append(WorkerFlag(
                worker=worker,
                reason=f"answers label {favourite} on "
                       f"{dominance:.0%} of tasks (label-bias signature)",
                score=dominance,
                n_answers=int(counts[worker]),
            ))
    return flags


def detect_inverters(
    answers: AnswerSet,
    agreement_ceiling: float = 0.30,
    min_answers: int = 10,
) -> list[WorkerFlag]:
    """Flag binary workers who systematically *disagree* with the pool.

    A malicious worker's agreement with honest workers sits *below*
    chance — they carry real information with the sign flipped (which
    confusion-matrix methods exploit; see the failure-injection tests).
    Only meaningful for decision-making tasks.
    """
    answers.require_categorical()
    if answers.n_choices != 2:
        return []
    matrix = pairwise_agreement_matrix(answers)
    counts = answers.worker_answer_counts()
    flags = []
    for worker in range(answers.n_workers):
        if counts[worker] < min_answers:
            continue
        row = np.delete(matrix[worker], worker)
        if not np.isfinite(row).any():
            continue
        mean_agreement = float(np.nanmean(row))
        if mean_agreement < agreement_ceiling:
            flags.append(WorkerFlag(
                worker=worker,
                reason="agreement below chance "
                       "(systematic-inverter signature)",
                score=mean_agreement,
                n_answers=int(counts[worker]),
            ))
    return flags


@dataclasses.dataclass
class PoolProfile:
    """Summary of a worker pool's structure (no ground truth needed)."""

    n_workers: int
    n_active: int
    mean_agreement: float
    uniform_spammers: list[WorkerFlag]
    label_biased: list[WorkerFlag]
    inverters: list[WorkerFlag]

    @property
    def n_flagged(self) -> int:
        flagged = {f.worker for f in (self.uniform_spammers
                                      + self.label_biased + self.inverters)}
        return len(flagged)

    def summary(self) -> str:
        return (
            f"pool of {self.n_workers} workers ({self.n_active} active): "
            f"mean pairwise agreement {self.mean_agreement:.3f}; "
            f"{len(self.uniform_spammers)} uniform spammers, "
            f"{len(self.label_biased)} label-biased, "
            f"{len(self.inverters)} inverters flagged"
        )


def profile_pool(answers: AnswerSet, min_answers: int = 10) -> PoolProfile:
    """Full unsupervised audit of a worker pool."""
    matrix = pairwise_agreement_matrix(answers)
    off_diagonal = matrix[~np.eye(answers.n_workers, dtype=bool)]
    mean_agreement = (float(np.nanmean(off_diagonal))
                      if np.isfinite(off_diagonal).any() else float("nan"))
    counts = answers.worker_answer_counts()
    return PoolProfile(
        n_workers=answers.n_workers,
        n_active=int((counts > 0).sum()),
        mean_agreement=mean_agreement,
        uniform_spammers=detect_uniform_spammers(answers,
                                                 min_answers=min_answers),
        label_biased=detect_label_bias(answers, min_answers=min_answers),
        inverters=detect_inverters(answers, min_answers=min_answers),
    )
