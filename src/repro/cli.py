"""Command-line interface: run inference and experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro methods                    # list the 17 methods
    python -m repro datasets                   # Table 5 of the replicas
    python -m repro infer answers.csv --method "D&S"
    python -m repro run --dataset D_Product --method D&S --scale 0.2
    python -m repro sweep --dataset D_PosSent --methods MV ZC D&S
    python -m repro plan-redundancy --dataset D_PosSent --method MV

``infer`` reads a headerless/headered CSV of ``task,worker,answer``
triples, so the CLI works on real exported crowd data, not only on the
replicas.
"""

from __future__ import annotations

import argparse
import csv
import sys

from .core.answers import AnswerSet
from .core.registry import available_methods, create, methods_for_task_type
from .core.tasktypes import TaskType
from .datasets.paper import PAPER_DATASET_NAMES, all_paper_datasets, load_paper_dataset
from .experiments.reporting import format_series, format_table
from .experiments.redundancy import sweep_redundancy
from .experiments.stats import table5


def _cmd_methods(_args) -> int:
    rows = []
    for name in available_methods():
        method = create(name)
        types = ", ".join(sorted(t.value for t in method.task_types))
        rows.append([
            name, types,
            "yes" if method.supports_initial_quality else "no",
            "yes" if method.supports_golden else "no",
        ])
    print(format_table(
        ["method", "task types", "qualification", "hidden test"], rows,
        title="Registered truth-inference methods (paper Table 4)"))
    return 0


def _cmd_datasets(args) -> int:
    datasets = all_paper_datasets(seed=args.seed, scale=args.scale)
    rows = [[r["dataset"], r["n_tasks"], r["n_truth"], r["n_answers"],
             r["redundancy"], r["n_workers"], r["consistency_C"]]
            for r in table5(datasets)]
    print(format_table(
        ["dataset", "#tasks", "#truth", "|V|", "|V|/n", "|W|", "C"], rows,
        title=f"Paper-dataset replicas (seed={args.seed}, "
              f"scale={args.scale})"))
    return 0


def _cmd_run(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    names = args.methods or methods_for_task_type(dataset.task_type)
    rows = []
    for name in names:
        result = create(name, seed=args.seed).fit(dataset.answers)
        scores = dataset.score(result)
        rows.append([name]
                    + [round(v, 4) for v in scores.values()]
                    + [f"{result.elapsed_seconds:.2f}s"])
    metric_names = list(dataset.score(
        create(names[0], seed=args.seed).fit(dataset.answers)))
    print(format_table(["method"] + metric_names + ["time"], rows,
                       title=f"{dataset.name} (scale={args.scale})"))
    return 0


def _cmd_sweep(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    sweep = sweep_redundancy(
        dataset,
        redundancies=args.redundancies,
        methods=args.methods or None,
        n_repeats=args.repeats,
        base_seed=args.seed,
    )
    for metric, series in sweep.series.items():
        print(format_series("r", sweep.redundancies, series,
                            title=f"{dataset.name}: {metric} vs redundancy"))
        print()
    return 0


def _cmd_infer(args) -> int:
    records = []
    with open(args.answers, newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row or row[0].strip().lower() in ("task", "#task"):
                continue
            records.append((row[0].strip(), row[1].strip(), row[2].strip()))
    if not records:
        print("no answers found", file=sys.stderr)
        return 1

    labels = sorted({value for _, _, value in records})
    task_type = (TaskType.DECISION_MAKING if len(labels) == 2
                 else TaskType.SINGLE_CHOICE)
    answers = AnswerSet.from_records(records, task_type, label_order=labels)
    result = create(args.method, seed=args.seed).fit(answers)

    print(f"# method={args.method} tasks={answers.n_tasks} "
          f"workers={answers.n_workers} answers={answers.n_answers}")
    print("task,inferred_truth")
    for task in range(answers.n_tasks):
        task_id = (answers.task_labels[task] if answers.task_labels
                   else str(task))
        print(f"{task_id},{labels[int(result.truths[task])]}")
    return 0


def _cmd_plan_redundancy(args) -> int:
    from .planning import (
        estimate_saturation_redundancy,
        fit_saturation_model,
        redundancy_curve,
    )

    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    max_r = max(2, int(round(dataset.answers.redundancy)))
    grid = list(range(1, max_r + 1))
    metric = "accuracy" if dataset.task_type.is_categorical else "mae"
    curve = redundancy_curve(dataset, args.method, grid, metric=metric,
                             n_repeats=args.repeats, base_seed=args.seed)
    higher = dataset.task_type.is_categorical
    r_hat = estimate_saturation_redundancy(grid, curve,
                                           higher_is_better=higher)
    print(format_series("r", grid, {args.method: curve},
                        title=f"{dataset.name}: {metric} vs redundancy"))
    print(f"\nestimated saturation redundancy r̂ = {r_hat}")
    if len(grid) >= 3 and higher:
        model = fit_saturation_model(grid, curve)
        print(f"fitted ceiling q_inf = {model.q_inf:.4f}; "
              f"gain from r={max_r} to r={max_r + 1}: "
              f"{model.marginal_gain(max_r):+.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truth-inference reproduction CLI (VLDB 2017 survey)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered methods")

    p_datasets = sub.add_parser("datasets", help="Table 5 of the replicas")
    _common(p_datasets)

    p_run = sub.add_parser("run", help="run methods on a replica")
    _common(p_run)
    p_run.add_argument("--dataset", required=True,
                       choices=PAPER_DATASET_NAMES)
    p_run.add_argument("--methods", nargs="*", default=None)

    p_sweep = sub.add_parser("sweep", help="redundancy sweep on a replica")
    _common(p_sweep)
    p_sweep.add_argument("--dataset", required=True,
                         choices=PAPER_DATASET_NAMES)
    p_sweep.add_argument("--methods", nargs="*", default=None)
    p_sweep.add_argument("--redundancies", nargs="*", type=int, default=None)
    p_sweep.add_argument("--repeats", type=int, default=3)

    p_infer = sub.add_parser("infer",
                             help="infer truths from a CSV of answers")
    p_infer.add_argument("answers", help="CSV of task,worker,answer rows")
    p_infer.add_argument("--method", default="D&S")
    p_infer.add_argument("--seed", type=int, default=0)

    p_plan = sub.add_parser("plan-redundancy",
                            help="estimate the saturation redundancy")
    _common(p_plan)
    p_plan.add_argument("--dataset", required=True,
                        choices=PAPER_DATASET_NAMES)
    p_plan.add_argument("--method", default="MV")
    p_plan.add_argument("--repeats", type=int, default=3)

    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.2)


_COMMANDS = {
    "methods": _cmd_methods,
    "datasets": _cmd_datasets,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "infer": _cmd_infer,
    "plan-redundancy": _cmd_plan_redundancy,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
