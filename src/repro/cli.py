"""Command-line interface: run inference and experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro methods                    # list the 17 methods
    python -m repro datasets                   # Table 5 of the replicas
    python -m repro infer answers.csv --method "D&S"
    python -m repro stream answers.csv --method "D&S" --chunk-size 200
    python -m repro stream answers.csv --method "D&S" --shards 4 --workers 2
    python -m repro stream answers.csv --shards 8 --executor process
    python -m repro stream answers.csv --shards 8 --refit delta -v
    python -m repro stream --source stdin --task-type decision --method "D&S"
    python -m repro stream --source tcp:feed.example:9000 --task-type decision
    python -m repro stream answers.csv --store runs/store1
    python -m repro recover runs/store1 --method "D&S"
    python -m repro run --dataset D_Product --method D&S --scale 0.2
    python -m repro batch --datasets D_Product D_PosSent --workers 4
    python -m repro batch --methods D&S GLAD --shards 8 --executor process
    python -m repro sweep --dataset D_PosSent --methods MV ZC D&S
    python -m repro plan-redundancy --dataset D_PosSent --method MV

``infer`` reads a headerless/headered CSV of ``task,worker,answer``
triples, so the CLI works on real exported crowd data, not only on the
replicas.  ``stream`` feeds an :class:`~repro.engine.sources.AnswerSource`
through the :class:`~repro.engine.InferenceEngine` in chunks,
warm-starting each refit from the previous one — the online-serving
path.  ``--source stdin`` serves a *live* line-delimited stream; it
requires ``--task-type`` (a declared
:class:`~repro.engine.sources.TaskSchema`), which also lets a CSV run
skip the pre-scan.  ``--store PATH`` makes the stream *durable*: every
acknowledged batch writes through to a WAL-mode answer log and fits
snapshot periodically, so ``recover PATH`` resumes a killed stream warm
(replay the tail, delta-refit) with zero lost acknowledged answers.
``batch`` fans a (dataset × method) grid across a thread pool.

How each fit executes is one :class:`~repro.core.policy.ExecutionPolicy`
spelled identically on both commands: ``--shards``, ``--workers`` and
``--executor {auto,serial,thread,process}`` (``process`` leases the
persistent shared-memory runtime of :mod:`repro.engine.runtime`
instead of spawning pools per fit; ``batch --shard-executor`` remains
as a hidden deprecated alias).  Flag validation is shared across
commands (:func:`_require_minimums`); ``--shards`` beyond the task
count is clamped deterministically by the shard layer.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .core.answers import AnswerSet
from .core.policy import (
    DEFAULT_SNAPSHOT_EVERY,
    EXECUTORS,
    ExecutionPolicy,
    StorePolicy,
)
from .core.registry import available_methods, create, methods_for_task_type
from .core.tasktypes import TaskType
from .datasets.paper import PAPER_DATASET_NAMES, all_paper_datasets, load_paper_dataset
from .engine.sources import TASK_TYPE_ALIASES
from .experiments.reporting import format_series, format_table
from .experiments.redundancy import sweep_redundancy
from .experiments.stats import table5

#: CLI spellings of the executor tiers — one source of truth with the
#: policy layer, so argparse and :class:`ExecutionPolicy` cannot drift.
EXECUTOR_CHOICES = list(EXECUTORS)

#: CLI spellings of the declarable task types (every alias the source
#: layer parses).
TASK_TYPE_CHOICES = sorted(TASK_TYPE_ALIASES)


def _cmd_methods(_args) -> int:
    from .core.registry import capabilities

    rows = []
    for name in available_methods():
        caps = capabilities(name)
        types = ", ".join(sorted(t.value for t in caps.task_types))
        rows.append([
            name, types,
            "yes" if caps.initial_quality else "no",
            "yes" if caps.golden else "no",
        ])
    print(format_table(
        ["method", "task types", "qualification", "hidden test"], rows,
        title="Registered truth-inference methods (paper Table 4)"))
    return 0


def _cmd_capabilities(_args) -> int:
    from .core.registry import capabilities

    def yn(flag: bool) -> str:
        return "yes" if flag else "no"

    rows = []
    for name in available_methods():
        caps = capabilities(name)
        rows.append([
            name,
            yn(caps.sharding),
            yn(caps.warm_start),
            yn(caps.delta),
            yn(caps.seed_posterior),
        ])
    print(format_table(
        ["method", "sharded", "warm-start", "delta", "seed-posterior"],
        rows, title="Execution capabilities by method"))
    return 0


def _cmd_datasets(args) -> int:
    datasets = all_paper_datasets(seed=args.seed, scale=args.scale)
    rows = [[r["dataset"], r["n_tasks"], r["n_truth"], r["n_answers"],
             r["redundancy"], r["n_workers"], r["consistency_C"]]
            for r in table5(datasets)]
    print(format_table(
        ["dataset", "#tasks", "#truth", "|V|", "|V|/n", "|W|", "C"], rows,
        title=f"Paper-dataset replicas (seed={args.seed}, "
              f"scale={args.scale})"))
    return 0


def _cmd_run(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    names = args.methods or methods_for_task_type(dataset.task_type)
    rows = []
    for name in names:
        result = create(name, seed=args.seed).fit(dataset.answers)
        scores = dataset.score(result)
        rows.append([name]
                    + [round(v, 4) for v in scores.values()]
                    + [f"{result.elapsed_seconds:.2f}s"])
    metric_names = list(dataset.score(
        create(names[0], seed=args.seed).fit(dataset.answers)))
    print(format_table(["method"] + metric_names + ["time"], rows,
                       title=f"{dataset.name} (scale={args.scale})"))
    return 0


def _cmd_sweep(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    sweep = sweep_redundancy(
        dataset,
        redundancies=args.redundancies,
        methods=args.methods or None,
        n_repeats=args.repeats,
        base_seed=args.seed,
    )
    for metric, series in sweep.series.items():
        print(format_series("r", sweep.redundancies, series,
                            title=f"{dataset.name}: {metric} vs redundancy"))
        print()
    return 0


def _read_answer_csv(path: str) -> list[tuple[str, str, str]]:
    """Read ``task,worker,answer`` triples, skipping an optional header.

    One parser for the whole CLI: delegates to
    :class:`~repro.engine.sources.CsvAnswerSource`, which raises
    :class:`ValueError` (with the row location) on malformed rows.
    """
    from .engine.sources import CsvAnswerSource

    return [record
            for batch in CsvAnswerSource(path).batches(4096)
            for record in batch]


def _read_answer_csv_or_complain(path: str):
    """CSV records, or ``None`` after printing the error to stderr."""
    try:
        records = _read_answer_csv(path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    if not records:
        print("no answers found", file=sys.stderr)
        return None
    return records


def _require_applicable(method: str, task_type: TaskType) -> str | None:
    """An error message if ``method`` cannot run on ``task_type``."""
    if method not in available_methods():
        return f"unknown method: {method} (see `repro methods`)"
    if method not in methods_for_task_type(task_type):
        return (f"method {method} does not support {task_type.value} "
                f"tasks (see `repro methods`)")
    return None


def _require_minimums(*specs: tuple[str, int, int]) -> str | None:
    """Shared flag validation: each spec is ``(flag, value, minimum)``.

    Returns the first violation as an error message, so every command
    rejects bad counts with identical wording (``stream`` and ``batch``
    historically disagreed on ``--workers``).  ``--shards`` above the
    task count is *not* an error: :func:`repro.core.shards.shard_by_tasks`
    clamps it deterministically to the task count.
    """
    for flag, value, minimum in specs:
        if value < minimum:
            return f"{flag} must be >= {minimum}, got {value}"
    return None


def _complain(message: str) -> int:
    print(message, file=sys.stderr)
    return 1


def _deprecated_flag(old: str, new: str) -> None:
    """Announce a hidden legacy alias (stderr + DeprecationWarning)."""
    message = f"{old} is deprecated; use {new}"
    print(f"warning: {message}", file=sys.stderr)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _execution_policy(args) -> ExecutionPolicy:
    """The one ExecutionPolicy a command's flags spell."""
    extra = {}
    if getattr(args, "refit", None) is not None:
        extra["refit"] = args.refit
    if getattr(args, "freeze_tol", None) is not None:
        extra["freeze_tol"] = args.freeze_tol
    if getattr(args, "verify_every", None) is not None:
        extra["verify_every"] = args.verify_every
    if getattr(args, "store", None) is not None:
        store_kwargs = {}
        if getattr(args, "snapshot_every", None) is not None:
            store_kwargs["snapshot_every"] = args.snapshot_every
        extra["store"] = StorePolicy(path=args.store, **store_kwargs)
    return ExecutionPolicy(
        n_shards=args.shards,
        executor=args.executor,
        max_workers=args.workers or None,
        **extra,
    )


def _cmd_infer(args) -> int:
    from .engine.sources import infer_schema

    records = _read_answer_csv_or_complain(args.answers)
    if records is None:
        return 1

    schema = infer_schema(records)
    labels = list(schema.labels)
    error = _require_applicable(args.method, schema.task_type)
    if error:
        print(error, file=sys.stderr)
        return 1
    answers = AnswerSet.from_records(records, schema.task_type,
                                     label_order=labels)
    result = create(args.method, seed=args.seed).fit(answers)

    print(f"# method={args.method} tasks={answers.n_tasks} "
          f"workers={answers.n_workers} answers={answers.n_answers}")
    print("task,inferred_truth")
    for task in range(answers.n_tasks):
        task_id = (answers.task_labels[task] if answers.task_labels
                   else str(task))
        print(f"{task_id},{labels[int(result.truths[task])]}")
    return 0


def _open_stream_source(args):
    """The :class:`AnswerSource` a ``stream`` invocation names, or an
    error string.

    A declared ``--task-type`` builds a :class:`TaskSchema` up front —
    no pre-scan, which is what makes ``--source stdin`` (or the TCP
    socket source, ``--source tcp:HOST:PORT``) possible.  A CSV with no
    declared type keeps the legacy behaviour: the source infers its
    schema with one read-through.
    """
    from .engine.sources import (CsvAnswerSource, LineAnswerSource,
                                 TaskSchema, TcpAnswerSource)

    schema = (TaskSchema.declare(args.task_type)
              if args.task_type else None)
    line_kwargs = {}
    if getattr(args, "max_bad_lines", None) is not None:
        line_kwargs["max_bad_lines"] = args.max_bad_lines
    if args.source == "stdin" or args.source.startswith("tcp:"):
        if args.answers:
            return None, (f"--source {args.source} conflicts with the "
                          f"answers path {args.answers!r}; pass one input")
        if schema is None:
            return None, (f"--source {args.source} requires --task-type: "
                          f"a live stream cannot be pre-scanned")
        if args.source == "stdin":
            return LineAnswerSource(sys.stdin, schema, name="<stdin>",
                                    **line_kwargs), None
        host, _, port = args.source[len("tcp:"):].rpartition(":")
        if not host or not port.isdigit():
            return None, (f"--source {args.source!r} must look like "
                          f"tcp:HOST:PORT")
        from .exceptions import AnswerSourceError

        try:
            return TcpAnswerSource(
                host, int(port), schema, name=args.source,
                reconnect=getattr(args, "reconnect", 0) or 0,
                **line_kwargs), None
        except AnswerSourceError as exc:
            return None, str(exc)
    if args.source != "csv":
        return None, (f"unknown --source {args.source!r}; expected csv, "
                      f"stdin or tcp:HOST:PORT")
    if not args.answers:
        return None, "an answers CSV path is required with --source csv"
    return CsvAnswerSource(args.answers, schema), None


def _cmd_stream(args) -> int:
    from .engine import InferenceEngine

    specs = [("--shards", args.shards, 1),
             ("--workers", args.workers, 1),
             ("--chunk-size", args.chunk_size, 1)]
    if args.snapshot_every is not None:
        specs.append(("--snapshot-every", args.snapshot_every, 1))
    if args.max_bad_lines is not None:
        specs.append(("--max-bad-lines", args.max_bad_lines, 0))
    error = _require_minimums(*specs)
    if error:
        return _complain(error)
    if args.snapshot_every is not None and args.store is None:
        return _complain("--snapshot-every requires --store")
    source, error = _open_stream_source(args)
    if error:
        return _complain(error)
    try:
        schema = source.schema  # may pre-scan an undeclared CSV
    except ValueError as exc:
        return _complain(str(exc))
    error = _require_applicable(args.method, schema.task_type)
    if error:
        return _complain(error)
    from .exceptions import ReproError

    policy = _execution_policy(args)
    try:
        engine = InferenceEngine(seed=args.seed, policy=policy,
                                 **schema.engine_kwargs())
    except (ValueError, ReproError) as exc:
        return _complain(str(exc))
    with engine:
        print(f"# streaming {args.source} answers in chunks of "
              f"{args.chunk_size} (method={args.method}, "
              f"task-type={schema.task_type.value})")
        if args.store:
            print(f"# durable store: {args.store} "
                  f"(snapshot every "
                  f"{policy.store.snapshot_every} answers)")
        total = 0
        try:
            for batch in source.batches(args.chunk_size):
                total += engine.add_answers(batch)
                result = engine.infer(args.method)
                warm = ("warm" if result.extras.get("warm_started")
                        else "cold")
                snapshot = engine.stream.snapshot()
                print(f"# +{len(batch)} answers -> "
                      f"{snapshot.n_tasks} tasks, "
                      f"{snapshot.n_workers} workers | "
                      f"{warm} refit: {result.n_iterations} iterations, "
                      f"{result.elapsed_seconds * 1000:.1f} ms")
                if args.verbose and result.fit_stats is not None:
                    print(f"#   fit: {result.fit_stats.summary()}")
        except (ValueError, ReproError) as exc:
            return _complain(str(exc))
        if total == 0:
            return _complain("no answers found")
        if args.verbose:
            totals = getattr(engine, "fault_totals", None)
            if totals and any(totals.values()):
                print("# faults survived: " + ", ".join(
                    f"{count} {kind}" for kind, count in totals.items()))
            if getattr(source, "reconnects", 0):
                print(f"# transport: {source.reconnects} reconnects, "
                      f"{source.bad_lines} bad lines")
        truth = engine.current_truth(args.method)
    print("task,inferred_truth")
    for task_id, value in truth.items():
        print(f"{task_id},{value}")
    return 0


def _cmd_recover(args) -> int:
    """Resume a killed ``stream --store`` run from its durable store.

    Replays the committed answer log (nothing acknowledged is lost),
    seeds the fit cache from the newest snapshot, refits — warm when
    the snapshot's shard layout still matches — and prints the same
    ``task,inferred_truth`` table ``stream`` ends with.  The resumed
    engine keeps writing through to the same store, so a recovered run
    can itself be recovered.
    """
    from .engine import InferenceEngine
    from .exceptions import ReproError

    specs = [("--shards", args.shards, 1),
             ("--workers", args.workers, 1)]
    if args.snapshot_every is not None:
        specs.append(("--snapshot-every", args.snapshot_every, 1))
    error = _require_minimums(*specs)
    if error:
        return _complain(error)
    args.store = args.path  # _execution_policy spells StorePolicy from it
    policy = _execution_policy(args)
    try:
        engine = InferenceEngine.recover(args.path, policy=policy)
    except (ValueError, ReproError) as exc:
        return _complain(str(exc))
    with engine:
        error = _require_applicable(args.method, engine.stream.task_type)
        if error:
            return _complain(error)
        snapshot = engine.stream.snapshot()
        print(f"# recovered {snapshot.n_answers} answers "
              f"({snapshot.n_tasks} tasks, {snapshot.n_workers} "
              f"workers) from {args.path}", file=sys.stderr)
        try:
            result = engine.infer(args.method)
        except (ValueError, ReproError) as exc:
            return _complain(str(exc))
        warm = "warm" if result.extras.get("warm_started") else "cold"
        print(f"# {warm} refit: {result.n_iterations} iterations, "
              f"{result.elapsed_seconds * 1000:.1f} ms", file=sys.stderr)
        if args.verbose and result.fit_stats is not None:
            print(f"#   fit: {result.fit_stats.summary()}",
                  file=sys.stderr)
        truth = engine.current_truth(args.method)
    print("task,inferred_truth")
    for task_id, value in truth.items():
        print(f"{task_id},{value}")
    return 0


def _cmd_batch(args) -> int:
    from .experiments.runner import Timer, run_grid

    error = _require_minimums(("--shards", args.shards, 1),
                              ("--workers", args.workers, 1))
    if error:
        return _complain(error)
    if args.shard_executor is not None:
        _deprecated_flag("--shard-executor", "--executor")
        if args.executor != "auto":
            # Refuse to guess which of two explicit executor choices
            # wins; silently ignoring either would be worse.
            return _complain(
                "--shard-executor conflicts with --executor; pass only "
                "--executor"
            )
        args.executor = args.shard_executor
    if args.executor in ("thread", "process") and args.shards <= 1:
        # Before the flag unification, batch --executor chose the *job
        # pool*; it now chooses each fit's execution tier, which is a
        # no-op without sharding.  Say so instead of silently differing.
        print(f"note: --executor {args.executor} configures each fit's "
              f"sharded-EM tier and has no effect with --shards 1; job "
              f"fan-out always uses threads (--workers)",
              file=sys.stderr)
    if args.methods:
        unknown = [m for m in args.methods if m not in available_methods()]
        if unknown:
            return _complain(f"unknown methods: {', '.join(unknown)} "
                             f"(see `repro methods`)")
    datasets = [load_paper_dataset(name, seed=args.seed, scale=args.scale)
                for name in (args.datasets or PAPER_DATASET_NAMES)]
    policy = ExecutionPolicy(n_shards=args.shards, executor=args.executor)
    with Timer() as timer:
        runs = run_grid(datasets, methods=args.methods or None,
                        seed=args.seed, max_workers=args.workers,
                        policy=policy)
    if not runs:
        print("no (dataset, method) combinations are applicable; check "
              "the task types with `repro methods`", file=sys.stderr)
        return 1
    rows = [[run.method, run.dataset,
             " ".join(f"{name}={value:.4f}"
                      for name, value in run.scores.items()),
             f"{run.elapsed_seconds:.2f}s"]
            for run in runs]
    print(format_table(
        ["method", "dataset", "scores", "fit time"], rows,
        title=f"Batch grid: {len(runs)} jobs on {args.workers} "
              f"workers (scale={args.scale})"))
    serial = sum(run.elapsed_seconds for run in runs)
    print(f"\nwall time {timer.elapsed:.2f}s vs {serial:.2f}s summed fit "
          f"time ({serial / max(timer.elapsed, 1e-9):.1f}x overlap)")
    return 0


def _cmd_plan_redundancy(args) -> int:
    from .planning import (
        estimate_saturation_redundancy,
        fit_saturation_model,
        redundancy_curve,
    )

    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    max_r = max(2, int(round(dataset.answers.redundancy)))
    grid = list(range(1, max_r + 1))
    metric = "accuracy" if dataset.task_type.is_categorical else "mae"
    curve = redundancy_curve(dataset, args.method, grid, metric=metric,
                             n_repeats=args.repeats, base_seed=args.seed)
    higher = dataset.task_type.is_categorical
    r_hat = estimate_saturation_redundancy(grid, curve,
                                           higher_is_better=higher)
    print(format_series("r", grid, {args.method: curve},
                        title=f"{dataset.name}: {metric} vs redundancy"))
    print(f"\nestimated saturation redundancy r̂ = {r_hat}")
    if len(grid) >= 3 and higher:
        model = fit_saturation_model(grid, curve)
        print(f"fitted ceiling q_inf = {model.q_inf:.4f}; "
              f"gain from r={max_r} to r={max_r + 1}: "
              f"{model.marginal_gain(max_r):+.4f}")
    return 0


def _cmd_check(args) -> int:
    """Run the repo-native static-analysis pass (see repro.checks)."""
    from pathlib import Path

    from .checks.contracts import check_contracts
    from .checks.lint import run_lint

    if args.root is not None:
        root = Path(args.root)
    else:
        root = Path(__file__).resolve().parent
    if not root.is_dir():
        return _complain(f"check root {root} is not a directory")

    report = run_lint(root)
    findings = list(report.findings)
    if not args.no_contracts:
        findings.extend(check_contracts())
    for finding in findings:
        print(finding.render())

    failed = bool(findings)
    if args.strict:
        for rel, pragma in report.reasonless:
            print(f"{rel}:{pragma.line}: strict: pragma "
                  f"allow-{pragma.slug}(...) has no reason string")
            failed = True
    if report.suppressed and args.verbose:
        for finding, pragma in report.suppressed:
            print(f"{finding.path}:{finding.line}: suppressed "
                  f"{finding.rule} ({pragma.reason.strip()})")
    print(f"repro check: {len(findings)} finding(s), "
          f"{len(report.suppressed)} suppressed, "
          f"{len(report.reasonless)} reasonless pragma(s)")
    return 1 if failed else 0


def _executor_flag(parser: argparse.ArgumentParser) -> None:
    """The unified ``--executor`` spelling (same on every command)."""
    parser.add_argument("--executor", choices=EXECUTOR_CHOICES,
                        default="auto",
                        help="execution tier for each fit's sharded EM: "
                             "auto resolves per input; 'process' leases "
                             "the persistent warm-pool shared-memory "
                             "runtime across fits")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truth-inference reproduction CLI (VLDB 2017 survey)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered methods")

    sub.add_parser("capabilities",
                   help="execution capabilities per method "
                        "(sharded, warm-start, delta, seed-posterior)")

    p_datasets = sub.add_parser("datasets", help="Table 5 of the replicas")
    _common(p_datasets)

    p_run = sub.add_parser("run", help="run methods on a replica")
    _common(p_run)
    p_run.add_argument("--dataset", required=True,
                       choices=PAPER_DATASET_NAMES)
    p_run.add_argument("--methods", nargs="*", default=None)

    p_sweep = sub.add_parser("sweep", help="redundancy sweep on a replica")
    _common(p_sweep)
    p_sweep.add_argument("--dataset", required=True,
                         choices=PAPER_DATASET_NAMES)
    p_sweep.add_argument("--methods", nargs="*", default=None)
    p_sweep.add_argument("--redundancies", nargs="*", type=int, default=None)
    p_sweep.add_argument("--repeats", type=int, default=3)

    p_infer = sub.add_parser("infer",
                             help="infer truths from a CSV of answers")
    p_infer.add_argument("answers", help="CSV of task,worker,answer rows")
    p_infer.add_argument("--method", default="D&S")
    p_infer.add_argument("--seed", type=int, default=0)

    p_stream = sub.add_parser(
        "stream",
        help="feed an answer source through the streaming engine")
    p_stream.add_argument("answers", nargs="?", default=None,
                          help="CSV of task,worker,answer rows "
                               "(omit with --source stdin)")
    p_stream.add_argument("--method", default="D&S")
    p_stream.add_argument("--chunk-size", type=int, default=500)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--source", default="csv", metavar="SOURCE",
                          help="where answers come from: csv (default), "
                               "stdin, or tcp:HOST:PORT; the live "
                               "sources read line-delimited "
                               "task,worker,answer rows and need "
                               "--task-type")
    p_stream.add_argument("--task-type", choices=TASK_TYPE_CHOICES,
                          default=None,
                          help="declare the stream's task type instead "
                               "of pre-scanning the CSV (required for "
                               "--source stdin / tcp:...)")
    p_stream.add_argument("--shards", type=int, default=1,
                          help="task-range shards per refit (sharded EM; "
                               "clamped to the task count)")
    p_stream.add_argument("--workers", type=int, default=1,
                          help="parallel width for sharded refits: "
                               "threads, or pool slots with "
                               "--executor process")
    p_stream.add_argument("--refit", choices=["full", "delta"],
                          default=None,
                          help="warm-refit mode: 'delta' primes only "
                               "dirty shards and freezes converged ones "
                               "(see ExecutionPolicy); default full")
    p_stream.add_argument("--freeze-tol", type=float, default=None,
                          help="delta refits: shard freeze/thaw "
                               "tolerance (default: the EM tolerance)")
    p_stream.add_argument("--verify-every", type=int, default=None,
                          help="delta refits: full-verify cadence in EM "
                               "iterations")
    p_stream.add_argument("--store", default=None, metavar="PATH",
                          help="durable store directory: write every "
                               "acknowledged batch through to a "
                               "WAL-mode answer log and snapshot fits "
                               "periodically; resume a killed run with "
                               "`repro recover PATH`")
    p_stream.add_argument("--snapshot-every", type=int, default=None,
                          help="with --store: snapshot fitted state "
                               "every N logged answers (default "
                               f"{DEFAULT_SNAPSHOT_EVERY})")
    p_stream.add_argument("--max-bad-lines", type=int, default=None,
                          help="live line sources: skip and count up "
                               "to N malformed lines before failing "
                               "with the offending line number; 0 "
                               "fails on the first (default 100)")
    p_stream.add_argument("--reconnect", type=int, default=0,
                          metavar="N",
                          help="--source tcp: survive up to N "
                               "transport drops, redialling with "
                               "capped backoff and resuming the "
                               "stream in place (default 0 = fail "
                               "fast)")
    p_stream.add_argument("-v", "--verbose", action="store_true",
                          help="print per-refit fit telemetry "
                               "(iterations, active/frozen shards, "
                               "EM-vs-overhead wall time)")
    _executor_flag(p_stream)

    p_recover = sub.add_parser(
        "recover",
        help="resume a killed `stream --store` run from its store")
    p_recover.add_argument("path",
                           help="store directory a previous "
                                "`repro stream --store PATH` wrote")
    p_recover.add_argument("--method", default="D&S")
    p_recover.add_argument("--shards", type=int, default=1,
                           help="task-range shards per refit (match "
                                "the killed run's --shards to resume "
                                "its snapshot layout warm)")
    p_recover.add_argument("--workers", type=int, default=1,
                           help="parallel width for sharded refits")
    p_recover.add_argument("--refit", choices=["full", "delta"],
                           default=None,
                           help="warm-refit mode (match the killed "
                                "run's --refit delta for a warm "
                                "tail-only resume)")
    p_recover.add_argument("--freeze-tol", type=float, default=None,
                           help="delta refits: shard freeze/thaw "
                                "tolerance")
    p_recover.add_argument("--verify-every", type=int, default=None,
                           help="delta refits: full-verify cadence in "
                                "EM iterations")
    p_recover.add_argument("--snapshot-every", type=int, default=None,
                           help="snapshot cadence for the resumed "
                                "engine (default "
                                f"{DEFAULT_SNAPSHOT_EVERY})")
    p_recover.add_argument("-v", "--verbose", action="store_true",
                           help="print the recovery refit's telemetry")
    _executor_flag(p_recover)

    p_batch = sub.add_parser(
        "batch", help="fan a (dataset x method) grid across workers")
    _common(p_batch)
    p_batch.add_argument("--datasets", nargs="+", default=None,
                         choices=PAPER_DATASET_NAMES)
    p_batch.add_argument("--methods", nargs="+", default=None)
    p_batch.add_argument("--workers", type=int, default=4,
                         help="job fan-out width (fits running at once)")
    p_batch.add_argument("--shards", type=int, default=1,
                         help="task-range shards per fit for methods "
                              "with sharded EM (clamped to each "
                              "dataset's task count)")
    _executor_flag(p_batch)
    p_batch.add_argument("--shard-executor", choices=["thread", "process"],
                         default=None, help=argparse.SUPPRESS)

    p_plan = sub.add_parser("plan-redundancy",
                            help="estimate the saturation redundancy")
    _common(p_plan)
    p_plan.add_argument("--dataset", required=True,
                        choices=PAPER_DATASET_NAMES)
    p_plan.add_argument("--method", default="MV")
    p_plan.add_argument("--repeats", type=int, default=3)

    p_check = sub.add_parser(
        "check",
        help="static-analysis pass: invariant linter (R001-R007) plus "
             "the capability contract checker")
    p_check.add_argument("--root", default=None, metavar="DIR",
                         help="package directory to lint (default: the "
                              "installed repro package)")
    p_check.add_argument("--strict", action="store_true",
                         help="additionally fail on suppression pragmas "
                              "that carry no reason string")
    p_check.add_argument("--no-contracts", action="store_true",
                         help="skip the capability contract checker "
                              "(lint only; useful on partial trees)")
    p_check.add_argument("-v", "--verbose", action="store_true",
                         help="list suppressed findings with their "
                              "pragma reasons")

    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.2)


_COMMANDS = {
    "methods": _cmd_methods,
    "capabilities": _cmd_capabilities,
    "datasets": _cmd_datasets,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "infer": _cmd_infer,
    "stream": _cmd_stream,
    "recover": _cmd_recover,
    "batch": _cmd_batch,
    "plan-redundancy": _cmd_plan_redundancy,
    "check": _cmd_check,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
