"""Command-line interface: run inference and experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro methods                    # list the 17 methods
    python -m repro datasets                   # Table 5 of the replicas
    python -m repro infer answers.csv --method "D&S"
    python -m repro stream answers.csv --method "D&S" --chunk-size 200
    python -m repro stream answers.csv --method "D&S" --shards 4 --workers 2
    python -m repro stream answers.csv --shards 8 --executor process
    python -m repro run --dataset D_Product --method D&S --scale 0.2
    python -m repro batch --datasets D_Product D_PosSent --workers 4
    python -m repro batch --methods D&S GLAD --shards 8 --executor process
    python -m repro batch --methods D&S ZC --shards 8 --shard-executor process
    python -m repro sweep --dataset D_PosSent --methods MV ZC D&S
    python -m repro plan-redundancy --dataset D_PosSent --method MV

``infer`` reads a headerless/headered CSV of ``task,worker,answer``
triples, so the CLI works on real exported crowd data, not only on the
replicas.  ``stream`` replays the same CSV through the
:class:`~repro.engine.InferenceEngine` in chunks, warm-starting each
refit from the previous one — the online-serving path.  ``batch`` fans a
(dataset × method) grid across a thread or process pool.  Both accept
``--shards`` to run each EM fit as sharded map-reduce (see
:mod:`repro.inference.sharded`) and a process option (``stream
--executor process`` / ``batch --shard-executor process``) that leases
the persistent shared-memory runtime (:mod:`repro.engine.runtime`)
instead of spawning pools per fit.  Flag validation is shared across
commands (:func:`_require_minimums`); ``--shards`` beyond the task
count is clamped deterministically by the shard layer.
"""

from __future__ import annotations

import argparse
import csv
import sys

from .core.answers import AnswerSet
from .core.registry import available_methods, create, methods_for_task_type
from .core.tasktypes import TaskType
from .datasets.paper import PAPER_DATASET_NAMES, all_paper_datasets, load_paper_dataset
from .experiments.reporting import format_series, format_table
from .experiments.redundancy import sweep_redundancy
from .experiments.stats import table5


def _cmd_methods(_args) -> int:
    rows = []
    for name in available_methods():
        method = create(name)
        types = ", ".join(sorted(t.value for t in method.task_types))
        rows.append([
            name, types,
            "yes" if method.supports_initial_quality else "no",
            "yes" if method.supports_golden else "no",
        ])
    print(format_table(
        ["method", "task types", "qualification", "hidden test"], rows,
        title="Registered truth-inference methods (paper Table 4)"))
    return 0


def _cmd_datasets(args) -> int:
    datasets = all_paper_datasets(seed=args.seed, scale=args.scale)
    rows = [[r["dataset"], r["n_tasks"], r["n_truth"], r["n_answers"],
             r["redundancy"], r["n_workers"], r["consistency_C"]]
            for r in table5(datasets)]
    print(format_table(
        ["dataset", "#tasks", "#truth", "|V|", "|V|/n", "|W|", "C"], rows,
        title=f"Paper-dataset replicas (seed={args.seed}, "
              f"scale={args.scale})"))
    return 0


def _cmd_run(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    names = args.methods or methods_for_task_type(dataset.task_type)
    rows = []
    for name in names:
        result = create(name, seed=args.seed).fit(dataset.answers)
        scores = dataset.score(result)
        rows.append([name]
                    + [round(v, 4) for v in scores.values()]
                    + [f"{result.elapsed_seconds:.2f}s"])
    metric_names = list(dataset.score(
        create(names[0], seed=args.seed).fit(dataset.answers)))
    print(format_table(["method"] + metric_names + ["time"], rows,
                       title=f"{dataset.name} (scale={args.scale})"))
    return 0


def _cmd_sweep(args) -> int:
    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    sweep = sweep_redundancy(
        dataset,
        redundancies=args.redundancies,
        methods=args.methods or None,
        n_repeats=args.repeats,
        base_seed=args.seed,
    )
    for metric, series in sweep.series.items():
        print(format_series("r", sweep.redundancies, series,
                            title=f"{dataset.name}: {metric} vs redundancy"))
        print()
    return 0


def _read_answer_csv(path: str) -> list[tuple[str, str, str]]:
    """Read ``task,worker,answer`` triples, skipping an optional header.

    Raises :class:`ValueError` on rows with fewer than three columns.
    """
    records = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for number, row in enumerate(reader, start=1):
            if not row or row[0].strip().lower() in ("task", "#task"):
                continue
            if len(row) < 3:
                raise ValueError(
                    f"{path}:{number}: malformed row {row!r} "
                    f"(expected task,worker,answer)"
                )
            records.append((row[0].strip(), row[1].strip(), row[2].strip()))
    return records


def _read_answer_csv_or_complain(path: str):
    """CSV records, or ``None`` after printing the error to stderr."""
    try:
        records = _read_answer_csv(path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    if not records:
        print("no answers found", file=sys.stderr)
        return None
    return records


def _classify_answer_labels(records) -> tuple[list[str], TaskType]:
    """The label set of a CSV and the task type it implies."""
    labels = sorted({value for _, _, value in records})
    task_type = (TaskType.DECISION_MAKING if len(labels) == 2
                 else TaskType.SINGLE_CHOICE)
    return labels, task_type


def _require_applicable(method: str, task_type: TaskType) -> str | None:
    """An error message if ``method`` cannot run on ``task_type``."""
    if method not in available_methods():
        return f"unknown method: {method} (see `repro methods`)"
    if method not in methods_for_task_type(task_type):
        return (f"method {method} does not support {task_type.value} "
                f"tasks (see `repro methods`)")
    return None


def _require_minimums(*specs: tuple[str, int, int]) -> str | None:
    """Shared flag validation: each spec is ``(flag, value, minimum)``.

    Returns the first violation as an error message, so every command
    rejects bad counts with identical wording (``stream`` and ``batch``
    historically disagreed on ``--workers``).  ``--shards`` above the
    task count is *not* an error: :func:`repro.core.shards.shard_by_tasks`
    clamps it deterministically to the task count.
    """
    for flag, value, minimum in specs:
        if value < minimum:
            return f"{flag} must be >= {minimum}, got {value}"
    return None


def _complain(message: str) -> int:
    print(message, file=sys.stderr)
    return 1


def _cmd_infer(args) -> int:
    records = _read_answer_csv_or_complain(args.answers)
    if records is None:
        return 1

    labels, task_type = _classify_answer_labels(records)
    error = _require_applicable(args.method, task_type)
    if error:
        print(error, file=sys.stderr)
        return 1
    answers = AnswerSet.from_records(records, task_type, label_order=labels)
    result = create(args.method, seed=args.seed).fit(answers)

    print(f"# method={args.method} tasks={answers.n_tasks} "
          f"workers={answers.n_workers} answers={answers.n_answers}")
    print("task,inferred_truth")
    for task in range(answers.n_tasks):
        task_id = (answers.task_labels[task] if answers.task_labels
                   else str(task))
        print(f"{task_id},{labels[int(result.truths[task])]}")
    return 0


def _cmd_stream(args) -> int:
    from .engine import InferenceEngine

    error = _require_minimums(("--shards", args.shards, 1),
                              ("--workers", args.workers, 1),
                              ("--chunk-size", args.chunk_size, 1))
    if error:
        return _complain(error)
    records = _read_answer_csv_or_complain(args.answers)
    if records is None:
        return 1

    # Pre-scan the label set to classify decision-making vs
    # single-choice.  Fixing label_order up front is no longer required
    # for warmth — the engine pads cached state across label growth —
    # but it keeps label codes deterministic for the printed output.
    labels, task_type = _classify_answer_labels(records)
    error = _require_applicable(args.method, task_type)
    if error:
        print(error, file=sys.stderr)
        return 1
    with InferenceEngine(task_type, label_order=labels, seed=args.seed,
                         n_shards=args.shards,
                         shard_workers=args.workers,
                         shard_executor=args.executor) as engine:
        chunk = args.chunk_size
        print(f"# streaming {len(records)} answers in chunks of {chunk} "
              f"(method={args.method})")
        for start in range(0, len(records), chunk):
            engine.add_answers(records[start:start + chunk])
            result = engine.infer(args.method)
            warm = "warm" if result.extras.get("warm_started") else "cold"
            snapshot = engine.stream.snapshot()
            print(f"# +{min(chunk, len(records) - start)} answers -> "
                  f"{snapshot.n_tasks} tasks, {snapshot.n_workers} workers | "
                  f"{warm} refit: {result.n_iterations} iterations, "
                  f"{result.elapsed_seconds * 1000:.1f} ms")

        truth = engine.current_truth(args.method)
    print("task,inferred_truth")
    for task_id, value in truth.items():
        print(f"{task_id},{value}")
    return 0


def _cmd_batch(args) -> int:
    from .experiments.runner import Timer, run_grid

    error = _require_minimums(("--shards", args.shards, 1),
                              ("--workers", args.workers, 1))
    if error:
        return _complain(error)
    if args.methods:
        unknown = [m for m in args.methods if m not in available_methods()]
        if unknown:
            return _complain(f"unknown methods: {', '.join(unknown)} "
                             f"(see `repro methods`)")
    datasets = [load_paper_dataset(name, seed=args.seed, scale=args.scale)
                for name in (args.datasets or PAPER_DATASET_NAMES)]
    with Timer() as timer:
        runs = run_grid(datasets, methods=args.methods or None,
                        seed=args.seed, max_workers=args.workers,
                        n_shards=args.shards, executor=args.executor,
                        shard_executor=args.shard_executor)
    if not runs:
        print("no (dataset, method) combinations are applicable; check "
              "the task types with `repro methods`", file=sys.stderr)
        return 1
    rows = [[run.method, run.dataset,
             " ".join(f"{name}={value:.4f}"
                      for name, value in run.scores.items()),
             f"{run.elapsed_seconds:.2f}s"]
            for run in runs]
    print(format_table(
        ["method", "dataset", "scores", "fit time"], rows,
        title=f"Batch grid: {len(runs)} jobs on {args.workers} "
              f"workers (scale={args.scale})"))
    serial = sum(run.elapsed_seconds for run in runs)
    print(f"\nwall time {timer.elapsed:.2f}s vs {serial:.2f}s summed fit "
          f"time ({serial / max(timer.elapsed, 1e-9):.1f}x overlap)")
    return 0


def _cmd_plan_redundancy(args) -> int:
    from .planning import (
        estimate_saturation_redundancy,
        fit_saturation_model,
        redundancy_curve,
    )

    dataset = load_paper_dataset(args.dataset, seed=args.seed,
                                 scale=args.scale)
    max_r = max(2, int(round(dataset.answers.redundancy)))
    grid = list(range(1, max_r + 1))
    metric = "accuracy" if dataset.task_type.is_categorical else "mae"
    curve = redundancy_curve(dataset, args.method, grid, metric=metric,
                             n_repeats=args.repeats, base_seed=args.seed)
    higher = dataset.task_type.is_categorical
    r_hat = estimate_saturation_redundancy(grid, curve,
                                           higher_is_better=higher)
    print(format_series("r", grid, {args.method: curve},
                        title=f"{dataset.name}: {metric} vs redundancy"))
    print(f"\nestimated saturation redundancy r̂ = {r_hat}")
    if len(grid) >= 3 and higher:
        model = fit_saturation_model(grid, curve)
        print(f"fitted ceiling q_inf = {model.q_inf:.4f}; "
              f"gain from r={max_r} to r={max_r + 1}: "
              f"{model.marginal_gain(max_r):+.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Truth-inference reproduction CLI (VLDB 2017 survey)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered methods")

    p_datasets = sub.add_parser("datasets", help="Table 5 of the replicas")
    _common(p_datasets)

    p_run = sub.add_parser("run", help="run methods on a replica")
    _common(p_run)
    p_run.add_argument("--dataset", required=True,
                       choices=PAPER_DATASET_NAMES)
    p_run.add_argument("--methods", nargs="*", default=None)

    p_sweep = sub.add_parser("sweep", help="redundancy sweep on a replica")
    _common(p_sweep)
    p_sweep.add_argument("--dataset", required=True,
                         choices=PAPER_DATASET_NAMES)
    p_sweep.add_argument("--methods", nargs="*", default=None)
    p_sweep.add_argument("--redundancies", nargs="*", type=int, default=None)
    p_sweep.add_argument("--repeats", type=int, default=3)

    p_infer = sub.add_parser("infer",
                             help="infer truths from a CSV of answers")
    p_infer.add_argument("answers", help="CSV of task,worker,answer rows")
    p_infer.add_argument("--method", default="D&S")
    p_infer.add_argument("--seed", type=int, default=0)

    p_stream = sub.add_parser(
        "stream",
        help="replay a CSV through the streaming engine in chunks")
    p_stream.add_argument("answers", help="CSV of task,worker,answer rows")
    p_stream.add_argument("--method", default="D&S")
    p_stream.add_argument("--chunk-size", type=int, default=500)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--shards", type=int, default=1,
                          help="task-range shards per refit (sharded EM; "
                               "clamped to the task count)")
    p_stream.add_argument("--workers", type=int, default=1,
                          help="parallel width for sharded refits: "
                               "threads (1 = serial) or, with "
                               "--executor process, pool slots")
    p_stream.add_argument("--executor", choices=["thread", "process"],
                          default="thread",
                          help="where sharded refits run; 'process' "
                               "keeps a persistent warm pool across "
                               "refits and appends stream growth to "
                               "its shared-memory segments")

    p_batch = sub.add_parser(
        "batch", help="fan a (dataset x method) grid across workers")
    _common(p_batch)
    p_batch.add_argument("--datasets", nargs="+", default=None,
                         choices=PAPER_DATASET_NAMES)
    p_batch.add_argument("--methods", nargs="+", default=None)
    p_batch.add_argument("--workers", type=int, default=4)
    p_batch.add_argument("--shards", type=int, default=1,
                         help="task-range shards per fit for methods "
                              "with sharded EM (clamped to each "
                              "dataset's task count)")
    p_batch.add_argument("--executor", choices=["thread", "process"],
                         default=None,
                         help="pool type for the job fan-out "
                              "(default: threads)")
    p_batch.add_argument("--shard-executor", choices=["thread", "process"],
                         default=None,
                         help="where sharded fits run; 'process' leases "
                              "the persistent shared-memory runtime, "
                              "spawning worker pools once per sweep")

    p_plan = sub.add_parser("plan-redundancy",
                            help="estimate the saturation redundancy")
    _common(p_plan)
    p_plan.add_argument("--dataset", required=True,
                        choices=PAPER_DATASET_NAMES)
    p_plan.add_argument("--method", default="MV")
    p_plan.add_argument("--repeats", type=int, default=3)

    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.2)


_COMMANDS = {
    "methods": _cmd_methods,
    "datasets": _cmd_datasets,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "infer": _cmd_infer,
    "stream": _cmd_stream,
    "batch": _cmd_batch,
    "plan-redundancy": _cmd_plan_redundancy,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
