"""Redundancy planning — the paper's §7 future direction (3).

"The quality significantly increases with small redundancy, and keeps
stable for a large redundancy.  Then how to estimate the data
redundancy with stable quality?  Is it possible to estimate the
improvement with more data redundancy?"

Two tools answer those two questions:

* :func:`estimate_saturation_redundancy` — given a measured
  quality-vs-redundancy curve, find the paper's r̂: the smallest r after
  which the marginal gain stays below a threshold.
* :class:`SaturationModel` — fit the curve with the saturating
  exponential ``q(r) = q_inf − a·exp(−b·r)`` and *extrapolate* the
  quality at redundancies that were never collected, i.e. "estimate the
  improvement with more data redundancy".
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import optimize

from ..datasets.schema import Dataset
from ..experiments.redundancy import sweep_redundancy


def redundancy_curve(
    dataset: Dataset,
    method: str,
    redundancies: Sequence[int],
    metric: str = "accuracy",
    n_repeats: int = 3,
    base_seed: int = 0,
) -> list[float]:
    """Measure one method's quality-vs-redundancy curve (pilot data)."""
    sweep = sweep_redundancy(dataset, redundancies=redundancies,
                             methods=[method], n_repeats=n_repeats,
                             base_seed=base_seed)
    return sweep.series_for(metric)[method]


def estimate_saturation_redundancy(
    redundancies: Sequence[int],
    qualities: Sequence[float],
    epsilon: float = 0.005,
    higher_is_better: bool = True,
) -> int:
    """The paper's r̂: smallest r whose remaining marginal gains < ε.

    Scans the measured curve and returns the first redundancy after
    which *every* subsequent per-step improvement is below ``epsilon``.
    Falls back to the largest measured redundancy when the curve never
    flattens.
    """
    redundancies = list(redundancies)
    qualities = list(qualities)
    if len(redundancies) != len(qualities):
        raise ValueError("redundancies and qualities must be parallel")
    if len(redundancies) < 2:
        raise ValueError("need at least two curve points")
    sign = 1.0 if higher_is_better else -1.0
    gains = [sign * (b - a) for a, b in zip(qualities, qualities[1:])]
    for position in range(len(gains)):
        if all(gain < epsilon for gain in gains[position:]):
            return redundancies[position]
    return redundancies[-1]


@dataclasses.dataclass
class SaturationModel:
    """Fitted ``q(r) = q_inf − a·exp(−b·r)`` saturation curve.

    ``q_inf`` is the predicted quality ceiling; ``predict`` extrapolates
    to unseen redundancies; ``marginal_gain`` answers "what do I buy
    with one more answer per task?".
    """

    q_inf: float
    a: float
    b: float

    def predict(self, r: np.ndarray | float) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        return self.q_inf - self.a * np.exp(-self.b * r)

    def marginal_gain(self, r: float) -> float:
        """Predicted quality gain from redundancy r to r + 1."""
        return float(self.predict(r + 1) - self.predict(r))

    def redundancy_for_quality(self, target: float) -> float:
        """Smallest (real-valued) r whose predicted quality hits target.

        Returns inf when the target exceeds the predicted ceiling.
        """
        if target >= self.q_inf:
            return float("inf")
        return float(-np.log((self.q_inf - target) / self.a) / self.b)


def fit_saturation_model(redundancies: Sequence[int],
                         qualities: Sequence[float]) -> SaturationModel:
    """Least-squares fit of the saturating exponential to pilot data."""
    r = np.asarray(redundancies, dtype=np.float64)
    q = np.asarray(qualities, dtype=np.float64)
    if len(r) < 3:
        raise ValueError("need at least three points to fit three parameters")

    def curve(r, q_inf, a, b):
        return q_inf - a * np.exp(-b * r)

    q_span = max(q.max() - q.min(), 1e-6)
    initial = (q.max() + 0.1 * q_span, q_span, 0.5)
    bounds = ([q.min(), 1e-9, 1e-4], [1.5, 10.0, 10.0])
    params, _ = optimize.curve_fit(curve, r, q, p0=initial, bounds=bounds,
                                   maxfev=20_000)
    return SaturationModel(q_inf=float(params[0]), a=float(params[1]),
                           b=float(params[2]))
