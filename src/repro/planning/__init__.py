"""Planning tools — the paper's §7 future directions (3), (4) and (5).

Redundancy planning (how many answers per task before quality
saturates, what one more answer buys) and golden-task benefit
estimation (is a qualification or hidden test worth paying for on this
dataset with this method).
"""

from .benefit import (
    BenefitEstimate,
    estimate_hidden_benefit,
    estimate_qualification_benefit,
)
from .redundancy import (
    SaturationModel,
    estimate_saturation_redundancy,
    fit_saturation_model,
    redundancy_curve,
)

__all__ = [
    "BenefitEstimate",
    "SaturationModel",
    "estimate_hidden_benefit",
    "estimate_qualification_benefit",
    "estimate_saturation_redundancy",
    "fit_saturation_model",
    "redundancy_curve",
]
