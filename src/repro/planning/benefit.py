"""Golden-task benefit estimation — paper §7 directions (4) and (5).

"Not all methods can benefit from qualification test ... is it possible
to estimate the benefit of qualification test for a method?"  and
"is it possible to estimate the improvement with hidden test for a
method on a dataset?"

Both estimators run the respective protocol several times on the data
at hand and summarise the quality delta with a bootstrap-style mean ±
standard deviation, plus a decision flag (does the mean clear one
standard deviation?).  This turns the paper's open question into a
concrete, data-driven planning call: *should I spend money on golden
tasks here?*
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.registry import create
from ..datasets.schema import Dataset
from ..experiments.hidden import sample_golden
from ..experiments.qualification import bootstrap_initial_quality
from ..experiments.runner import run_method


@dataclasses.dataclass
class BenefitEstimate:
    """Estimated quality change from a golden-task intervention.

    Deltas are stored sign-adjusted so that *positive always means
    better* (error metrics are negated).
    """

    method: str
    dataset: str
    protocol: str
    metric: str
    baseline: float
    mean_delta: float
    std_delta: float
    n_repeats: int

    @property
    def worthwhile(self) -> bool:
        """True when the mean improvement clears one standard deviation."""
        return self.mean_delta > self.std_delta

    def summary(self) -> str:
        verdict = "worthwhile" if self.worthwhile else "not worthwhile"
        return (
            f"{self.protocol} for {self.method} on {self.dataset}: "
            f"Δ{self.metric} = {self.mean_delta:+.4f} ± "
            f"{self.std_delta:.4f} over {self.n_repeats} repeats "
            f"({verdict})"
        )


def _primary_metric(dataset: Dataset) -> tuple[str, float]:
    """(metric name, sign) — sign +1 when higher is better."""
    if dataset.task_type.is_categorical:
        return "accuracy", 1.0
    return "mae", -1.0


def estimate_qualification_benefit(
    dataset: Dataset,
    method: str,
    n_golden: int = 20,
    n_repeats: int = 10,
    base_seed: int = 0,
) -> BenefitEstimate:
    """Estimate Δquality from a qualification test (paper §6.3.2).

    Raises ``ValueError`` for methods that cannot consume an initial
    quality — the estimator's first useful answer is "this method
    cannot benefit at all".
    """
    if not create(method).supports_initial_quality:
        raise ValueError(
            f"{method} cannot incorporate a qualification test "
            "(see paper Table 7 for the 8 methods that can)"
        )
    metric, sign = _primary_metric(dataset)
    baseline = run_method(method, dataset, seed=base_seed).scores[metric]

    deltas = []
    for repeat in range(n_repeats):
        rng = np.random.default_rng(base_seed + 1000 + repeat)
        initial = bootstrap_initial_quality(dataset, n_golden, rng)
        scores = run_method(method, dataset, seed=base_seed + repeat,
                            initial_quality=initial).scores
        deltas.append(sign * (scores[metric] - baseline))

    return BenefitEstimate(
        method=method,
        dataset=dataset.name,
        protocol=f"qualification test ({n_golden} golden tasks)",
        metric=metric,
        baseline=baseline,
        mean_delta=float(np.mean(deltas)),
        std_delta=float(np.std(deltas)),
        n_repeats=n_repeats,
    )


def estimate_hidden_benefit(
    dataset: Dataset,
    method: str,
    percentage: float = 10.0,
    n_repeats: int = 10,
    base_seed: int = 0,
) -> BenefitEstimate:
    """Estimate Δquality from planting p% hidden golden tasks (§6.3.3).

    Both arms are evaluated on the same T − T' subset: the golden
    tasks' truths are clamped in one arm and withheld in the other —
    exactly the comparison a requester deciding on golden tasks faces.
    """
    if not create(method).supports_golden:
        raise ValueError(
            f"{method} cannot incorporate hidden golden tasks "
            "(see paper §6.3.3 for the 9 methods that can)"
        )
    metric, sign = _primary_metric(dataset)

    baselines, deltas = [], []
    for repeat in range(n_repeats):
        rng = np.random.default_rng(base_seed + 2000 + repeat)
        golden = sample_golden(dataset, percentage, rng)
        exclude = set(golden)

        with_result = create(method, seed=base_seed + repeat).fit(
            dataset.answers, golden=golden)
        with_score = dataset.score(with_result, exclude=exclude)[metric]

        plain_result = create(method, seed=base_seed + repeat).fit(
            dataset.answers)
        plain_score = dataset.score(plain_result, exclude=exclude)[metric]

        baselines.append(plain_score)
        deltas.append(sign * (with_score - plain_score))

    return BenefitEstimate(
        method=method,
        dataset=dataset.name,
        protocol=f"hidden test ({percentage:.0f}% golden tasks)",
        metric=metric,
        baseline=float(np.mean(baselines)),
        mean_delta=float(np.mean(deltas)),
        std_delta=float(np.std(deltas)),
        n_repeats=n_repeats,
    )
