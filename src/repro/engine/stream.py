"""Append-only answer stream emitting cheap immutable snapshots.

:class:`StreamingAnswerSet` is the mutable companion of
:class:`~repro.core.answers.AnswerSet`.  It absorbs ``(task, worker,
value)`` triples one batch at a time — new tasks, new workers and new
labels are indexed *in order of first appearance*, so every index that
was valid in an earlier snapshot refers to the same entity in every
later one (the append-only guarantee warm starts rely on).  Index and
label tables are maintained incrementally: emitting a snapshot never
re-scans or re-indexes previously ingested answers, it only materialises
the accumulated arrays into a read-only :class:`AnswerSet`.

Duplicate ``(task, worker)`` pairs are governed by ``on_duplicate``:

* ``"keep"`` (default) — every answer is kept, matching
  :meth:`AnswerSet.from_records`, which also allows repeated pairs;
* ``"replace"`` — the newest answer overwrites the previous one
  in place (the stream does not grow);
* ``"error"`` — a repeated pair raises :class:`InvalidAnswerSetError`.

Snapshots are cached per stream version, so calling :meth:`snapshot`
repeatedly without intervening appends is free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.answers import AnswerSet
from ..core.tasktypes import TaskType, validate_n_choices
from ..exceptions import EngineError, InvalidAnswerSetError

_DUPLICATE_POLICIES = ("keep", "replace", "error")


class StreamingAnswerSet:
    """Append-only ``(task, worker, value)`` buffer with cheap snapshots.

    Parameters
    ----------
    task_type:
        One of :class:`~repro.core.tasktypes.TaskType`.
    n_choices:
        Optional fixed choice count for single-choice tasks.  When
        omitted it follows the discovered label set (growing it as new
        labels arrive — note that a grown label space invalidates warm
        starts, so fix it up front when you can).
    label_order:
        Optional fixed label-code mapping for categorical values (e.g.
        ``['F', 'T']``).  When given, unseen labels are rejected; when
        omitted, labels are indexed in order of first appearance.
    on_duplicate:
        Policy for repeated ``(task, worker)`` pairs; see module
        docstring.
    """

    def __init__(
        self,
        task_type: TaskType,
        n_choices: int | None = None,
        label_order: Sequence | None = None,
        on_duplicate: str = "keep",
    ) -> None:
        if on_duplicate not in _DUPLICATE_POLICIES:
            raise EngineError(
                f"on_duplicate must be one of {_DUPLICATE_POLICIES}, "
                f"got {on_duplicate!r}"
            )
        if label_order is not None and not task_type.is_categorical:
            raise InvalidAnswerSetError(
                "label_order only applies to categorical task types"
            )
        self.task_type = task_type
        self.on_duplicate = on_duplicate
        if task_type is TaskType.DECISION_MAKING and n_choices is None:
            # The choice space is inherently fixed at 2; pinning it here
            # makes a 3rd distinct label fail at ingestion instead of
            # poisoning every later snapshot of the append-only stream.
            n_choices = 2
        self._fixed_choices = n_choices
        self._fixed_labels = label_order is not None
        self._label_index: dict = {}
        if label_order is not None:
            for label in label_order:
                if label in self._label_index:
                    raise InvalidAnswerSetError(
                        f"duplicate label {label!r} in label_order"
                    )
                self._label_index[label] = len(self._label_index)
        if task_type.is_categorical:
            # Validate the fixed choice count once up front (and let
            # decision-making default to 2 even with no labels yet).
            validate_n_choices(task_type, n_choices if n_choices is not None
                               else max(len(self._label_index), 2))
            if (self._fixed_choices is not None
                    and len(self._label_index) > self._fixed_choices):
                raise InvalidAnswerSetError(
                    f"label_order has {len(self._label_index)} labels but "
                    f"n_choices is fixed at {self._fixed_choices}"
                )

        self._task_index: dict = {}
        self._worker_index: dict = {}
        self._task_labels: list[str] = []
        self._worker_labels: list[str] = []
        self._tasks: list[int] = []
        self._workers: list[int] = []
        self._values: list = []
        self._pair_slot: dict[tuple[int, int], int] = {}
        self._version = 0
        self._replacements = 0
        self._snapshot_cache: tuple[int, AnswerSet] | None = None
        # Materialised mirror of the answer lists (tasks/workers/values
        # buffers + how many entries are in sync): snapshots convert
        # only the tail appended since the previous snapshot instead of
        # re-converting the whole history.
        self._mat: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._mat_len = 0
        self._log = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_answer(self, task, worker, value) -> None:
        """Absorb a single ``(task, worker, value)`` triple.

        Delegates to :meth:`add_answers` so a rejected triple rolls back
        completely (e.g. a new label discovered by a duplicate answer
        that ``on_duplicate="error"`` then rejects).
        """
        self.add_answers([(task, worker, value)])

    def attach_log(self, log) -> None:
        """Write every *subsequent* batch through to a durable log.

        ``log`` is an :class:`~repro.store.log.AnswerLog` (anything
        with its ``append_batch`` signature works).  Acknowledgement
        becomes transactional across memory and log: a batch whose log
        commit fails is rolled back in memory too, so callers never see
        a batch that is applied in one place but not the other.
        ``attach_log(None)`` detaches (recovery replays with the log
        detached so replayed records are not re-appended).
        """
        self._log = log

    def add_answers(self, records: Iterable[tuple]) -> int:
        """Absorb a batch of triples atomically; returns the count.

        All-or-nothing: if any record is rejected (unknown label,
        duplicate under ``on_duplicate="error"``, non-finite numeric)
        the stream is rolled back to its state before the call and the
        error re-raised, so callers never observe a half-applied batch.
        With a log attached (:meth:`attach_log`), the batch is also
        written through — and durably committed — before this method
        returns; a failed commit rolls the in-memory batch back and
        re-raises, keeping memory and log in lockstep.
        """
        mark = (len(self._tasks), self._version, self._replacements,
                len(self._task_index), len(self._worker_index),
                len(self._label_index))
        overwritten: list[tuple[int, object]] = []
        log = self._log
        applied: list[tuple] | None = [] if log is not None else None
        outcomes: list[int] | None = [] if log is not None else None
        count = 0
        try:
            for task, worker, value in records:
                replaced = self._ingest(task, worker, value)
                if replaced is not None:
                    overwritten.append(replaced)
                if applied is not None:
                    applied.append((task, worker, value))
                    outcomes.append(1 if replaced is not None else 0)
                count += 1
        except Exception:
            self._rollback(mark, overwritten)
            raise
        if log is not None and count:
            try:
                log.append_batch(applied, outcomes,
                                 version=self._version,
                                 replacements=self._replacements)
            except Exception:
                self._rollback(mark, overwritten)
                raise
        return count

    def _ingest(self, task, worker, value) -> tuple[int, object] | None:
        """Apply one triple; returns ``(slot, old_value)`` on an
        in-place replacement, ``None`` on an append."""
        coded = self._encode_value(value)
        task_idx = self._task_index.get(task)
        if task_idx is None:
            task_idx = self._task_index[task] = len(self._task_index)
            self._task_labels.append(str(task))
        worker_idx = self._worker_index.get(worker)
        if worker_idx is None:
            worker_idx = self._worker_index[worker] = len(self._worker_index)
            self._worker_labels.append(str(worker))

        # The pair table only exists to detect duplicates; the default
        # "keep" policy never consults it, so skip the per-answer dict
        # cost (one tuple entry per unique pair) entirely.
        if self.on_duplicate != "keep":
            pair = (task_idx, worker_idx)
            slot = self._pair_slot.get(pair)
            if slot is not None:
                if self.on_duplicate == "error":
                    raise InvalidAnswerSetError(
                        f"duplicate answer for task {task!r} by worker "
                        f"{worker!r}"
                    )
                old = self._values[slot]
                self._values[slot] = coded
                if self._mat is not None and slot < self._mat_len:
                    self._mat[2][slot] = coded
                self._version += 1
                self._replacements += 1
                # The cached snapshot predates this in-place mutation;
                # drop it explicitly rather than relying on the version
                # key alone, so replace-after-snapshot can never serve
                # the overwritten value.
                self._snapshot_cache = None
                return (slot, old)
            self._pair_slot[pair] = len(self._tasks)
        self._tasks.append(task_idx)
        self._workers.append(worker_idx)
        self._values.append(coded)
        self._version += 1
        return None

    def _rollback(self, mark: tuple, overwritten: list) -> None:
        """Undo a partially applied batch (see :meth:`add_answers`)."""
        n_answers, version, replacements, n_tasks, n_workers, n_labels = mark
        self._mat_len = min(self._mat_len, n_answers)
        for slot, old in reversed(overwritten):
            self._values[slot] = old
            if self._mat is not None and slot < self._mat_len:
                self._mat[2][slot] = old
        for pair in [p for p, s in self._pair_slot.items() if s >= n_answers]:
            del self._pair_slot[pair]
        del self._tasks[n_answers:]
        del self._workers[n_answers:]
        del self._values[n_answers:]
        # Index dicts are insertion-ordered: drop the newest entries.
        for key in list(reversed(self._task_index))[
                : len(self._task_index) - n_tasks]:
            del self._task_index[key]
        for key in list(reversed(self._worker_index))[
                : len(self._worker_index) - n_workers]:
            del self._worker_index[key]
        for key in list(reversed(self._label_index))[
                : len(self._label_index) - n_labels]:
            del self._label_index[key]
        del self._task_labels[n_tasks:]
        del self._worker_labels[n_workers:]
        self._version = version
        self._replacements = replacements

    def _encode_value(self, value):
        if not self.task_type.is_categorical:
            value = float(value)
            if not np.isfinite(value):
                raise InvalidAnswerSetError("numeric answers must be finite")
            return value
        code = self._label_index.get(value)
        if code is None:
            if self._fixed_labels:
                raise InvalidAnswerSetError(
                    f"answer label {value!r} not in the fixed label_order "
                    f"{list(self._label_index)}"
                )
            code = len(self._label_index)
            if (self._fixed_choices is not None
                    and code >= self._fixed_choices):
                raise InvalidAnswerSetError(
                    f"label {value!r} would be choice #{code + 1} but "
                    f"n_choices is fixed at {self._fixed_choices}"
                )
            self._label_index[value] = code
        return code

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing change counter."""
        return self._version

    @property
    def replacements(self) -> int:
        """In-place overwrites so far (``on_duplicate="replace"``).

        While this counter is unchanged the stream has only *grown*
        since any earlier snapshot — the precondition warm starts rely
        on.  A bump means some previously snapshotted answer was
        contradicted in place.
        """
        return self._replacements

    @property
    def n_answers(self) -> int:
        return len(self._tasks)

    @property
    def n_tasks(self) -> int:
        return len(self._task_index)

    @property
    def n_workers(self) -> int:
        return len(self._worker_index)

    @property
    def n_choices(self) -> int:
        """The choice count a snapshot taken now would carry."""
        if not self.task_type.is_categorical:
            return 0
        if self.task_type is TaskType.DECISION_MAKING:
            return 2
        if self._fixed_choices is not None:
            return self._fixed_choices
        return max(len(self._label_index), 2)

    @property
    def labels(self) -> list:
        """Label values in code order (categorical streams)."""
        return list(self._label_index)

    def __len__(self) -> int:
        return self.n_answers

    def __repr__(self) -> str:
        return (
            f"StreamingAnswerSet(type={self.task_type.value}, "
            f"tasks={self.n_tasks}, workers={self.n_workers}, "
            f"answers={self.n_answers}, version={self._version})"
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> AnswerSet:
        """Materialise the current state as an immutable answer set.

        The task/worker/label index tables accumulated so far are reused
        directly, and the flat answer arrays are materialised
        *incrementally*: only the tail appended since the previous
        snapshot is converted from the ingestion lists, then the mirror
        buffers are copied out (a memcpy, so no snapshot can alias a
        later in-place replacement).  The result is cached until the
        next append.
        """
        if (self._snapshot_cache is not None
                and self._snapshot_cache[0] == self._version):
            return self._snapshot_cache[1]
        n = self.n_answers
        n_choices = self.n_choices if self.task_type.is_categorical else None
        if self._mat is None or len(self._mat[0]) < n:
            cap = max(n, 2 * (len(self._mat[0]) if self._mat else 0), 1024)
            vdtype = (np.int64 if self.task_type.is_categorical
                      else np.float64)
            grown = (np.empty(cap, dtype=np.int64),
                     np.empty(cap, dtype=np.int64),
                     np.empty(cap, dtype=vdtype))
            if self._mat is not None and self._mat_len:
                for new, old in zip(grown, self._mat):
                    new[:self._mat_len] = old[:self._mat_len]
            self._mat = grown
        m = self._mat_len
        if m < n:
            self._mat[0][m:n] = self._tasks[m:n]
            self._mat[1][m:n] = self._workers[m:n]
            self._mat[2][m:n] = self._values[m:n]
            self._mat_len = n
        snap = AnswerSet(
            task_indices=self._mat[0][:n].copy(),
            worker_indices=self._mat[1][:n].copy(),
            values=self._mat[2][:n].copy(),
            task_type=self.task_type,
            n_choices=n_choices,
            n_tasks=self.n_tasks,
            n_workers=self.n_workers,
            task_labels=list(self._task_labels),
            worker_labels=list(self._worker_labels),
        )
        self._snapshot_cache = (self._version, snap)
        return snap

    def decode_value(self, code):
        """Map a label code back to the external label (categorical)."""
        if not self.task_type.is_categorical:
            return code
        labels = self.labels
        code = int(code)
        if not 0 <= code < len(labels):
            raise InvalidAnswerSetError(f"unknown label code {code}")
        return labels[code]

    # ------------------------------------------------------------------
    @classmethod
    def from_answer_set(cls, answers: AnswerSet,
                        on_duplicate: str = "keep") -> "StreamingAnswerSet":
        """Seed a stream from an existing answer set.

        Label codes are preserved verbatim (``label_order`` is the code
        range), so snapshots remain value-compatible with ``answers``.
        """
        stream = cls(
            task_type=answers.task_type,
            n_choices=answers.n_choices or None,
            label_order=(list(range(answers.n_choices))
                         if answers.task_type.is_categorical else None),
            on_duplicate=on_duplicate,
        )
        task_ids = (answers.task_labels if answers.task_labels is not None
                    else list(range(answers.n_tasks)))
        worker_ids = (answers.worker_labels if answers.worker_labels is not None
                      else list(range(answers.n_workers)))
        # Register every task/worker up front so entities without answers
        # keep their index positions.
        for task in task_ids:
            stream._task_index[task] = len(stream._task_index)
            stream._task_labels.append(str(task))
        for worker in worker_ids:
            stream._worker_index[worker] = len(stream._worker_index)
            stream._worker_labels.append(str(worker))
        stream.add_answers(answers.iter_records())
        return stream
