"""Persistent shard runtime: process pools and shared memory that outlive fits.

:class:`~repro.engine.sharded.ProcessShardRunner` originally paid the
full cost of process-parallel EM on **every** ``fit()``: spawn one
single-worker pool per slot, allocate three ``/dev/shm`` segments, copy
the task-sorted answer arrays in, run EM, tear everything down.  The
workloads this repo reproduces are *repeated-fit* workloads — method
sweeps over one dataset, streaming refits over a growing answer set,
redundancy grids — so that overhead dominates once the EM itself is
warm-started and fast.  This module makes the expensive parts
persistent:

* :class:`ShardRuntime` — owns the shared-memory answer segments and
  the pinned single-worker pools *across* fits.  A fit acquires a
  :class:`RuntimeLease` (``with runtime.lease(answers, method, …) as
  runner``), which places or reuses the data and sends the workers a
  cheap per-method **spec reset message** instead of tearing the pools
  down.  A sweep of five methods or a stream of fifty refits spawns
  processes exactly once.
* **Incremental segment append** — when a lease presents answers that
  *extend* the currently placed data (same ``stream_key``, more
  answers), only the new tail is sorted and appended to the existing
  segments as a new *epoch*; workers fold the epoch into their shard
  views ("extend your shard view") instead of rebuilding from scratch.
  Segment capacity grows by doubling, so a steadily growing stream
  reallocates (and re-attaches) only O(log n) times.
* :class:`RuntimeRegistry` — a process-wide pool of runtimes keyed by
  ``(n_shards, max_workers)`` with idle-TTL eviction, so independent
  call sites (:class:`~repro.engine.sharded.ShardedInferenceEngine`,
  :class:`~repro.engine.engine.InferenceEngine`,
  :class:`~repro.engine.batch.BatchRunner`, the CLI) share warm pools
  instead of each spawning their own.

Lease / eviction contract
-------------------------
A lease grants **exclusive** use of the runtime: ``lease()`` takes an
internal lock that is released by :meth:`RuntimeLease.close` (or the
``with`` block).  Concurrent fits from different threads serialise on
the lock — each fit is internally parallel over the pools, so this is
the intended schedule, not a bottleneck.  Taking a second lease from
the thread that already holds one deadlocks; don't nest.

If a fit raises mid-EM while holding a lease, the lease's ``__exit__``
**resets** the runtime — pools are shut down (queued phases cancelled)
and segments unlinked — because in-flight worker state can no longer be
trusted.  The runtime object stays usable: the next ``lease()``
respawns lazily.  This is what makes the exception path leak-free: an
abandoned half-fit never strands ``/dev/shm`` segments or child
processes.

Runtimes obtained from a :class:`RuntimeRegistry` are closed by (a) an
explicit ``close()`` from any holder — safe, the registry re-creates on
next acquire, (b) idle-TTL eviction, checked lazily on each acquire,
and (c) the registry's ``atexit`` hook, so a interpreter never exits
with live pools.  Closing is idempotent.

When per-fit runners are still used
-----------------------------------
:class:`~repro.engine.sharded.ProcessShardRunner` remains the one-shot
spelling: it builds a *private* runtime, leases it once, and tears it
down on ``close()``.  Use it for a single large fit where nothing will
be refitted; use the registry (directly or through the engines) for
sweeps and streams.  The in-process serial/thread tiers never involve
this module.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _PoolTimeout
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

from .. import faults as _faults
from ..checks.protocol import get_verifier as _get_protocol_verifier
from ..core.answers import AnswerSet
from ..core.framework import radix_argsort
from ..exceptions import (
    EngineError,
    PhaseTimeoutError,
    ProtocolError,
    WorkerCrashError,
)
from ..core.policy import (
    ExecutionPlan,
    ExecutionPolicy,
    FaultPolicy,
    MethodSpec,
    resolve_process_workers,
)
from ..core.registry import method_class
from ..core.shards import AnswerShard, ShardedAnswerSet
from ..inference.sharded import SerialShardRunner

__all__ = [
    "SerialShardSession",
    "ShardRuntime",
    "RuntimeLease",
    "RuntimeRegistry",
    "get_runtime_registry",
]

#: Epoch count at which an extending lease compacts back to one
#: task-sorted epoch (shard views degrade into many concatenated
#: pieces; a periodic re-sort keeps them contiguous).
MAX_EPOCHS = 16

#: Default idle TTL (seconds) for registry eviction.
DEFAULT_IDLE_TTL = 300.0

#: Failures a dispatch round recovers from: the pool broke (worker
#: died, pipe torn) or the phase blew its deadline (hung worker).
#: ``concurrent.futures.TimeoutError`` is the builtin on 3.11+ but a
#: distinct class before that; catch both spellings.
_DISPATCH_FAILURES = (BrokenProcessPool, _PoolTimeout, TimeoutError)

#: Zeroed per-lease fault-event counters (the shape ``FitStats``
#: ingests via ``record_faults``).
_FAULT_EVENT_KEYS = ("respawns", "retries", "timeouts", "crashes",
                     "degraded")


def _zero_fault_events() -> dict:
    return dict.fromkeys(_FAULT_EVENT_KEYS, 0)

#: Lease-protocol verifier (None unless ``REPRO_CHECKS=1``): the
#: master-side hooks below report segment/pool/lease lifecycle events
#: to :mod:`repro.checks.protocol`.  Disabled cost is one ``is None``
#: test per event.
_VERIFIER = _get_protocol_verifier()


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
# One mutable context per worker process.  Pools are single-worker and
# process messages FIFO, so the master's sync messages (attach / layout
# / extend / configure) are always applied before the phases that
# depend on them — no worker-side locking is needed.
_WORKER_CTX: dict = {}


def _worker_detach() -> None:
    """Release every shared-memory attachment held by this worker.

    Registered ``atexit`` on first attach (the satellite fix for the
    resource-tracker ``leaked shared_memory`` warnings): numpy views
    are dropped first so ``SharedMemory.close()`` does not trip over
    exported buffers during interpreter teardown.
    """
    _WORKER_CTX.pop("spec", None)
    _WORKER_CTX.pop("spec_key", None)
    _WORKER_CTX.pop("shards", None)
    _WORKER_CTX.pop("arrays", None)
    _WORKER_CTX.pop("built_epochs", None)
    _WORKER_CTX.pop("views", None)
    segments = _WORKER_CTX.pop("segments", {})
    for shm in segments.values():
        try:
            shm.close()
        except BufferError:  # a stray view survived; the OS cleans up
            pass


def _apply_attach(seg_desc: dict) -> None:
    """(Re-)attach the answer segments named in ``seg_desc``.

    ``seg_desc`` maps field -> (shm_name, dtype_str, capacity).  Stale
    attachments (renamed segments after a capacity reallocation) are
    closed; every cached shard view is invalidated.
    """
    if "segments" not in _WORKER_CTX:
        _WORKER_CTX["segments"] = {}
        _WORKER_CTX["views"] = {}
        atexit.register(_worker_detach)
    segments = _WORKER_CTX["segments"]
    views = _WORKER_CTX["views"]
    for field, (name, dtype, capacity) in seg_desc.items():
        old = segments.get(field)
        if old is not None and old.name.lstrip("/") == name.lstrip("/"):
            continue
        if old is not None:
            views.pop(field, None)
            try:
                old.close()
            except BufferError:
                pass
        shm = shared_memory.SharedMemory(name=name)
        segments[field] = shm
        views[field] = np.ndarray((capacity,), dtype=np.dtype(dtype),
                                  buffer=shm.buf)
    _WORKER_CTX["arrays"] = {}
    _WORKER_CTX["built_epochs"] = {}
    _WORKER_CTX["shards"] = {}
    _drop_spec()


def _drop_spec() -> None:
    """Forget the retained spec (the placed arrays changed under it)."""
    _WORKER_CTX.pop("spec", None)
    _WORKER_CTX.pop("spec_key", None)


def _apply_layout(layout: dict) -> None:
    """Adopt a full (re-)placement: new epochs, cuts and sizes."""
    _WORKER_CTX["layout"] = layout
    _WORKER_CTX["arrays"] = {}
    _WORKER_CTX["built_epochs"] = {}
    _WORKER_CTX["shards"] = {}
    _drop_spec()


def _apply_extend(epoch: tuple, sizes: dict, last_stop: int) -> None:
    """Fold one appended epoch into the current layout.

    Materialised shard arrays grow incrementally (concatenate the
    shard's slice of the new epoch); shard *objects* are invalidated so
    they pick up the new global sizes and the last shard's extended
    task range.  A retained spec keeps the frozen operators of shards
    the epoch did not touch — their arrays are unchanged — and drops
    only the extended shards' (see :func:`_apply_configure`).
    """
    layout = _WORKER_CTX["layout"]
    layout["epochs"].append(epoch)
    layout["sizes"] = sizes
    layout["task_cuts"][-1] = last_stop
    layout["length"] = epoch[1]
    views = _WORKER_CTX["views"]
    arrays = _WORKER_CTX["arrays"]
    built = _WORKER_CTX["built_epochs"]
    spec = _WORKER_CTX.get("spec")
    _, _, bounds = epoch
    for k, (lo, hi) in enumerate(bounds):
        if hi > lo and spec is not None:
            spec.invalidate_shard(k)
    for k, cached in arrays.items():
        lo, hi = bounds[k]
        if hi > lo:
            arrays[k] = tuple(
                np.concatenate([cached[i], views[field][lo:hi]])
                for i, field in enumerate(("tasks", "workers", "values"))
            )
        built[k] = len(layout["epochs"])
    _WORKER_CTX["shards"] = {}


def _apply_configure(method: str, method_kwargs: dict, sizes: dict) -> None:
    """Per-fit spec reset: rebuild the method spec (and thereby its
    per-shard operator caches) without touching pools or segments.

    When the fit describes the *same* method construction over the
    *same* global sizes as the spec this worker already holds, the spec
    is **retained**: its per-shard frozen operators (and any per-shard
    caches a spec keeps) survive the fit boundary — what makes repeated
    delta refits on a fixed task/worker universe cheap.  An appended
    epoch has already dropped the operators of the shards it extended
    (:func:`_apply_extend`); a re-placement or re-attachment drops the
    spec outright (:func:`_apply_layout` / :func:`_apply_attach`), so a
    retained spec can never read stale arrays.
    """
    key = (method, sorted(method_kwargs.items()))
    spec = _WORKER_CTX.get("spec")
    if (spec is not None and _WORKER_CTX.get("spec_key") == key
            and spec.resize(sizes["n_tasks"], sizes["n_workers"],
                            sizes.get("n_choices", 0))):
        _WORKER_CTX["spec_reuses"] = _WORKER_CTX.get("spec_reuses", 0) + 1
        # Shard objects still carry the old global sizes.
        _WORKER_CTX["shards"] = {}
        return
    spec = method_class(method)(**method_kwargs).make_em_spec(**sizes)
    _WORKER_CTX["spec"] = spec
    _WORKER_CTX["spec_key"] = key
    # Sizes may have grown since the shards were last materialised.
    _WORKER_CTX["shards"] = {}


_SYNC_OPS = {
    "attach": _apply_attach,
    "layout": _apply_layout,
    "extend": _apply_extend,
    "configure": _apply_configure,
}


def _rt_sync(ops: Sequence[tuple]) -> int:
    """Apply a batch of sync operations in order; returns the worker pid
    (handy for asserting pool reuse in tests)."""
    for name, args in ops:
        _SYNC_OPS[name](*args)
    return os.getpid()


def _materialize_shard(k: int) -> AnswerShard:
    """This worker's view of shard ``k``, built lazily and kept current
    across extends."""
    shards = _WORKER_CTX["shards"]
    shard = shards.get(k)
    if shard is not None:
        return shard
    layout = _WORKER_CTX["layout"]
    views = _WORKER_CTX["views"]
    arrays = _WORKER_CTX["arrays"]
    built = _WORKER_CTX["built_epochs"]
    epochs = layout["epochs"]
    if k not in arrays or built.get(k, 0) < len(epochs):
        pieces = [[], [], []]
        for _, _, bounds in epochs:
            lo, hi = bounds[k]
            if hi > lo:
                for i, field in enumerate(("tasks", "workers", "values")):
                    pieces[i].append(views[field][lo:hi])
        fields = []
        for i, field in enumerate(("tasks", "workers", "values")):
            if not pieces[i]:
                fields.append(views[field][0:0])
            elif len(pieces[i]) == 1:
                fields.append(pieces[i][0])  # zero-copy slice
            else:
                fields.append(np.concatenate(pieces[i]))
        arrays[k] = tuple(fields)
        built[k] = len(epochs)
    tasks, workers, values = arrays[k]
    cuts = layout["task_cuts"]
    sizes = layout["sizes"]
    shard = AnswerShard(
        tasks=tasks, workers=workers, values=values,
        task_start=cuts[k], task_stop=cuts[k + 1],
        n_tasks=sizes["n_tasks"], n_workers=sizes["n_workers"],
        n_choices=sizes["n_choices"], index=k,
    )
    shards[k] = shard
    return shard


def _rt_phase(k: int, phase: str, args: tuple):
    spec = _WORKER_CTX["spec"]
    shard = _materialize_shard(k)
    return getattr(spec, phase)(shard, spec.shard_ops(shard), *args)


def _rt_replay(items: Sequence[tuple]) -> int:
    """Re-run a respawned worker's phase history — ``(shard, phase,
    args)`` triples in original dispatch order — to rebuild the mutable
    per-shard ``ops`` of a stateful spec (phases are deterministic, so
    the replayed state is bit-identical).  Results are discarded; only
    the ``ops`` mutations matter."""
    for k, phase, args in items:
        _rt_phase(k, phase, args)
    return os.getpid()


def _rt_sleep(seconds: float) -> int:
    """Occupy this FIFO worker for ``seconds`` before its next phase.

    The ``delay`` fault: queued ahead of a phase submit, it stalls the
    single-worker pool so the phase reply arrives late — past the
    :class:`~repro.core.policy.FaultPolicy` deadline if the injected
    delay is long enough.  Fault-injection only; never on a hot path.
    """
    time.sleep(seconds)
    return os.getpid()


def _rt_probe() -> dict:
    """Worker-side introspection for tests: what survived the last
    configure (submit via a runtime's pools)."""
    spec = _WORKER_CTX.get("spec")
    return {
        "pid": os.getpid(),
        "spec_reuses": _WORKER_CTX.get("spec_reuses", 0),
        "cached_ops": sorted(spec._ops) if spec is not None else [],
    }


# ----------------------------------------------------------------------
# In-process tier: the serial/thread analogue of worker retention
# ----------------------------------------------------------------------
class SerialShardSession:
    """Warm in-process shard layout + spec caches for delta refits.

    What :class:`ShardRuntime` keeps warm in worker processes, this
    keeps warm in the calling process for the serial/thread tiers: the
    task-sorted per-shard answer arrays and each method's
    :class:`~repro.inference.sharded.ShardedEMSpec` (with its per-shard
    frozen operators).  A refit on a grown stream sorts and slices only
    the new answer tail, concatenates it onto the shards it touches,
    and drops exactly those shards' cached operators — so a delta
    refit's per-fit setup cost scales with the delta, like its EM.

    Shard cuts are **pinned** between placements (the alignment delta
    refits require); the session re-places — recomputing balanced cuts
    and invalidating every cached spec — once the stream has doubled
    or accumulated :data:`MAX_EPOCHS` extensions, mirroring
    :class:`ShardRuntime`'s rebalance rule.  The per-shard arrays an
    extension produces are element-for-element the arrays a fresh
    stable task-sort would produce (prefix instances of a task precede
    tail instances in both), so session-backed fits match fresh-runner
    fits bit-for-bit at equal cuts.

    With a :class:`~repro.store.spill.ShardSpill` attached, shards
    that sat untouched past the spill TTL swap their resident arrays
    for memory-mapped copies (:meth:`spill_idle`) and page back in on
    demand; an extension re-materialises the shards it touches.
    """

    def __init__(self, n_shards: int, *, spill=None) -> None:
        if n_shards < 1:
            raise EngineError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self._arrays: list[tuple] | None = None
        self._cuts: list[int] | None = None
        self._sizes: tuple[int, int, int] | None = None
        self._length = 0
        self._base_length = 0
        self._epochs = 0
        self._answers_ref: weakref.ref | None = None
        self._stream_key = None
        self._prefix_mark: tuple[int, int, int] = (0, -1, -1)
        #: (method-spec, sizes) -> retained EM spec, per method name.
        self._specs: dict[str, tuple] = {}
        self._spill = spill
        self._spill_tag = f"s{self.n_shards}"
        self._spilled: set[int] = set()
        self._touched: list[float] = []
        # Instrumentation mirroring ShardRuntime's counters.
        self.placements = 0
        self.extends = 0
        self.reuses = 0
        self.spec_reuses = 0
        self.last_placement: str | None = None

    # -- data placement ------------------------------------------------
    def _sizes_of(self, answers: AnswerSet) -> tuple[int, int, int]:
        return (answers.n_tasks, answers.n_workers, answers.n_choices)

    def _remember_prefix(self, answers: AnswerSet) -> None:
        n = answers.n_answers
        self._prefix_mark = ((n, int(answers.tasks[0]),
                              int(answers.tasks[n - 1])) if n
                             else (0, -1, -1))

    def _adopt_arrays(self, sharded: ShardedAnswerSet,
                      answers: AnswerSet) -> None:
        self._arrays = [(s.tasks, s.workers, s.values)
                        for s in sharded.shards]
        self._cuts = [sharded.shards[0].task_start] + [
            s.task_stop for s in sharded.shards]
        self._sizes = self._sizes_of(answers)
        self._length = answers.n_answers
        self._specs.clear()
        self._remember_prefix(answers)
        self._unspill_all()
        self._touched = [time.monotonic()] * len(self._arrays)

    def _place(self, answers: AnswerSet) -> None:
        self._adopt_arrays(ShardedAnswerSet(answers, self.n_shards),
                           answers)
        self._base_length = answers.n_answers
        self._epochs = 0
        self.placements += 1
        self.last_placement = "place"

    def adopt(self, answers: AnswerSet, state, *,
              stream_key=None) -> None:
        """Seed the warm layout from a persisted
        :class:`~repro.inference.sharded.ShardState` (recovery path).

        Re-sorts the full replayed arrays once under the state's
        *pinned* cuts — a stable task-sort of arrival order is unique,
        so the resulting per-shard arrays are element-for-element what
        the uninterrupted session held — and carries the state's
        ``base_answers`` forward so the doubling/rebalance rule keeps
        counting from the original placement.  After adopting, the
        first refit over a matching cached fit is a true *delta* refit
        (the cuts align), not a cold or full one.
        """
        cuts = state.extended_cuts(answers.n_tasks)
        if len(cuts) - 1 != self.n_shards:
            raise EngineError(
                f"cannot adopt a {len(cuts) - 1}-shard state into a "
                f"{self.n_shards}-shard session"
            )
        self._adopt_arrays(
            ShardedAnswerSet(answers, self.n_shards, task_cuts=cuts),
            answers)
        self._base_length = max(int(state.base_answers), 1)
        self._epochs = 1
        self._stream_key = stream_key
        self._answers_ref = weakref.ref(answers)
        self.placements += 1
        self.last_placement = "adopt"

    def _extend(self, answers: AnswerSet) -> None:
        old, new = self._length, answers.n_answers
        mark_len, first_task, last_task = self._prefix_mark
        if mark_len and (int(answers.tasks[0]) != first_task
                         or int(answers.tasks[mark_len - 1]) != last_task):
            raise ProtocolError(
                "stream_key reused but the previously placed answers "
                "changed; extension requires append-only growth"
            )
        tail_tasks = answers.tasks[old:]
        tail_workers = answers.workers[old:]
        tail_values = answers.values[old:]
        if answers.task_type.is_categorical:
            tail_values = tail_values.astype(np.int64, copy=False)
        cuts = self._cuts
        cuts[-1] = answers.n_tasks
        if len(cuts) > 2:
            order = radix_argsort(tail_tasks)
            tail_tasks = tail_tasks[order]
            tail_workers = tail_workers[order]
            tail_values = tail_values[order]
            pos = np.searchsorted(tail_tasks, cuts, side="left")
        else:
            pos = np.array([0, len(tail_tasks)])
        for k in range(len(cuts) - 1):
            lo, hi = int(pos[k]), int(pos[k + 1])
            if hi <= lo:
                continue
            t, w, v = self._arrays[k]
            self._arrays[k] = (
                np.concatenate([t, tail_tasks[lo:hi]]),
                np.concatenate([w, tail_workers[lo:hi]]),
                np.concatenate([v, tail_values[lo:hi]]),
            )
            for _, spec in self._specs.values():
                spec.invalidate_shard(k)
            # A shard receiving answers is hot again: the concatenation
            # above already re-materialised it in RAM, so drop its
            # spill files and refresh its touch time.
            self._unspill(k)
            self._touched[k] = time.monotonic()
        self._sizes = self._sizes_of(answers)
        self._length = new
        self._epochs += 1
        self._remember_prefix(answers)
        self.extends += 1
        self.last_placement = "extend"

    def _refresh(self, answers: AnswerSet, stream_key) -> None:
        """Place / extend / reuse, mirroring :meth:`ShardRuntime._place`."""
        placed = self._answers_ref() if self._answers_ref else None
        if self._arrays is not None and answers is placed:
            self.reuses += 1
            self.last_placement = "reuse"
            return
        if (self._arrays is not None
                and stream_key is not None
                and stream_key == self._stream_key
                and answers.n_answers >= self._length
                and self._sizes is not None
                and all(now >= then for now, then in
                        zip(self._sizes_of(answers), self._sizes))
                and self._epochs < MAX_EPOCHS
                and answers.n_answers <= 2 * max(self._base_length, 1)):
            if answers.n_answers == self._length:
                self._answers_ref = weakref.ref(answers)
                self.reuses += 1
                self.last_placement = "reuse"
                return
            self._extend(answers)
        else:
            self._place(answers)
        self._stream_key = stream_key
        self._answers_ref = weakref.ref(answers)

    # -- runners ---------------------------------------------------------
    def _spec_for(self, instance, answers: AnswerSet):
        """The method's EM spec, retained across fits while the method
        construction is unchanged and the spec accepts the (possibly
        grown) global sizes via :meth:`ShardedEMSpec.resize` — per-shard
        operators survive; extensions invalidated the touched shards'."""
        method_spec = instance.method_spec
        entry = self._specs.get(instance.name)
        if (entry is not None and method_spec is not None
                and entry[0] == method_spec
                and entry[1].resize(answers.n_tasks, answers.n_workers,
                                    answers.n_choices)):
            self.spec_reuses += 1
            return entry[1]
        spec = instance.make_em_spec(
            n_tasks=answers.n_tasks, n_workers=answers.n_workers,
            n_choices=answers.n_choices)
        if method_spec is not None:
            self._specs[instance.name] = (method_spec, spec)
        return spec

    def runner(self, answers: AnswerSet, instance, *, stream_key=None,
               pool=None) -> SerialShardRunner:
        """A :class:`~repro.inference.sharded.SerialShardRunner` over
        the warm layout (placed, extended or reused for ``answers``)."""
        self._refresh(answers, stream_key)
        cuts = self._cuts
        shards = []
        for k in range(len(cuts) - 1):
            t, w, v = self._arrays[k]
            shards.append(AnswerShard(
                tasks=t, workers=w, values=v,
                task_start=cuts[k], task_stop=cuts[k + 1],
                n_tasks=answers.n_tasks, n_workers=answers.n_workers,
                n_choices=answers.n_choices, index=k,
            ))
        return SerialShardRunner(self._spec_for(instance, answers),
                                 shards, pool=pool)

    # -- cold-shard spill ----------------------------------------------
    @property
    def spilled(self) -> set[int]:
        """Indices of shards currently backed by spill files."""
        return set(self._spilled)

    def _unspill(self, k: int) -> None:
        if k in self._spilled:
            self._spilled.discard(k)
            if self._spill is not None:
                self._spill.discard(self._spill_tag, k)

    def _unspill_all(self) -> None:
        for k in list(self._spilled):
            self._unspill(k)

    def spill_idle(self, *, now: float | None = None,
                   ttl: float | None = None) -> int:
        """Spill shards untouched for ``ttl`` seconds; returns how many.

        A spilled shard's arrays become read-only memory-maps of the
        same bytes — every existing :class:`AnswerShard` view and the
        next :meth:`runner` read them transparently, paged in on
        demand.  No-op without an attached
        :class:`~repro.store.spill.ShardSpill`.
        """
        if self._spill is None or self._arrays is None:
            return 0
        now = time.monotonic() if now is None else now
        ttl = self._spill.ttl if ttl is None else ttl
        count = 0
        for k, arrays in enumerate(self._arrays):
            if k in self._spilled or now - self._touched[k] < ttl:
                continue
            self._arrays[k] = self._spill.spill(self._spill_tag, k,
                                                arrays)
            self._spilled.add(k)
            count += 1
        return count


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
_FIELDS = ("tasks", "workers", "values")


class _Segment:
    """One master-owned shared-memory block with element capacity."""

    __slots__ = ("shm", "dtype", "capacity", "view")

    def __init__(self, dtype: np.dtype, capacity: int) -> None:
        capacity = max(int(capacity), 1)
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(capacity * dtype.itemsize, 1))
        self.dtype = dtype
        self.capacity = capacity
        self.view = np.ndarray((capacity,), dtype=dtype, buffer=self.shm.buf)
        if _VERIFIER is not None:
            _VERIFIER.segment_created(self.shm.name)

    @property
    def name(self) -> str:
        return self.shm.name

    def release(self) -> None:
        if _VERIFIER is not None:
            _VERIFIER.segment_released(self.shm.name)
        self.view = None
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass


class RuntimeLease(SerialShardRunner):
    """Exclusive, short-lived handle on a :class:`ShardRuntime` for one
    fit — the object methods receive as ``shard_runner``.

    Exposes the :class:`~repro.inference.sharded.SerialShardRunner`
    surface (``spec`` / ``call`` / ``m_step`` / ``task_ranges``) but
    dispatches phases to the runtime's persistent pools.  ``close()``
    releases the runtime for the next fit; exiting the ``with`` block
    on an exception additionally resets the runtime (see module
    docstring).
    """

    def __init__(self, runtime: "ShardRuntime", spec,
                 task_ranges: Sequence[tuple[int, int]],
                 fault_events: dict | None = None) -> None:
        super().__init__(spec, shards=())
        self._runtime = runtime
        self._ranges = [tuple(r) for r in task_ranges]
        self._released = False
        self._dispatched = False
        #: Per-lease fault-recovery counters (respawns/retries/timeouts/
        #: crashes/degraded), folded into ``FitStats`` by the drivers.
        self.fault_events = (fault_events if fault_events is not None
                             else _zero_fault_events())

    # The lease has no master-side shard views; everything that
    # SerialShardRunner derives from ``shards`` is overridden here.
    @property
    def n_shards(self) -> int:  # type: ignore[override]
        return len(self._ranges)

    @property
    def task_ranges(self) -> list[tuple[int, int]]:  # type: ignore[override]
        return list(self._ranges)

    def call(self, phase: str, per_shard=None, shared: tuple = (),
             only=None) -> list:
        if self._released:
            raise ProtocolError("lease already closed")
        if _VERIFIER is not None:
            _VERIFIER.lease_dispatch(id(self._runtime), id(self))
        self._dispatched = True
        return self._runtime._dispatch(self.n_shards, phase, per_shard,
                                       shared, only, spec=self.spec,
                                       events=self.fault_events,
                                       lease_key=id(self))

    def close(self) -> None:
        """Release the runtime for the next lease (idempotent)."""
        if self._released:
            return
        self._released = True
        self._runtime._release_lease()

    def __enter__(self) -> "RuntimeLease":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is not None and not self._released and self._dispatched:
            # In-flight worker state is suspect after a mid-fit
            # exception: tear pools and segments down before releasing
            # so nothing leaks.  The runtime respawns on next lease.
            # Exceptions raised *before* any phase was dispatched
            # (master-side validation, a bad warm-start shape) never
            # touched the workers, so the warm state survives them.
            self._runtime._reset()
        self.close()


class ShardRuntime:
    """Shared-memory segments + pinned worker pools reused across fits.

    Parameters
    ----------
    n_shards:
        Upper bound on task-range shards per fit (clamped per dataset
        to its task count by the shard layer).
    max_workers:
        Pool slots; defaults to ``min(n_shards, cpu_count)``.  Shard
        ``k`` is pinned to pool ``k % max_workers`` so per-shard
        worker-side state (operator caches, GLAD's match cache) stays
        in one process.

    Use :meth:`lease` per fit; see the module docstring for the
    contract.  Instrumentation counters (``pool_spawns``,
    ``placements``, ``extends``, ``reuses``) are monotonically
    increasing and exist for tests and benchmarks.
    """

    @staticmethod
    def resolve_max_workers(n_shards: int,
                            max_workers: int | None = None) -> int:
        """The pool-slot count a runtime built with these arguments
        uses (delegates to the policy layer's single formula, which the
        registry cache key also uses, so ``max_workers=None`` and its
        resolved value are the same configuration)."""
        return resolve_process_workers(n_shards, max_workers)

    def __init__(self, n_shards: int = 4,
                 max_workers: int | None = None) -> None:
        if n_shards < 1:
            raise EngineError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.max_workers = self.resolve_max_workers(n_shards, max_workers)
        self._lock = threading.Lock()
        self._pools: list[ProcessPoolExecutor] = []
        self._segments: dict[str, _Segment] = {}
        self._layout: dict | None = None
        # Weak: pinning the caller's full dataset for the idle TTL
        # would double its resident footprint; a dead referent merely
        # disables same-object reuse (and, being weak, can never alias
        # a new object the way a recycled id() could).
        self._answers_ref: weakref.ref | None = None
        self._stream_key = None
        self._prefix_mark: tuple[int, int, int] = (0, -1, -1)
        self._closed = False
        self.last_used = time.monotonic()
        # Fault tolerance: recovery policy (overridable per lease), the
        # armed injection plan, the spec-configure ledger entry replayed
        # into respawned workers, and the pool slots degraded to the
        # master's serial path for the rest of the current lease.
        self._fault_policy = FaultPolicy()
        self._fault_plan = None
        self._configure: tuple | None = None
        self._degraded_slots: set[int] = set()
        # Stateful specs (KOS) mutate their per-shard ``ops`` across
        # phases, so the configure replay alone cannot revive a worker
        # mid-fit; the per-shard phase log below is replayed on top.
        self._stateful_spec = False
        self._phase_log: dict[int, list] = {}
        self._master_replayed: set[int] = set()
        # Instrumentation (see class docstring).
        self.pool_spawns = 0
        self.placements = 0
        self.extends = 0
        self.reuses = 0
        self.respawns = 0
        self.degraded_phases = 0
        #: Data path taken by the most recent lease:
        #: "place" / "extend" / "reuse".
        self.last_placement: str | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> list[str]:
        """Names of the live shared-memory segments (for tests)."""
        return [seg.name for seg in self._segments.values()]

    def close(self) -> None:
        """Shut pools down and unlink segments.

        Idempotent: teardown runs exactly once no matter how many of
        explicit ``close()``, registry eviction and the atexit hook
        reach this runtime.
        """
        with self._lock:
            if self._closed:
                return
            self._teardown()
            self._closed = True

    def _reset(self) -> None:
        """Tear down pools and segments but stay open for future leases.

        Called with the lease lock *held* (from the lease's exception
        path), so it must not re-acquire it.
        """
        self._teardown()

    def close_at_exit(self) -> None:
        """Best-effort close for interpreter shutdown.

        A lease held when the interpreter exits will never be released
        — the lease holder *is* the exiting main thread — so blocking
        on the lease lock the way :meth:`close` does would deadlock the
        shutdown.  Steal the teardown instead: non-daemon threads are
        already joined and ``concurrent.futures``' own exit hook (which
        runs *before* atexit hooks, via ``threading._register_atexit``)
        has already wound down executor plumbing, so no phase can be
        in flight on this runtime.  Tearing down here — pools first,
        segments after — keeps the worker-side SharedMemory finalizers
        ahead of the master-side unlink, exactly like a normal close,
        so a shutdown-while-leased exits warning-free.
        """
        locked = self._lock.acquire(blocking=False)
        try:
            if not self._closed:
                self._teardown()
                self._closed = True
        finally:
            if locked:
                self._lock.release()

    def _teardown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
            if _VERIFIER is not None:
                _VERIFIER.pool_shutdown(id(pool))
        self._pools = []
        for seg in self._segments.values():
            seg.release()
        self._segments = {}
        self._layout = None
        self._answers_ref = None
        self._stream_key = None
        self._prefix_mark = (0, -1, -1)
        self._configure = None
        self._degraded_slots = set()
        self._stateful_spec = False
        self._phase_log = {}
        self._master_replayed = set()

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardRuntime(n_shards={self.n_shards}, "
                f"max_workers={self.max_workers}, "
                f"closed={self._closed})")

    # -- leasing -------------------------------------------------------
    def lease(self, answers: AnswerSet, method: str | MethodSpec,
              method_kwargs: Mapping | None = None, *,
              stream_key=None, fault_policy: FaultPolicy | None = None,
              faults=None) -> RuntimeLease:
        """Acquire exclusive use of the runtime for one fit.

        Parameters
        ----------
        answers:
            The answer set to fit on.  If it is the *same object* as
            the previous lease's, the placed segments are reused as-is;
            if ``stream_key`` matches the previous lease's and the
            answer count grew, only the new tail is appended (see
            module docstring); otherwise the data is placed afresh
            (reusing segment capacity when possible).
        method, method_kwargs:
            A :class:`~repro.core.policy.MethodSpec` — or a registry
            name plus construction kwargs — sent to the workers as the
            per-fit spec reset, and used for the master-side spec.
            Describe the *same* construction you fit with (seed
            included) so master and worker specs cannot diverge.
        stream_key:
            Hashable identity of the *stream* behind ``answers``.
            Passing the same key again asserts the new answers extend
            the previously placed ones element-for-element (append-only
            growth).  Callers must change the key when that stops being
            true (e.g. bump it with the stream's replacement counter).
        fault_policy:
            Recovery knobs (:class:`~repro.core.policy.FaultPolicy`)
            this and subsequent leases dispatch under; ``None`` keeps
            the runtime's current policy (the defaults, initially).
        faults:
            A :class:`repro.faults.FaultPlan` armed for this lease's
            dispatches (chaos tests); ``None`` falls back to the
            process-wide ``REPRO_FAULTS`` plan, if any.
        """
        spec = MethodSpec.coerce(method, method_kwargs)
        method, method_kwargs = spec.name, spec.kwargs
        instance = method_class(method)(**method_kwargs)
        if not instance.supports_sharding:
            raise EngineError(f"{method} does not support sharded EM")
        self._lock.acquire()
        if _VERIFIER is not None:
            _VERIFIER.lock_acquired("runtime", id(self))
        try:
            # Checked under the lock: a close() racing ahead of this
            # lease must not be followed by a silent pool respawn on a
            # runtime nothing will ever tear down again.
            if self._closed:
                raise ProtocolError("runtime is closed")
            if fault_policy is not None:
                self._fault_policy = fault_policy
            self._fault_plan = faults
            self._degraded_slots = set()
            self._phase_log = {}
            self._master_replayed = set()
            events = _zero_fault_events()
            self._ensure_pools()
            ops = self._place(answers, stream_key)
            layout = self._layout
            sizes = dict(layout["sizes"])
            configure = (method, dict(method_kwargs or {}), sizes)
            ops.append(("configure", configure))
            # Ledger entry first: a worker respawned *during* this sync
            # replays the attach/layout derived from the live layout
            # plus this configure, which together subsume ``ops``.
            self._configure = configure
            self._sync(ops, events=events)
            spec = instance.make_em_spec(**sizes)
            self._stateful_spec = bool(getattr(spec, "stateful_ops",
                                               False))
            cuts = layout["task_cuts"]
            ranges = list(zip(cuts[:-1], cuts[1:]))
            self.last_used = time.monotonic()
            lease = RuntimeLease(self, spec, ranges, fault_events=events)
            if _VERIFIER is not None:
                _VERIFIER.lease_acquired(id(self), id(lease))
            return lease
        except BaseException:
            self._teardown()
            if _VERIFIER is not None:
                _VERIFIER.lock_released("runtime", id(self))
            self._lock.release()
            raise

    def _release_lease(self) -> None:
        if _VERIFIER is not None:
            _VERIFIER.lease_released(id(self))
            _VERIFIER.lock_released("runtime", id(self))
        self.last_used = time.monotonic()
        self._lock.release()

    # -- pools ---------------------------------------------------------
    def _ensure_pools(self) -> None:
        if not self._pools:
            self._pools = [ProcessPoolExecutor(max_workers=1)
                           for _ in range(self.max_workers)]
            self.pool_spawns += 1
            if _VERIFIER is not None:
                for pool in self._pools:
                    _VERIFIER.pool_spawned(id(pool))

    # -- fault recovery ------------------------------------------------
    def _wait(self, future):
        """Deadline-bounded future wait (the no-unbounded-hangs rule)."""
        deadline = self._fault_policy.deadline
        if deadline is None:
            return future.result()
        return future.result(timeout=deadline)

    @staticmethod
    def _kill_pool_workers(pool) -> None:
        """SIGKILL a pool's worker processes (dead or hung; a stuck
        worker cannot be joined, only killed)."""
        for pid in list(getattr(pool, "_processes", None) or {}):
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def _replay_ops(self) -> list:
        """The message ledger a respawned worker replays: re-attach the
        still-live segments, adopt the master's authoritative layout
        (which subsumes every epoch-extend sent so far), and re-apply
        the latest spec-configure."""
        ops: list = [("attach", (self._seg_desc(),)),
                     ("layout", (self._copy_layout(),))]
        if self._configure is not None:
            ops.append(("configure", self._configure))
        return ops

    def _respawn_slot(self, slot: int, events: dict) -> bool:
        """Replace a dead/hung pool with a fresh one and replay the
        message ledger into it.  Returns False when the replay itself
        failed (the caller's next round fails fast and retries or
        degrades)."""
        old = self._pools[slot]
        self._kill_pool_workers(old)
        old.shutdown(wait=True, cancel_futures=True)
        fresh = ProcessPoolExecutor(max_workers=1)
        self._pools[slot] = fresh
        self.respawns += 1
        events["respawns"] += 1
        if _VERIFIER is not None:
            _VERIFIER.pool_respawned(id(old), id(fresh))
        try:
            self._wait(fresh.submit(_rt_sync, self._replay_ops()))
            if self._stateful_spec:
                items = [(k, phase, args)
                         for k in sorted(self._phase_log)
                         if k % self.max_workers == slot
                         for phase, args in self._phase_log[k]]
                if items:
                    self._wait(fresh.submit(_rt_replay, items))
        except _DISPATCH_FAILURES:
            return False
        return True

    def _master_shard(self, k: int) -> AnswerShard:
        """The master-side view of shard ``k`` over the live segments.

        Builds exactly what the worker's ``_materialize_shard`` builds
        — the same epoch slices of the same shared bytes, concatenated
        in the same order — so a phase degraded to the master is
        bit-identical to its worker execution for deterministic phases.
        """
        layout = self._layout
        pieces: list[list] = [[], [], []]
        for _, _, bounds in layout["epochs"]:
            lo, hi = bounds[k]
            if hi > lo:
                for i, field in enumerate(_FIELDS):
                    pieces[i].append(self._segments[field].view[lo:hi])
        fields = []
        for i, field in enumerate(_FIELDS):
            if not pieces[i]:
                fields.append(self._segments[field].view[0:0])
            elif len(pieces[i]) == 1:
                fields.append(pieces[i][0])
            else:
                fields.append(np.concatenate(pieces[i]))
        cuts = layout["task_cuts"]
        sizes = layout["sizes"]
        return AnswerShard(
            tasks=fields[0], workers=fields[1], values=fields[2],
            task_start=cuts[k], task_stop=cuts[k + 1],
            n_tasks=sizes["n_tasks"], n_workers=sizes["n_workers"],
            n_choices=sizes["n_choices"], index=k,
        )

    def _run_degraded(self, spec, k: int, phase: str, args: tuple,
                      events: dict, lease_key) -> object:
        """Execute shard ``k``'s phase in-process via the serial spec
        path (graceful degradation after the retry budget)."""
        if spec is None:
            raise WorkerCrashError(
                f"shard {k} lost its worker and no master spec is "
                f"available to degrade to")
        if _VERIFIER is not None and lease_key is not None:
            _VERIFIER.phase_degraded(id(self), lease_key, k)
        events["degraded"] += 1
        self.degraded_phases += 1
        shard = self._master_shard(k)
        ops = spec.shard_ops(shard)
        if self._stateful_spec and k not in self._master_replayed:
            # First degraded phase for this shard: rebuild the mutable
            # ops from the phase log (the master-side twin of the
            # worker replay in _respawn_slot).
            for past_phase, past_args in self._phase_log.get(k, ()):
                getattr(spec, past_phase)(shard, ops, *past_args)
            self._master_replayed.add(k)
        return getattr(spec, phase)(shard, ops, *args)

    # -- messaging -----------------------------------------------------
    def _sync(self, ops: list, events: dict | None = None) -> list:
        """Broadcast sync operations to every pool and wait.

        Self-healing: a pool that broke or hung is killed, respawned
        and replayed (the ledger replay subsumes ``ops``); a pool whose
        replay fails too raises :class:`WorkerCrashError`.
        """
        if events is None:
            events = _zero_fault_events()
        futures: list = []
        for pool in self._pools:
            try:
                futures.append(pool.submit(_rt_sync, ops))
            except BrokenProcessPool:
                futures.append(None)
        results = []
        for slot, future in enumerate(futures):
            try:
                if future is None:
                    raise BrokenProcessPool("pool broke before sync")
                results.append(self._wait(future))
            except _DISPATCH_FAILURES:
                events["crashes"] += 1
                if not self._respawn_slot(slot, events):
                    raise WorkerCrashError(
                        f"worker pool slot {slot} could not be revived "
                        f"for sync (died again during ledger replay)")
                results.append(None)
        return results

    def _dispatch_round(self, indices: list, phase: str, args_of: dict,
                        results: dict, plan, events: dict) -> list:
        """One submit-and-collect pass; returns the failed shards.

        The armed fault plan (if any) is consulted per dispatch —
        ``kill`` SIGKILLs the worker just before the submit, ``delay``
        queues a stall ahead of the phase on the FIFO pool.
        """
        futures: dict = {}
        failed: list[int] = []
        for k in indices:
            pool = self._pools[k % self.max_workers]
            if plan is not None:
                action = plan.on_dispatch(k, phase)
                if action is not None and action[0] == "kill":
                    self._kill_pool_workers(pool)
                elif action is not None:
                    try:
                        pool.submit(_rt_sleep, action[1])
                    except BrokenProcessPool:
                        pass
            try:
                futures[k] = pool.submit(_rt_phase, k, phase, args_of[k])
            except BrokenProcessPool:
                events["crashes"] += 1
                failed.append(k)
        for k, future in futures.items():
            try:
                results[k] = self._wait(future)
                if self._stateful_spec:
                    # Acknowledged phases mutated this shard's worker
                    # ops; a later respawn must replay them.
                    self._phase_log.setdefault(k, []).append(
                        (phase, args_of[k]))
            except BrokenProcessPool:
                events["crashes"] += 1
                failed.append(k)
            except (_PoolTimeout, TimeoutError):
                events["timeouts"] += 1
                failed.append(k)
        return failed

    def _dispatch(self, n_shards: int, phase: str, per_shard,
                  shared: tuple, only=None, *, spec=None,
                  events: dict | None = None, lease_key=None) -> list:
        """Submit one phase per shard; with ``only``, the listed shards
        get the only messages sent — a skipped (clean or frozen) shard
        costs no payload and no worker wake-up at all.

        Self-healing: future waits are deadline-bounded, a broken or
        hung pool is respawned (replaying the message ledger over the
        still-live segments) and only the failed shards' phases are
        re-dispatched, with capped-backoff retries between attempts.
        Once the retry budget is spent the orphaned shards degrade to
        the master's serial spec path — for the rest of the lease —
        or the failure is raised, per the :class:`FaultPolicy`.
        """
        indices = (list(only) if only is not None
                   else list(range(n_shards)))
        if events is None:
            events = _zero_fault_events()
        args_of: dict[int, tuple] = {}
        for pos, k in enumerate(indices):
            args: tuple = ()
            if per_shard is not None:
                entry = per_shard[pos]
                args = entry if isinstance(entry, tuple) else (entry,)
            args_of[k] = args + shared
        policy = self._fault_policy
        plan = (self._fault_plan if self._fault_plan is not None
                else _faults.get_plan())
        results: dict[int, object] = {}
        pending = []
        for k in indices:
            if k % self.max_workers in self._degraded_slots:
                results[k] = self._run_degraded(spec, k, phase,
                                                args_of[k], events,
                                                lease_key)
            else:
                pending.append(k)
        backoff = _faults.Backoff(policy.backoff_base, policy.backoff_cap)
        attempt = 0
        while pending:
            failed = self._dispatch_round(pending, phase, args_of,
                                          results, plan, events)
            if not failed:
                break
            if attempt >= policy.retries:
                if not policy.degrade:
                    if events["timeouts"]:
                        raise PhaseTimeoutError(
                            f"phase {phase!r} timed out on shards "
                            f"{failed} after {policy.retries} retries "
                            f"(deadline {policy.deadline}s; degrade "
                            f"disabled)")
                    raise WorkerCrashError(
                        f"phase {phase!r} lost its workers on shards "
                        f"{failed} after {policy.retries} retries "
                        f"(degrade disabled)")
                for k in failed:
                    slot = k % self.max_workers
                    if slot not in self._degraded_slots:
                        self._degraded_slots.add(slot)
                        # Leave a sane (respawned, replayed) pool behind
                        # for the next lease; this one is done with it.
                        self._respawn_slot(slot, events)
                    results[k] = self._run_degraded(spec, k, phase,
                                                    args_of[k], events,
                                                    lease_key)
                break
            attempt += 1
            events["retries"] += len(failed)
            if _VERIFIER is not None and lease_key is not None:
                _VERIFIER.phase_retry(id(self), lease_key)
            for slot in sorted({k % self.max_workers for k in failed}):
                self._respawn_slot(slot, events)
            backoff.sleep(attempt - 1)
            pending = failed
        return [results[k] for k in indices]

    # -- data placement ------------------------------------------------
    def _values_dtype(self, answers: AnswerSet) -> np.dtype:
        return np.dtype(np.int64 if answers.task_type.is_categorical
                        else np.float64)

    def _place(self, answers: AnswerSet, stream_key) -> list:
        """Decide reuse / extend / full placement; returns sync ops."""
        layout = self._layout
        placed = self._answers_ref() if self._answers_ref else None
        if layout is not None and answers is placed:
            self.reuses += 1
            self.last_placement = "reuse"
            return []
        if (layout is not None
                and stream_key is not None
                and stream_key == self._stream_key
                and answers.n_answers >= layout["length"]
                and answers.n_tasks >= layout["sizes"]["n_tasks"]
                and answers.n_workers >= layout["sizes"]["n_workers"]
                and answers.n_choices >= layout["sizes"]["n_choices"]
                and self._values_dtype(answers)
                == self._segments["values"].dtype
                and len(layout["epochs"]) < MAX_EPOCHS
                # Task cuts are frozen while extending, so growth piles
                # into the last shard; once the data has doubled since
                # the last full sort, re-place to rebalance.
                and answers.n_answers <= 2 * max(layout["placed_length"], 1)):
            if answers.n_answers == layout["length"]:
                self._answers_ref = weakref.ref(answers)
                self.reuses += 1
                self.last_placement = "reuse"
                return []
            ops = self._extend(answers)
            self._stream_key = stream_key
            self._answers_ref = weakref.ref(answers)
            self.extends += 1
            self.last_placement = "extend"
            return ops
        ops = self._place_full(answers)
        self._stream_key = stream_key
        self._answers_ref = weakref.ref(answers)
        self.placements += 1
        self.last_placement = "place"
        return ops

    def _sizes(self, answers: AnswerSet) -> dict:
        return {"n_tasks": answers.n_tasks, "n_workers": answers.n_workers,
                "n_choices": answers.n_choices}

    def _ensure_capacity(self, length: int, values_dtype: np.dtype,
                         preserve: int = 0) -> bool:
        """Grow segments (by at least doubling) to hold ``length``
        elements, keeping the first ``preserve`` elements' contents.
        Returns True when any segment was reallocated (workers must
        re-attach)."""
        reallocated = False
        for field in _FIELDS:
            dtype = values_dtype if field == "values" else np.dtype(np.int64)
            seg = self._segments.get(field)
            if seg is not None and seg.dtype == dtype \
                    and seg.capacity >= length:
                continue
            capacity = max(length,
                           2 * seg.capacity if seg is not None else 0)
            fresh = _Segment(dtype, capacity)
            if seg is not None:
                if preserve and seg.dtype == dtype:
                    fresh.view[:preserve] = seg.view[:preserve]
                seg.release()
            self._segments[field] = fresh
            reallocated = True
        return reallocated

    def _seg_desc(self) -> dict:
        return {field: (seg.name, seg.dtype.str, seg.capacity)
                for field, seg in self._segments.items()}

    def _place_full(self, answers: AnswerSet) -> list:
        """Write the full task-sorted arrays as a single epoch."""
        sharded = ShardedAnswerSet(answers, self.n_shards)
        length = answers.n_answers
        reattach = self._ensure_capacity(length,
                                         self._values_dtype(answers))
        flat = {"tasks": sharded.flat_tasks, "workers": sharded.flat_workers,
                "values": sharded.flat_values}
        for field, arr in flat.items():
            self._segments[field].view[:length] = arr
        bounds = []
        offset = 0
        for shard in sharded.shards:
            bounds.append((offset, offset + shard.n_answers))
            offset += shard.n_answers
        cuts = [sharded.shards[0].task_start] + [s.task_stop
                                                 for s in sharded.shards]
        self._layout = {
            "length": length,
            "placed_length": length,
            "task_cuts": cuts,
            "epochs": [(0, length, bounds)],
            "sizes": self._sizes(answers),
        }
        self._remember_prefix(answers)
        ops: list = []
        if reattach:
            ops.append(("attach", (self._seg_desc(),)))
        ops.append(("layout", (self._copy_layout(),)))
        return ops

    def _extend(self, answers: AnswerSet) -> list:
        """Append the new answer tail as one epoch."""
        layout = self._layout
        old_len = layout["length"]
        new_len = answers.n_answers
        delta_tasks = answers.tasks[old_len:]
        delta_workers = answers.workers[old_len:]
        delta_values = answers.values[old_len:]
        if answers.task_type.is_categorical:
            delta_values = delta_values.astype(np.int64, copy=False)
        cuts = layout["task_cuts"]
        n_ranges = len(cuts) - 1
        if n_ranges > 1:
            # Multi-shard layouts need the epoch task-sorted so each
            # shard's piece is one contiguous slice; the single-shard
            # layout keeps arrival order (the plain-path invariant).
            order = radix_argsort(delta_tasks)
            delta_tasks = delta_tasks[order]
            delta_workers = delta_workers[order]
            delta_values = delta_values[order]
        # Cheap tripwire for the caller's append-only contract: the
        # previously placed prefix of the arrival-order arrays must
        # still start and end with the same tasks.  (A full comparison
        # would cost as much as a copy.)
        mark_len, first_task, last_task = self._prefix_mark
        if mark_len and (int(answers.tasks[0]) != first_task
                         or int(answers.tasks[mark_len - 1]) != last_task):
            raise ProtocolError(
                "stream_key reused but the previously placed answers "
                "changed; extension requires append-only growth"
            )
        cuts[-1] = answers.n_tasks
        reattach = self._ensure_capacity(new_len,
                                         self._segments["values"].dtype,
                                         preserve=old_len)
        for field, arr in (("tasks", delta_tasks), ("workers", delta_workers),
                           ("values", delta_values)):
            self._segments[field].view[old_len:new_len] = arr
        if n_ranges > 1:
            pos = np.searchsorted(delta_tasks, cuts, side="left")
            bounds = [(old_len + int(pos[k]), old_len + int(pos[k + 1]))
                      for k in range(n_ranges)]
        else:
            bounds = [(old_len, new_len)]
        epoch = (old_len, new_len, bounds)
        layout["epochs"].append(epoch)
        layout["length"] = new_len
        layout["sizes"] = self._sizes(answers)
        self._remember_prefix(answers)
        ops: list = []
        if reattach:
            # Workers rebuild from the epoch list after re-attaching;
            # send the full layout rather than the incremental message.
            ops.append(("attach", (self._seg_desc(),)))
            ops.append(("layout", (self._copy_layout(),)))
        else:
            ops.append(("extend", (epoch, dict(layout["sizes"]),
                                   cuts[-1])))
        return ops

    def _copy_layout(self) -> dict:
        layout = self._layout
        return {
            "length": layout["length"],
            "task_cuts": list(layout["task_cuts"]),
            "epochs": [(lo, hi, [tuple(b) for b in bounds])
                       for lo, hi, bounds in layout["epochs"]],
            "sizes": dict(layout["sizes"]),
        }

    def _remember_prefix(self, answers: AnswerSet) -> None:
        """Record arrival-order endpoints of the placed answers (the
        extend tripwire's reference points)."""
        n = answers.n_answers
        if n:
            self._prefix_mark = (n, int(answers.tasks[0]),
                                 int(answers.tasks[n - 1]))
        else:
            self._prefix_mark = (0, -1, -1)


class RuntimeRegistry:
    """Process-wide pool of :class:`ShardRuntime`\\ s with idle eviction.

    Keyed by the execution-plan runtime key ``(n_shards, pool_slots)``
    — an :class:`~repro.core.policy.ExecutionPolicy` / resolved plan is
    accepted anywhere a ``(n_shards, max_workers)`` pair is.
    :meth:`acquire` returns the existing runtime (respawning a closed
    one) and lazily evicts other runtimes idle longer than ``idle_ttl``
    seconds; eviction never touches a runtime whose lease lock is held.
    ``close_all`` runs at interpreter exit for the default registry.
    """

    def __init__(self, idle_ttl: float = DEFAULT_IDLE_TTL) -> None:
        self.idle_ttl = float(idle_ttl)
        self._runtimes: dict[tuple, ShardRuntime] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key_args(policy, max_workers=None) -> tuple[int, int | None]:
        """``(n_shards, max_workers)`` for a policy, plan or raw pair."""
        if isinstance(policy, ExecutionPolicy):
            return policy.resolved_shards, policy.max_workers
        if isinstance(policy, ExecutionPlan):
            # The plan's runtime_key already carries the normalised
            # slot count (idempotent under the resolve below), so plan
            # and raw-pair spellings cannot key differently.
            return policy.runtime_key
        return int(policy), max_workers

    def acquire(self, policy, max_workers: int | None = None) -> ShardRuntime:
        """Get (or create) the runtime a policy (or raw pair) keys to.

        ``policy`` may be an :class:`ExecutionPolicy`, a resolved
        :class:`ExecutionPlan`, or a plain shard count with
        ``max_workers``.  The width is normalised to the pool-slot
        count a runtime would actually use, so ``None`` and its
        resolved value share one runtime instead of duplicating pools
        and segments.
        """
        n_shards, max_workers = self._key_args(policy, max_workers)
        key = (int(n_shards),
               ShardRuntime.resolve_max_workers(n_shards, max_workers))
        if _VERIFIER is not None:
            _VERIFIER.registry_checkpoint()
        with self._lock:
            self._evict_idle_locked(time.monotonic())
            runtime = self._runtimes.get(key)
            if runtime is None or runtime.closed:
                runtime = ShardRuntime(n_shards=n_shards,
                                       max_workers=max_workers)
                self._runtimes[key] = runtime
            runtime.last_used = time.monotonic()
            return runtime

    def lease(self, policy, *args, stream_key=None,
              ) -> tuple[ShardRuntime, RuntimeLease]:
        """Acquire a runtime and lease it in one step.

        Preferred form: ``lease(plan_or_policy, answers, spec)`` with a
        :class:`~repro.core.policy.MethodSpec`.  The legacy positional
        form ``lease(n_shards, max_workers, answers, method,
        method_kwargs)`` is still accepted for low-level callers.

        Retries when another holder's ``close()`` lands between the
        acquire and the lease (any holder may close a shared runtime at
        any time; the registry's contract is that the next fit simply
        respawns).  Returns ``(runtime, lease)`` so callers can keep
        the runtime for introspection or an explicit ``close()``.
        """
        fault_policy = None
        faults = None
        if isinstance(policy, (ExecutionPolicy, ExecutionPlan)):
            answers, method = args[0], args[1]
            method_kwargs = args[2] if len(args) > 2 else None
            acquire_args = (policy,)
            fault_policy = policy.fault_policy
            faults = policy.faults
        else:
            max_workers, answers, method = args[0], args[1], args[2]
            method_kwargs = args[3] if len(args) > 3 else None
            acquire_args = (policy, max_workers)
        spec = MethodSpec.coerce(method, method_kwargs)
        while True:
            runtime = self.acquire(*acquire_args)
            try:
                return runtime, runtime.lease(answers, spec,
                                              stream_key=stream_key,
                                              fault_policy=fault_policy,
                                              faults=faults)
            except RuntimeError:
                if not runtime.closed:
                    raise

    def _evict_idle_locked(self, now: float) -> None:
        for key, runtime in list(self._runtimes.items()):
            if runtime.closed:
                del self._runtimes[key]
                continue
            if now - runtime.last_used < self.idle_ttl:
                continue
            # Never evict a runtime mid-fit: skip if the lease lock is
            # held and let a later acquire retry.
            if runtime._lock.acquire(blocking=False):
                try:
                    if not runtime._closed:
                        runtime._teardown()
                        runtime._closed = True
                finally:
                    runtime._lock.release()
                del self._runtimes[key]

    def evict_idle(self) -> int:
        """Evict idle runtimes now; returns the number closed."""
        with self._lock:
            before = len(self._runtimes)
            self._evict_idle_locked(time.monotonic())
            return before - len(self._runtimes)

    def close_all(self) -> None:
        """Close every runtime (used by tests and explicit shutdown)."""
        with self._lock:
            for runtime in self._runtimes.values():
                runtime.close()
            self._runtimes.clear()

    def _close_all_at_exit(self) -> None:
        """The atexit variant of :meth:`close_all`.

        Must not block on lease locks: a lease still held at
        interpreter exit belongs to the exiting main thread and will
        never be released (see :meth:`ShardRuntime.close_at_exit`).
        """
        with self._lock:
            for runtime in self._runtimes.values():
                runtime.close_at_exit()
            self._runtimes.clear()

    def __len__(self) -> int:
        return len(self._runtimes)


_default_registry: RuntimeRegistry | None = None
_default_registry_lock = threading.Lock()


def get_runtime_registry() -> RuntimeRegistry:
    """The process-wide default registry (created on first use)."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = RuntimeRegistry()
            atexit.register(_default_registry._close_all_at_exit)
        return _default_registry
