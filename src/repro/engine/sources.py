"""Declared-schema answer sources feeding the streaming engine.

``repro stream`` historically had to *pre-scan* its CSV to classify the
task type (two distinct labels → decision-making, more →
single-choice) before a single answer reached the engine — workable
for a file, impossible for a socket.  This module turns the input side
into a first-class protocol:

* :class:`TaskSchema` — the declaration that replaces the pre-scan: a
  task type plus (optionally) a fixed label order.  Since label growth
  warm-starts (PR 2), declaring only the task type is enough — labels
  may be discovered as they arrive.
* :class:`AnswerSource` — anything with a ``schema`` and a
  ``batches(chunk_size)`` iterator of ``(task, worker, value)``
  triples.  Three implementations cover the serving spectrum:
  :class:`CsvAnswerSource` (files; infers a schema by pre-scan *only*
  when none was declared), :class:`IterableAnswerSource` (in-memory
  records), and :class:`LineAnswerSource` (line-delimited CSV from a
  live file object — stdin, a socket's ``makefile()`` — which is
  consumed strictly incrementally and therefore *requires* a declared
  schema).

Every source feeds a
:class:`~repro.engine.stream.StreamingAnswerSet`-backed
:class:`~repro.engine.engine.InferenceEngine` the same way; the CLI's
``repro stream --source {csv,stdin} --task-type {decision,single,numeric}``
is a thin wrapper over this module.
"""

from __future__ import annotations

import csv
import dataclasses
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from .. import faults as _faults
from ..core.tasktypes import TaskType
from ..exceptions import AnswerSourceError, EngineError

__all__ = [
    "AnswerSource",
    "CsvAnswerSource",
    "IterableAnswerSource",
    "LineAnswerSource",
    "TaskSchema",
    "TcpAnswerSource",
    "infer_schema",
    "parse_task_type",
]

#: CLI spellings for the task types a stream can declare.
TASK_TYPE_ALIASES = {
    "decision": TaskType.DECISION_MAKING,
    "decision-making": TaskType.DECISION_MAKING,
    "single": TaskType.SINGLE_CHOICE,
    "single-choice": TaskType.SINGLE_CHOICE,
    "numeric": TaskType.NUMERIC,
}


def parse_task_type(name: str | TaskType) -> TaskType:
    """A :class:`TaskType` from its CLI spelling (or itself)."""
    if isinstance(name, TaskType):
        return name
    try:
        return TASK_TYPE_ALIASES[name]
    except KeyError:
        raise EngineError(
            f"unknown task type {name!r}; expected one of "
            f"{sorted(set(TASK_TYPE_ALIASES))}"
        ) from None


@dataclasses.dataclass(frozen=True)
class TaskSchema:
    """The declared shape of an answer stream.

    Parameters
    ----------
    task_type:
        The stream's task type (accepts CLI spellings like
        ``"decision"`` via :meth:`declare`).
    labels:
        Optional fixed label order for categorical streams.  When
        omitted, labels are indexed in order of first appearance —
        valid because label growth warm-starts.
    """

    task_type: TaskType
    labels: tuple | None = None

    def __post_init__(self) -> None:
        if self.labels is not None:
            object.__setattr__(self, "labels", tuple(self.labels))
            if not self.task_type.is_categorical:
                raise EngineError(
                    "labels only apply to categorical task types"
                )

    @classmethod
    def declare(cls, task_type: str | TaskType,
                labels: Sequence | None = None) -> "TaskSchema":
        """Build a schema from a CLI-style task-type spelling."""
        return cls(task_type=parse_task_type(task_type),
                   labels=tuple(labels) if labels is not None else None)

    def engine_kwargs(self) -> dict:
        """Constructor kwargs for an :class:`~repro.engine.InferenceEngine`."""
        return {
            "task_type": self.task_type,
            "label_order": list(self.labels) if self.labels else None,
        }


def infer_schema(records: Sequence[tuple]) -> TaskSchema:
    """The schema a fully materialised record list implies.

    The historical pre-scan, now explicit and opt-in: two distinct
    labels mean decision-making, more mean single-choice; the sorted
    label set becomes the fixed label order (which keeps label codes —
    and therefore printed output — deterministic).

    Zero records imply nothing: raises
    :class:`~repro.exceptions.AnswerSourceError` instead of minting a
    degenerate zero-label schema that only fails later, far from the
    empty input that caused it.
    """
    if not records:
        raise AnswerSourceError(
            "cannot infer a schema from zero answer records; the input "
            "is empty (or header-only) — declare a schema instead "
            "(e.g. --task-type on the CLI)"
        )
    labels = sorted({str(value) for _, _, value in records})
    task_type = (TaskType.DECISION_MAKING if len(labels) == 2
                 else TaskType.SINGLE_CHOICE)
    return TaskSchema(task_type=task_type, labels=tuple(labels))


@runtime_checkable
class AnswerSource(Protocol):
    """Anything that can feed a streaming engine.

    ``schema`` declares what the records mean; ``batches(chunk_size)``
    yields lists of ``(task, worker, value)`` triples, each ready for
    :meth:`~repro.engine.engine.InferenceEngine.add_answers`.
    """

    @property
    def schema(self) -> TaskSchema: ...

    def batches(self, chunk_size: int) -> Iterator[list[tuple]]: ...


def _batched(records: Iterable[tuple],
             chunk_size: int) -> Iterator[list[tuple]]:
    if chunk_size < 1:
        raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
    batch: list[tuple] = []
    for record in records:
        batch.append(record)
        if len(batch) >= chunk_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _parse_row(row: list, where: str) -> tuple:
    if len(row) < 3:
        raise AnswerSourceError(
            f"{where}: malformed row {row!r} (expected task,worker,answer)"
        )
    return (row[0].strip(), row[1].strip(), row[2].strip())


def _is_header(row: list) -> bool:
    return not row or row[0].strip().lower() in ("task", "#task")


class IterableAnswerSource:
    """In-memory ``(task, worker, value)`` records as a source.

    With no declared schema the records are classified by
    :func:`infer_schema` (they are already materialised, so the scan is
    free of the streaming concern the other sources have).
    """

    def __init__(self, records: Iterable[tuple],
                 schema: TaskSchema | None = None) -> None:
        self._records = list(records)
        self._schema = schema

    @property
    def schema(self) -> TaskSchema:
        if self._schema is None:
            self._schema = infer_schema(self._records)
        return self._schema

    def __len__(self) -> int:
        return len(self._records)

    def batches(self, chunk_size: int) -> Iterator[list[tuple]]:
        return _batched(self._records, chunk_size)


class CsvAnswerSource:
    """A ``task,worker,answer`` CSV file as a source.

    With a declared ``schema`` the file is read strictly in
    ``chunk_size`` batches — no pre-scan, no second pass.  Without one,
    asking for :attr:`schema` reads the file once and infers it (the
    legacy CLI behaviour, kept for undeclared streams).
    """

    def __init__(self, path: str,
                 schema: TaskSchema | None = None) -> None:
        self.path = path
        self._schema = schema
        self._scanned: list[tuple] | None = None

    @property
    def declared(self) -> bool:
        """Whether the schema was declared (no pre-scan will happen)."""
        return self._schema is not None

    @property
    def schema(self) -> TaskSchema:
        if self._schema is None:
            # Pre-scan once and keep the records: batches() then serves
            # from memory instead of parsing the file a second time
            # (which would also race any concurrent appends).
            self._scanned = self._read_all()
            if not self._scanned:
                raise AnswerSourceError(
                    f"{self.path}: no answer rows found (empty or "
                    f"header-only CSV); cannot infer a schema — declare "
                    f"one (e.g. --task-type) or supply data"
                )
            self._schema = infer_schema(self._scanned)
        return self._schema

    def _read_all(self) -> list[tuple]:
        return [record for batch in self.batches(4096) for record in batch]

    def batches(self, chunk_size: int) -> Iterator[list[tuple]]:
        if self._scanned is not None:
            yield from _batched(self._scanned, chunk_size)
            return
        try:
            handle = open(self.path, newline="")
        except OSError as exc:
            raise AnswerSourceError(
                f"cannot read answers from {self.path}: {exc}"
            ) from exc
        with handle:
            yield from _batched(
                (_parse_row(row, f"{self.path}:{number}")
                 for number, row in enumerate(csv.reader(handle), start=1)
                 if not _is_header(row)),
                chunk_size,
            )


class LineAnswerSource:
    """Line-delimited ``task,worker,answer`` CSV from a live stream.

    Wraps any text file object — ``sys.stdin``, a pipe, a socket's
    ``makefile("r")`` — and parses it strictly incrementally: a batch
    is emitted as soon as ``chunk_size`` rows arrived (or the stream
    ends), so inference starts while the producer is still writing.
    Because the input cannot be rewound, the schema **must** be
    declared up front.

    A malformed line from a live peer must not kill the whole stream
    (one garbled TCP write would take down every task already being
    inferred), so bad lines are *skipped and counted*: each one bumps
    :attr:`bad_lines`, and only when the count exceeds
    ``max_bad_lines`` does the source raise
    :class:`~repro.exceptions.AnswerSourceError` — with the line
    number and content of the offending row.  ``max_bad_lines=0``
    restores the strict historical behaviour (first bad line is
    fatal); blank lines are ignored outright, as before.
    """

    #: Default malformed-line budget before the stream is abandoned.
    DEFAULT_MAX_BAD_LINES = 100

    def __init__(self, stream, schema: TaskSchema,
                 name: str = "<stream>",
                 max_bad_lines: int = DEFAULT_MAX_BAD_LINES) -> None:
        if schema is None:
            raise EngineError(
                "a live stream cannot be pre-scanned; declare a "
                "TaskSchema (e.g. --task-type on the CLI)"
            )
        if max_bad_lines < 0:
            raise EngineError(
                f"max_bad_lines must be >= 0, got {max_bad_lines}"
            )
        self._stream = stream
        self._schema = schema
        self.name = name
        self.max_bad_lines = int(max_bad_lines)
        #: Malformed lines skipped so far (for post-stream reporting).
        self.bad_lines = 0

    @property
    def schema(self) -> TaskSchema:
        return self._schema

    def _records(self) -> Iterator[tuple]:
        plan = _faults.get_plan()
        for number, row in enumerate(csv.reader(self._stream), start=1):
            if _is_header(row):
                continue
            if plan is not None and plan.on_source_line():
                # Injected garble: the tail of the line is lost in
                # transit, exactly like a torn TCP write.
                row = row[:1]
            try:
                yield _parse_row(row, f"{self.name}:{number}")
            except AnswerSourceError as exc:
                self.bad_lines += 1
                if self.bad_lines > self.max_bad_lines:
                    raise AnswerSourceError(
                        f"{self.name}: {self.bad_lines} malformed lines "
                        f"exceed max_bad_lines={self.max_bad_lines}; "
                        f"last offender at line {number}: {exc}"
                    ) from exc

    def batches(self, chunk_size: int) -> Iterator[list[tuple]]:
        return _batched(self._records(), chunk_size)


class TcpAnswerSource:
    """A reconnecting ``tcp:HOST:PORT`` line source.

    The plain spelling (connect once, wrap the socket's
    ``makefile("r")`` in a :class:`LineAnswerSource`) dies with the
    first transport drop — one flaky switch and every task already
    being inferred is abandoned.  This source owns the connection
    lifecycle instead: a mid-stream ``OSError`` (reset, broken pipe)
    consumes one unit of the ``reconnect`` budget, sleeps a shared
    :class:`~repro.faults.Backoff` delay, redials, and **resumes the
    record stream in place** — batch numbering, the malformed-line
    budget and the engine feeding off :meth:`batches` all carry on as
    if the drop never happened.  ``reconnect=0`` (the default, and the
    CLI's) keeps the historical fail-fast behaviour.

    Clean EOF (the peer closed after finishing) ends the stream
    normally and never redials: a reconnect budget is for *drops*, not
    for polling a finished producer.

    Parameters
    ----------
    host, port:
        The peer to dial.
    schema:
        Required, as for :class:`LineAnswerSource` — a socket cannot
        be pre-scanned.
    reconnect:
        How many drops (mid-stream or while redialling) to survive
        before raising :class:`~repro.exceptions.AnswerSourceError`.
    max_bad_lines:
        Malformed-line budget, shared across reconnects (a peer that
        garbles lines does not get a fresh budget by dropping).
    connect:
        Injectable dial callable returning a connected socket (or any
        object with ``makefile``/``readline``); defaults to
        ``socket.create_connection((host, port))``.  Tests hand in a
        socketpair factory here.
    backoff:
        The :class:`~repro.faults.Backoff` used between redials;
        defaults to ``Backoff()``.
    """

    def __init__(self, host: str, port: int, schema: TaskSchema,
                 name: str | None = None, reconnect: int = 0,
                 max_bad_lines: int = LineAnswerSource.DEFAULT_MAX_BAD_LINES,
                 connect=None, backoff=None) -> None:
        if schema is None:
            raise EngineError(
                "a live stream cannot be pre-scanned; declare a "
                "TaskSchema (e.g. --task-type on the CLI)"
            )
        if reconnect < 0:
            raise EngineError(
                f"reconnect must be >= 0, got {reconnect}"
            )
        self.host = host
        self.port = int(port)
        self._schema = schema
        self.name = name or f"tcp:{host}:{port}"
        self.reconnect = int(reconnect)
        self.max_bad_lines = int(max_bad_lines)
        self._connect = connect or self._dial
        self._backoff = backoff if backoff is not None else _faults.Backoff()
        #: Successful redials so far (for post-stream reporting).
        self.reconnects = 0
        #: Malformed lines skipped so far, across all connections.
        self.bad_lines = 0
        #: Records yielded so far (where a resume picks up).
        self.records_read = 0
        self._stream = self._open("initial connect")

    def _dial(self):
        import socket

        return socket.create_connection((self.host, self.port))

    def _open(self, why: str):
        try:
            peer = self._connect()
        except OSError as exc:
            raise AnswerSourceError(
                f"cannot connect to {self.name} ({why}): {exc}"
            ) from exc
        return peer.makefile("r") if hasattr(peer, "makefile") else peer

    @property
    def schema(self) -> TaskSchema:
        return self._schema

    def close(self) -> None:
        """Close the current connection (idempotent)."""
        stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()

    def _records(self) -> Iterator[tuple]:
        budget = self.reconnect
        while True:
            inner = LineAnswerSource(self._stream, self._schema,
                                     name=self.name,
                                     max_bad_lines=self.max_bad_lines)
            inner.bad_lines = self.bad_lines
            dropped = None
            try:
                for record in inner._records():
                    self.records_read += 1
                    yield record
            except OSError as exc:
                dropped = exc
            finally:
                self.bad_lines = inner.bad_lines
            if dropped is None:
                return
            while True:
                if budget <= 0:
                    raise AnswerSourceError(
                        f"{self.name}: connection lost after "
                        f"{self.records_read} records with the reconnect "
                        f"budget spent (reconnect={self.reconnect}): "
                        f"{dropped}"
                    ) from dropped
                budget -= 1
                self.reconnects += 1
                self._backoff.sleep(self.reconnects - 1)
                try:
                    self._stream = self._open(
                        f"reconnect {self.reconnects}")
                except AnswerSourceError as exc:
                    dropped = exc
                    continue
                break

    def batches(self, chunk_size: int) -> Iterator[list[tuple]]:
        return _batched(self._records(), chunk_size)
