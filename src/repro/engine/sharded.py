"""Process-parallel sharded inference over shared-memory answer arrays.

:mod:`repro.inference.sharded` runs the map-reduce EM phases serially or
on a thread pool; NumPy holds the GIL through most of the kernels, so
threads cap out quickly.  This module is the true multi-core path:

* :class:`ProcessShardRunner` — places the task-sorted answer arrays in
  :mod:`multiprocessing.shared_memory` once, spawns a
  :class:`~concurrent.futures.ProcessPoolExecutor`, and dispatches the
  spec phases (``init_block`` / ``accumulate`` / ``e_block`` /
  ``grad_step``) to worker processes that rebuild their shard views and
  method spec from the shared arrays.  Only small things cross the
  pipe: phase names, model parameters, posterior blocks and partial
  statistics — never the answers.
* :class:`ShardedInferenceEngine` — a facade that picks the execution
  tier per fit: **threads (or the serial path) for small inputs**,
  where process spin-up would dominate, and **processes for large
  ones** when real cores are available.

When to prefer processes over threads
-------------------------------------
The per-iteration phase payloads are a few posterior blocks and
parameter vectors, so process fan-out amortises well for methods whose
per-shard work is one heavy kernel per phase (D&S/LFC/ZC/LFC_N: one
``accumulate`` + one ``e_block`` round-trip per EM iteration).  GLAD
exchanges gradients every ascent step (``gradient_steps`` round-trips
per iteration), so it needs larger shards before processes beat the
in-process path.  On a single-core host processes only add overhead —
the engine's ``auto`` mode stays in-process there.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.registry import create, method_class
from ..core.result import InferenceResult
from ..core.shards import AnswerShard, ShardedAnswerSet
from ..inference.sharded import SerialShardRunner

__all__ = ["ProcessShardRunner", "ShardedInferenceEngine"]


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_WORKER_CTX: dict = {}


def _attach(name: str, dtype: str, length: int):
    """Attach a shared-memory block as a numpy array.

    Pool workers share the parent's resource tracker, where the block is
    already registered (registration is a set, so the attach-side
    duplicate is a no-op); the parent unlinks it exactly once in
    :meth:`ProcessShardRunner.close`.
    """
    shm = shared_memory.SharedMemory(name=name)
    arr = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf)
    return shm, arr


def _worker_init(descriptor: dict) -> None:
    shms = []
    arrays = {}
    for field in ("tasks", "workers", "values"):
        name, dtype, length = descriptor[field]
        shm, arr = _attach(name, dtype, length)
        shms.append(shm)
        arrays[field] = arr
    shards = []
    for k, ((lo, hi), (start, stop)) in enumerate(
            zip(descriptor["answer_bounds"], descriptor["task_ranges"])):
        shards.append(AnswerShard(
            tasks=arrays["tasks"][lo:hi],
            workers=arrays["workers"][lo:hi],
            values=arrays["values"][lo:hi],
            task_start=start,
            task_stop=stop,
            n_tasks=descriptor["n_tasks"],
            n_workers=descriptor["n_workers"],
            n_choices=descriptor["n_choices"],
            index=k,
        ))
    method = create(descriptor["method"], **descriptor["method_kwargs"])
    spec = method.make_em_spec(
        n_tasks=descriptor["n_tasks"],
        n_workers=descriptor["n_workers"],
        n_choices=descriptor["n_choices"],
    )
    _WORKER_CTX["shms"] = shms  # keep the mappings alive
    _WORKER_CTX["shards"] = shards
    _WORKER_CTX["spec"] = spec


def _worker_phase(k: int, phase: str, args: tuple):
    spec = _WORKER_CTX["spec"]
    shard = _WORKER_CTX["shards"][k]
    return getattr(spec, phase)(shard, spec.shard_ops(shard), *args)


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class ProcessShardRunner(SerialShardRunner):
    """Shard runner dispatching spec phases to a process pool.

    The master keeps its own spec instance (for ``finalize`` and M-step
    orchestration) and the full :class:`ShardedAnswerSet`; workers hold
    shard *views* over the shared-memory arrays plus their own spec
    rebuilt from the method registry, with per-shard operators cached
    across iterations.  Use as a context manager — or call
    :meth:`close` — to shut the pool down and unlink the shared blocks.
    """

    def __init__(self, answers: AnswerSet, method: str,
                 method_kwargs: Mapping | None = None, n_shards: int = 4,
                 max_workers: int | None = None) -> None:
        instance = create(method, **(method_kwargs or {}))
        if not instance.supports_sharding:
            raise ValueError(
                f"{method} does not support sharded EM"
            )
        sharded = ShardedAnswerSet(answers, n_shards)
        spec = instance.make_em_spec(
            n_tasks=answers.n_tasks,
            n_workers=answers.n_workers,
            n_choices=answers.n_choices,
        )
        super().__init__(spec, sharded.shards)
        self.sharded = sharded

        flat = {
            "tasks": sharded.flat_tasks,
            "workers": sharded.flat_workers,
            "values": sharded.flat_values,
        }
        self._shms: list[shared_memory.SharedMemory] = []
        descriptor: dict = {
            "n_tasks": answers.n_tasks,
            "n_workers": answers.n_workers,
            "n_choices": answers.n_choices,
            "method": method,
            "method_kwargs": dict(method_kwargs or {}),
            "task_ranges": sharded.task_ranges,
        }
        bounds = []
        offset = 0
        for shard in sharded.shards:
            bounds.append((offset, offset + shard.n_answers))
            offset += shard.n_answers
        descriptor["answer_bounds"] = bounds
        try:
            for field, arr in flat.items():
                shm = shared_memory.SharedMemory(
                    create=True, size=max(arr.nbytes, 1))
                self._shms.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[:] = arr
                descriptor[field] = (shm.name, arr.dtype.str, len(arr))
        except Exception:
            # Don't leak already-created segments (e.g. /dev/shm full on
            # the second block): __init__ never returns, so close()
            # would be unreachable.
            self._release_shms()
            raise

        workers = max_workers or min(self.n_shards, os.cpu_count() or 1)
        self.max_workers = max(1, min(workers, self.n_shards))
        # One single-worker pool per slot, with shard k pinned to pool
        # k % max_workers: specs keep *state* per shard (cached scatter
        # operators, GLAD's per-M-step match cache), so every phase of a
        # shard must land in the same process.  Anonymous pool workers
        # would scatter that state — and rebuild the operators — all
        # over the pool.
        self._pools = [
            ProcessPoolExecutor(max_workers=1, initializer=_worker_init,
                                initargs=(descriptor,))
            for _ in range(self.max_workers)
        ]
        self._closed = False

    def call(self, phase: str, per_shard=None, shared: tuple = ()) -> list:
        futures = []
        for k in range(self.n_shards):
            args: tuple = ()
            if per_shard is not None:
                entry = per_shard[k]
                args = entry if isinstance(entry, tuple) else (entry,)
            futures.append(self._pools[k % self.max_workers].submit(
                _worker_phase, k, phase, args + shared))
        return [future.result() for future in futures]

    def _release_shms(self) -> None:
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass
        self._shms = []

    def close(self) -> None:
        """Shut down the pools and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._release_shms()

    def __enter__(self) -> "ProcessShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedInferenceEngine:
    """One-shot sharded fits with automatic thread/process placement.

    Parameters
    ----------
    n_shards:
        Task-range shards per fit (default: the larger of 2 and the
        core count, capped at 8).
    max_workers:
        Pool width; defaults to ``min(n_shards, cpu_count)``.
    executor:
        ``"auto"`` (default) — processes when the input is at least
        ``process_threshold`` answers *and* more than one core is
        available, otherwise the in-process sharded path;
        ``"process"`` / ``"thread"`` / ``"serial"`` force a tier.
    process_threshold:
        Answer count above which ``auto`` reaches for processes.
    seed:
        Seed forwarded to method construction, as in
        :class:`~repro.engine.engine.InferenceEngine`.

    Example
    -------
    >>> engine = ShardedInferenceEngine(n_shards=4, executor="serial")
    >>> # result = engine.fit(answers, "D&S")
    """

    _MODES = ("auto", "process", "thread", "serial")

    def __init__(self, n_shards: int | None = None,
                 max_workers: int | None = None, executor: str = "auto",
                 process_threshold: int = 200_000,
                 seed: int | None = 0) -> None:
        if executor not in self._MODES:
            raise ValueError(
                f"executor must be one of {self._MODES}, got {executor!r}"
            )
        if n_shards is not None and n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        cpus = os.cpu_count() or 1
        self.n_shards = n_shards or max(2, min(8, cpus))
        self.max_workers = max_workers
        self.executor = executor
        self.process_threshold = process_threshold
        self.seed = seed
        #: Execution tier of the most recent fit ("process"/"thread"/
        #: "serial"), for introspection and tests.
        self.last_mode: str | None = None

    # ------------------------------------------------------------------
    def _resolve_mode(self, answers: AnswerSet) -> str:
        if self.executor != "auto":
            return self.executor
        cpus = os.cpu_count() or 1
        if answers.n_answers >= self.process_threshold and cpus > 1:
            return "process"
        # Small inputs default to threads whenever there is anything to
        # overlap on; a single-core host falls back to the serial path.
        if (self.max_workers or 0) > 1 or cpus > 1:
            return "thread"
        return "serial"

    def fit(
        self,
        answers: AnswerSet,
        method: str = "D&S",
        golden: Mapping[int, float] | None = None,
        initial_quality: np.ndarray | None = None,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        **method_kwargs,
    ) -> InferenceResult:
        """Fit ``method`` on ``answers`` with sharded EM.

        The result is identical (to within float merge order; bit-equal
        between tiers at equal ``n_shards``) whichever tier executes it.
        """
        if not method_class(method).supports_sharding:
            raise ValueError(
                f"{method} does not support sharded EM; use the plain "
                f"fit path instead"
            )
        mode = self._resolve_mode(answers)
        self.last_mode = mode
        fit_kwargs = dict(
            golden=golden,
            initial_quality=initial_quality,
            warm_start=warm_start,
            seed_posterior=seed_posterior,
        )
        if mode == "process":
            # One kwargs dict for every construction site (the fitting
            # instance here, the runner's master spec, the worker-side
            # rebuilds), so a spec that ever depends on constructor
            # state — seed included — cannot diverge between tiers.
            runner_kwargs = {"seed": self.seed, **method_kwargs}
            instance = create(method, **runner_kwargs)
            with ProcessShardRunner(
                    answers, method, runner_kwargs,
                    n_shards=self.n_shards,
                    max_workers=self.max_workers) as runner:
                return instance.fit(answers, shard_runner=runner,
                                    **fit_kwargs)
        shard_workers = 0
        if mode == "thread":
            # A forced thread tier must actually thread, even when the
            # pool width was left to default.
            shard_workers = self.max_workers or min(
                self.n_shards, max(2, os.cpu_count() or 1))
        instance = create(method, seed=self.seed, n_shards=self.n_shards,
                          shard_workers=shard_workers, **method_kwargs)
        return instance.fit(answers, **fit_kwargs)

    def __repr__(self) -> str:
        return (f"ShardedInferenceEngine(n_shards={self.n_shards}, "
                f"executor={self.executor!r})")
