"""Process-parallel sharded inference over shared-memory answer arrays.

:mod:`repro.inference.sharded` runs the map-reduce EM phases serially or
on a thread pool; NumPy holds the GIL through most of the kernels, so
threads cap out quickly.  This module is the true multi-core path,
built on the persistent runtime of :mod:`repro.engine.runtime`:

* :class:`ProcessShardRunner` — the one-shot spelling: builds a
  *private* :class:`~repro.engine.runtime.ShardRuntime`, leases it for
  exactly one answer set, and tears everything down on :meth:`close`.
  Only small things cross the pipe: phase names, model parameters,
  posterior blocks and partial statistics — never the answers.
* :class:`ShardedInferenceEngine` — a facade that picks the execution
  tier per fit: **threads (or the serial path) for small inputs**,
  where process spin-up would dominate, and **processes for large
  ones** when real cores are available.  Its process tier leases from
  the shared :class:`~repro.engine.runtime.RuntimeRegistry`, so
  repeated fits (a method sweep, a refit loop) reuse warm pools and
  placed segments instead of respawning per fit.

When to prefer processes over threads
-------------------------------------
The per-iteration phase payloads are a few posterior blocks and
parameter vectors, so process fan-out amortises well for methods whose
per-shard work is one heavy kernel per phase (D&S/LFC/ZC/LFC_N: one
``accumulate`` + one ``e_block`` round-trip per EM iteration).  GLAD
exchanges gradients every ascent step (``gradient_steps`` round-trips
per iteration), so it needs larger shards before processes beat the
in-process path.  On a single-core host processes only add overhead —
the engine's ``auto`` mode stays in-process there.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.registry import create, method_class
from ..core.result import InferenceResult
from .runtime import RuntimeRegistry, ShardRuntime, get_runtime_registry

__all__ = ["ProcessShardRunner", "ShardedInferenceEngine"]


class ProcessShardRunner:
    """One-shot shard runner dispatching spec phases to a process pool.

    A thin lease on a private :class:`~repro.engine.runtime.ShardRuntime`:
    construction places the task-sorted answer arrays in shared memory
    and pins shard ``k`` to single-worker pool ``k % max_workers``;
    :meth:`close` (or the ``with`` block) shuts the pools down and
    unlinks the segments.  For *repeated* fits prefer leasing from the
    shared registry (what :class:`ShardedInferenceEngine` does) so the
    spawn and placement amortise across fits.

    The master keeps its own spec instance (for ``finalize`` and M-step
    orchestration); workers hold shard views over the shared-memory
    arrays plus their own spec rebuilt from the method registry, with
    per-shard operators cached across iterations.
    """

    def __init__(self, answers: AnswerSet, method: str,
                 method_kwargs: Mapping | None = None, n_shards: int = 4,
                 max_workers: int | None = None) -> None:
        self._runtime = ShardRuntime(n_shards=n_shards,
                                     max_workers=max_workers)
        try:
            self._lease = self._runtime.lease(answers, method,
                                              method_kwargs)
        except BaseException:
            self._runtime.close()
            raise
        self._closed = False

    # -- SerialShardRunner surface (delegated to the lease) ------------
    @property
    def spec(self):
        return self._lease.spec

    @property
    def n_shards(self) -> int:
        return self._lease.n_shards

    @property
    def max_workers(self) -> int:
        return self._runtime.max_workers

    @property
    def task_ranges(self) -> list[tuple[int, int]]:
        return self._lease.task_ranges

    def m_step(self, state: np.ndarray, prev_params=None):
        return self._lease.m_step(state, prev_params)

    def call(self, phase: str, per_shard=None, shared: tuple = ()) -> list:
        return self._lease.call(phase, per_shard=per_shard, shared=shared)

    # -- lifecycle -----------------------------------------------------
    def segment_names(self) -> list[str]:
        """Live shared-memory segment names (for leak tests)."""
        return self._runtime.segment_names()

    def close(self) -> None:
        """Shut down the pools and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        self._lease.close()
        self._runtime.close()

    def __enter__(self) -> "ProcessShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedInferenceEngine:
    """Sharded fits with automatic thread/process placement.

    Parameters
    ----------
    n_shards:
        Task-range shards per fit (default: the larger of 2 and the
        core count, capped at 8).
    max_workers:
        Pool width; defaults to ``min(n_shards, cpu_count)``.
    executor:
        ``"auto"`` (default) — processes when the input is at least
        ``process_threshold`` answers *and* more than one core is
        available, otherwise the in-process sharded path;
        ``"process"`` / ``"thread"`` / ``"serial"`` force a tier.
    process_threshold:
        Answer count above which ``auto`` reaches for processes.
    seed:
        Seed forwarded to method construction, as in
        :class:`~repro.engine.engine.InferenceEngine`.
    persistent:
        When True (default) the process tier leases pools and segments
        from ``registry`` and keeps them warm between fits; repeated
        ``fit`` calls on the same answer set skip placement entirely.
        ``False`` restores the per-fit :class:`ProcessShardRunner`
        (spawn + place + teardown every fit) — only sensible for one
        isolated large fit.
    registry:
        Runtime registry for the persistent tier; defaults to the
        process-wide one (:func:`~repro.engine.runtime.get_runtime_registry`).

    The engine is a context manager; ``close()`` releases its runtime
    (safe even when shared — the registry respawns on next use).

    Example
    -------
    >>> engine = ShardedInferenceEngine(n_shards=4, executor="serial")
    >>> # result = engine.fit(answers, "D&S")
    """

    _MODES = ("auto", "process", "thread", "serial")

    def __init__(self, n_shards: int | None = None,
                 max_workers: int | None = None, executor: str = "auto",
                 process_threshold: int = 200_000,
                 seed: int | None = 0,
                 persistent: bool = True,
                 registry: RuntimeRegistry | None = None) -> None:
        if executor not in self._MODES:
            raise ValueError(
                f"executor must be one of {self._MODES}, got {executor!r}"
            )
        if n_shards is not None and n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        cpus = os.cpu_count() or 1
        self.n_shards = n_shards or max(2, min(8, cpus))
        self.max_workers = max_workers
        self.executor = executor
        self.process_threshold = process_threshold
        self.seed = seed
        self.persistent = persistent
        self._registry = registry
        self._runtime: ShardRuntime | None = None
        #: Execution tier of the most recent fit ("process"/"thread"/
        #: "serial"), for introspection and tests.
        self.last_mode: str | None = None

    # ------------------------------------------------------------------
    def _resolve_mode(self, answers: AnswerSet) -> str:
        if self.executor != "auto":
            return self.executor
        cpus = os.cpu_count() or 1
        if answers.n_answers >= self.process_threshold and cpus > 1:
            return "process"
        # Small inputs default to threads whenever there is anything to
        # overlap on; a single-core host falls back to the serial path.
        if (self.max_workers or 0) > 1 or cpus > 1:
            return "thread"
        return "serial"

    def _lease_runtime(self, answers: AnswerSet, method: str,
                       runner_kwargs: dict):
        """Lease from the registry (retrying past concurrent closes)
        and remember the runtime for ``close()``/introspection."""
        registry = self._registry or get_runtime_registry()
        self._runtime, lease = registry.lease(
            self.n_shards, self.max_workers, answers, method,
            runner_kwargs)
        return lease

    def close(self) -> None:
        """Release the engine's runtime (idempotent).

        The runtime may be shared through the registry; closing it here
        is still safe — the next ``fit`` (from this engine or any other
        registry user) lazily respawns it.
        """
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "ShardedInferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def fit(
        self,
        answers: AnswerSet,
        method: str = "D&S",
        golden: Mapping[int, float] | None = None,
        initial_quality: np.ndarray | None = None,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        **method_kwargs,
    ) -> InferenceResult:
        """Fit ``method`` on ``answers`` with sharded EM.

        The result is identical (to within float merge order; bit-equal
        between tiers at equal ``n_shards``) whichever tier executes it.
        """
        if not method_class(method).supports_sharding:
            raise ValueError(
                f"{method} does not support sharded EM; use the plain "
                f"fit path instead"
            )
        mode = self._resolve_mode(answers)
        self.last_mode = mode
        fit_kwargs = dict(
            golden=golden,
            initial_quality=initial_quality,
            warm_start=warm_start,
            seed_posterior=seed_posterior,
        )
        if mode == "process":
            # One kwargs dict for every construction site (the fitting
            # instance here, the runner's master spec, the worker-side
            # rebuilds), so a spec that ever depends on constructor
            # state — seed included — cannot diverge between tiers.
            runner_kwargs = {"seed": self.seed, **method_kwargs}
            instance = create(method, **runner_kwargs)
            if self.persistent:
                with self._lease_runtime(answers, method,
                                         runner_kwargs) as runner:
                    return instance.fit(answers, shard_runner=runner,
                                        **fit_kwargs)
            with ProcessShardRunner(
                    answers, method, runner_kwargs,
                    n_shards=self.n_shards,
                    max_workers=self.max_workers) as runner:
                return instance.fit(answers, shard_runner=runner,
                                    **fit_kwargs)
        shard_workers = 0
        if mode == "thread":
            # A forced thread tier must actually thread, even when the
            # pool width was left to default.
            shard_workers = self.max_workers or min(
                self.n_shards, max(2, os.cpu_count() or 1))
        instance = create(method, seed=self.seed, n_shards=self.n_shards,
                          shard_workers=shard_workers, **method_kwargs)
        return instance.fit(answers, **fit_kwargs)

    def __repr__(self) -> str:
        return (f"ShardedInferenceEngine(n_shards={self.n_shards}, "
                f"executor={self.executor!r}, "
                f"persistent={self.persistent})")
