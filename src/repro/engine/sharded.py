"""Process-parallel sharded inference over shared-memory answer arrays.

:mod:`repro.inference.sharded` runs the map-reduce EM phases serially or
on a thread pool; NumPy holds the GIL through most of the kernels, so
threads cap out quickly.  This module is the true multi-core path,
built on the persistent runtime of :mod:`repro.engine.runtime`:

* :class:`ProcessShardRunner` — the one-shot spelling: builds a
  *private* :class:`~repro.engine.runtime.ShardRuntime`, leases it for
  exactly one answer set, and tears everything down on :meth:`close`.
  Only small things cross the pipe: phase names, model parameters,
  posterior blocks and partial statistics — never the answers.
* :class:`ShardedInferenceEngine` — a facade executing each fit under
  an :class:`~repro.core.policy.ExecutionPolicy`: the policy's
  ``resolve(answers)`` picks the tier per fit — **threads (or the
  serial path) for small inputs**, where process spin-up would
  dominate, and **processes for large ones** when real cores are
  available.  Its process tier leases from the shared
  :class:`~repro.engine.runtime.RuntimeRegistry`, so repeated fits (a
  method sweep, a refit loop) reuse warm pools and placed segments
  instead of respawning per fit.

When to prefer processes over threads
-------------------------------------
The per-iteration phase payloads are a few posterior blocks and
parameter vectors, so process fan-out amortises well for methods whose
per-shard work is one heavy kernel per phase (D&S/LFC/ZC/LFC_N: one
``accumulate`` + one ``e_block`` round-trip per EM iteration).  GLAD
exchanges gradients every ascent step (``gradient_steps`` round-trips
per iteration), so it needs larger shards before processes beat the
in-process path.  On a single-core host processes only add overhead —
the policy's ``auto`` mode stays in-process there.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.answers import AnswerSet
from ..core.policy import ExecutionPolicy, MethodSpec, warn_legacy
from ..core.registry import capabilities, create
from ..core.result import InferenceResult
from ..exceptions import EngineError
from .runtime import RuntimeRegistry, ShardRuntime, get_runtime_registry

__all__ = ["ProcessShardRunner", "ShardedInferenceEngine"]

_UNSET = object()


class ProcessShardRunner:
    """One-shot shard runner dispatching spec phases to a process pool.

    A thin lease on a private :class:`~repro.engine.runtime.ShardRuntime`:
    construction places the task-sorted answer arrays in shared memory
    and pins shard ``k`` to single-worker pool ``k % max_workers``;
    :meth:`close` (or the ``with`` block) shuts the pools down and
    unlinks the segments.  For *repeated* fits prefer leasing from the
    shared registry (what :class:`ShardedInferenceEngine` does) so the
    spawn and placement amortise across fits.

    ``method`` may be a registry name (with ``method_kwargs``) or a
    :class:`~repro.core.policy.MethodSpec`.  The master keeps its own
    spec instance (for ``finalize`` and M-step orchestration); workers
    hold shard views over the shared-memory arrays plus their own spec
    rebuilt from the method registry, with per-shard operators cached
    across iterations.
    """

    def __init__(self, answers: AnswerSet, method: str | MethodSpec,
                 method_kwargs: Mapping | None = None, n_shards: int = 4,
                 max_workers: int | None = None, fault_policy=None,
                 faults=None) -> None:
        self._runtime = ShardRuntime(n_shards=n_shards,
                                     max_workers=max_workers or None)
        try:
            self._lease = self._runtime.lease(
                answers, MethodSpec.coerce(method, method_kwargs),
                fault_policy=fault_policy, faults=faults)
        except BaseException:
            self._runtime.close()
            raise
        self._closed = False

    # -- SerialShardRunner surface (delegated to the lease) ------------
    @property
    def spec(self):
        return self._lease.spec

    @property
    def n_shards(self) -> int:
        return self._lease.n_shards

    @property
    def max_workers(self) -> int:
        return self._runtime.max_workers

    @property
    def task_ranges(self) -> list[tuple[int, int]]:
        return self._lease.task_ranges

    @property
    def fault_events(self) -> dict:
        """The lease's fault-recovery counters (see ``RuntimeLease``)."""
        return self._lease.fault_events

    def m_step(self, state: np.ndarray, prev_params=None):
        return self._lease.m_step(state, prev_params)

    def call(self, phase: str, per_shard=None, shared: tuple = (),
             only=None) -> list:
        return self._lease.call(phase, per_shard=per_shard, shared=shared,
                                only=only)

    # -- lifecycle -----------------------------------------------------
    def segment_names(self) -> list[str]:
        """Live shared-memory segment names (for leak tests)."""
        return self._runtime.segment_names()

    def close(self) -> None:
        """Shut down the pools and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        self._lease.close()
        self._runtime.close()

    def __enter__(self) -> "ProcessShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedInferenceEngine:
    """Sharded fits with policy-driven thread/process placement.

    Parameters
    ----------
    policy:
        The :class:`~repro.core.policy.ExecutionPolicy` every fit runs
        under; defaults to ``ExecutionPolicy()`` (auto shards, auto
        tier).  The policy is resolved against each fit's answers, so
        one engine serves small and large inputs with the right tier.
    seed:
        Seed forwarded to method construction, as in
        :class:`~repro.engine.engine.InferenceEngine`.
    registry:
        Runtime registry for the persistent process tier; defaults to
        the process-wide one
        (:func:`~repro.engine.runtime.get_runtime_registry`).

    The legacy constructor spellings (``n_shards=``, ``max_workers=``,
    ``executor=``, ``process_threshold=``, ``persistent=``) still work
    — they assemble the equivalent policy and warn once.

    The engine is a context manager; ``close()`` releases its runtime
    (safe even when shared — the registry respawns on next use).

    Example
    -------
    >>> from repro.core.policy import ExecutionPolicy
    >>> engine = ShardedInferenceEngine(
    ...     ExecutionPolicy(n_shards=4, executor="serial"))
    >>> # result = engine.fit(answers, "D&S")
    """

    def __init__(self, policy: ExecutionPolicy | None = None,
                 seed: int | None = 0,
                 registry: RuntimeRegistry | None = None,
                 n_shards=_UNSET, max_workers=_UNSET, executor=_UNSET,
                 process_threshold=_UNSET, persistent=_UNSET) -> None:
        legacy = {
            name: value
            for name, value in (("n_shards", n_shards),
                                ("max_workers", max_workers),
                                ("executor", executor),
                                ("process_threshold", process_threshold),
                                ("persistent", persistent))
            if value is not _UNSET
        }
        if legacy:
            if policy is not None:
                raise EngineError(
                    "pass either policy= or the legacy kwargs, not both"
                )
            warn_legacy("ShardedInferenceEngine", legacy,
                        "policy=ExecutionPolicy(...)")
            policy = ExecutionPolicy(
                n_shards=legacy.get("n_shards"),
                executor=legacy.get("executor", "auto"),
                max_workers=legacy.get("max_workers"),
                persistent=legacy.get("persistent", True),
                process_threshold=legacy.get(
                    "process_threshold",
                    ExecutionPolicy().process_threshold),
            )
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.seed = seed
        self._registry = registry
        self._runtime: ShardRuntime | None = None
        #: Execution tier of the most recent fit ("process"/"thread"/
        #: "serial"), for introspection and tests.
        self.last_mode: str | None = None

    # -- policy-derived views (kept for introspection and tests) -------
    @property
    def n_shards(self) -> int:
        return self.policy.resolved_shards

    @property
    def max_workers(self) -> int | None:
        return self.policy.max_workers

    @property
    def executor(self) -> str:
        return self.policy.executor

    @property
    def persistent(self) -> bool:
        return self.policy.persistent

    # ------------------------------------------------------------------
    def _lease_runtime(self, plan, answers: AnswerSet, spec: MethodSpec):
        """Lease from the registry (retrying past concurrent closes)
        and remember the runtime for ``close()``/introspection."""
        registry = self._registry or get_runtime_registry()
        self._runtime, lease = registry.lease(plan, answers, spec)
        return lease

    def close(self) -> None:
        """Release the engine's runtime (idempotent).

        The runtime may be shared through the registry; closing it here
        is still safe — the next ``fit`` (from this engine or any other
        registry user) lazily respawns it.
        """
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "ShardedInferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def fit(
        self,
        answers: AnswerSet,
        method: str | MethodSpec = "D&S",
        golden: Mapping[int, float] | None = None,
        initial_quality: np.ndarray | None = None,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        delta=None,
        **method_kwargs,
    ) -> InferenceResult:
        """Fit ``method`` on ``answers`` under the engine's policy.

        The result is identical (to within float merge order; bit-equal
        between tiers at equal ``n_shards``) whichever tier executes it.

        ``delta`` opts one fit into the incremental path: pass a
        :class:`~repro.inference.sharded.DeltaPlan` built from the
        previous fit's ``result.shard_state`` (plus ``warm_start``) to
        run a dirty-shard delta refit, or ``DeltaPlan()`` to collect
        that state on a full fit.  Unlike
        :class:`~repro.engine.engine.InferenceEngine` — which manages
        the cached state, the dirtiness flags and the fallbacks
        automatically under ``ExecutionPolicy(refit="delta")`` — this
        engine is per-fit, so the caller owns the cache.
        """
        spec = MethodSpec.coerce(method, method_kwargs)
        if not capabilities(spec.name).sharding:
            raise EngineError(
                f"{spec.name} does not support sharded EM; use the plain "
                f"fit path instead"
            )
        plan = self.policy.resolve(answers)
        self.last_mode = plan.mode
        fit_kwargs = dict(
            golden=golden,
            initial_quality=initial_quality,
            warm_start=warm_start,
            seed_posterior=seed_posterior,
            delta=delta,
        )
        # One spec for every construction site (the fitting instance
        # here, the runner's master spec, the worker-side rebuilds), so
        # a spec that ever depends on constructor state — seed included
        # — cannot diverge between tiers.
        spec = spec.with_defaults(seed=self.seed)
        if plan.mode == "process":
            instance = create(spec)
            if plan.persistent:
                with self._lease_runtime(plan, answers, spec) as runner:
                    return instance.fit(answers, shard_runner=runner,
                                        **fit_kwargs)
            with ProcessShardRunner(
                    answers, spec,
                    n_shards=plan.n_shards,
                    max_workers=plan.max_workers,
                    fault_policy=plan.fault_policy,
                    faults=plan.faults) as runner:
                return instance.fit(answers, shard_runner=runner,
                                    **fit_kwargs)
        instance = create(spec, policy=plan)
        return instance.fit(answers, **fit_kwargs)

    def __repr__(self) -> str:
        return f"ShardedInferenceEngine(policy={self.policy!r})"
