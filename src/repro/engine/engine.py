"""Live truth-inference facade over a streaming answer set.

:class:`InferenceEngine` owns a :class:`~repro.engine.stream.StreamingAnswerSet`
and a per-method cache of the last fitted state.  Callers push answers in
with :meth:`add_answers` and read the current truth out with
:meth:`current_truth` (or :meth:`infer` for the full
:class:`~repro.core.result.InferenceResult`); the engine decides whether a
fresh fit is needed at all, and whether it can be *warm* — resumed from
the cached posterior/parameters of the previous fit — instead of cold.

A warm refit is attempted when the method supports it
(``supports_warm_start``) and the stream only grew (append-only is
guaranteed by the stream).  Label-space growth no longer forces a cold
refit: label codes are append-only too, so the cached state is padded
along the choice axis (:func:`~repro.core.warmstart.pad_result_labels`)
and the iteration resumes — new labels start with a small seed mass and
earn their posterior like any other parameter.  Methods without
warm-start support simply refit cold; results are correct either way,
warmth only changes the iteration count.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Sequence

from ..core.policy import ExecutionPolicy, MethodSpec, warn_legacy
from ..core.registry import capabilities, create
from ..core.result import InferenceResult
from ..core.tasktypes import TaskType
from ..core.warmstart import pad_result_labels
from .stream import StreamingAnswerSet

_UNSET = object()


# Process-unique stream identities for runtime stream keys.  id() is
# unusable here: a dead engine's id can be reused by a new one while
# the shared runtime still holds the dead stream's placed segments.
_STREAM_TOKENS = itertools.count()


@dataclasses.dataclass
class _CachedFit:
    """Last fitted state for one method."""

    version: int
    replacements: int
    n_tasks: int
    n_workers: int
    n_choices: int
    method_kwargs: dict
    result: InferenceResult


class InferenceEngine:
    """Streaming truth inference with warm-started refits.

    Parameters
    ----------
    task_type:
        Task type of the stream (fixed for the engine's lifetime).
    n_choices, label_order, on_duplicate:
        Forwarded to :class:`StreamingAnswerSet`.
    seed:
        Seed forwarded to every method instantiation, so repeated fits
        are reproducible.
    policy:
        The :class:`~repro.core.policy.ExecutionPolicy` every refit
        runs under (default: unsharded in-process fits).  Resolved
        against each snapshot: the serial/thread tiers shard in
        process; the process tier leases a persistent
        :class:`~repro.engine.runtime.ShardRuntime` from ``registry``
        (default: the process-wide one), so every refit reuses the
        warm worker pools and a *grown* stream appends only its new
        answers to the placed shared-memory segments.  Methods without
        sharding support fall back to the plain fit either way.  The
        engine is a context manager — ``close()`` releases the runtime.

    The legacy spellings (``n_shards=``, ``shard_workers=``,
    ``shard_executor=``) still work — they assemble the equivalent
    policy and warn once.

    Example
    -------
    >>> engine = InferenceEngine(TaskType.DECISION_MAKING)
    >>> engine.add_answers([("t1", "w1", 1), ("t1", "w2", 1), ("t2", "w1", 0)])
    3
    >>> engine.current_truth("MV")
    {'t1': 1, 't2': 0}
    """

    def __init__(
        self,
        task_type: TaskType,
        n_choices: int | None = None,
        label_order: Sequence | None = None,
        on_duplicate: str = "keep",
        seed: int | None = 0,
        policy: ExecutionPolicy | None = None,
        registry=None,
        n_shards=_UNSET,
        shard_workers=_UNSET,
        shard_executor=_UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (("n_shards", n_shards),
                                ("shard_workers", shard_workers),
                                ("shard_executor", shard_executor))
            if value is not _UNSET
        }
        if legacy:
            if policy is not None:
                raise ValueError(
                    "pass either policy= or the legacy kwargs, not both"
                )
            executor = legacy.get("shard_executor", "thread")
            if executor not in ("thread", "process"):
                raise ValueError(
                    f"shard_executor must be 'thread' or 'process', "
                    f"got {executor!r}"
                )
            warn_legacy("InferenceEngine", legacy,
                        "policy=ExecutionPolicy(...)")
            policy = ExecutionPolicy.from_legacy(
                n_shards=legacy.get("n_shards", 1),
                shard_workers=legacy.get("shard_workers", 0),
                shard_executor=executor,
            )
        self.stream = StreamingAnswerSet(
            task_type=task_type,
            n_choices=n_choices,
            label_order=label_order,
            on_duplicate=on_duplicate,
        )
        self.seed = seed
        #: Default: plain unsharded fits, exactly what a bare engine
        #: always did.
        self.policy = (policy if policy is not None
                       else ExecutionPolicy(n_shards=1, executor="serial"))
        self._registry = registry
        self._runtime = None
        self._stream_token = next(_STREAM_TOKENS)
        self._cache: dict[str, _CachedFit] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_answer(self, task, worker, value) -> None:
        """Absorb one ``(task, worker, value)`` triple."""
        self.stream.add_answer(task, worker, value)

    def add_answers(self, records: Iterable[tuple]) -> int:
        """Absorb a batch of triples; returns the number ingested."""
        return self.stream.add_answers(records)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer(self, method: str | MethodSpec = "MV",
              force_cold: bool = False,
              **method_kwargs) -> InferenceResult:
        """Fit ``method`` on the current snapshot, reusing cached state.

        ``method`` is a registry name (extra keyword arguments become
        construction kwargs) or a :class:`~repro.core.policy.MethodSpec`.
        Returns the cached result outright when nothing changed since
        the last fit with an identical spec; otherwise refits — warm
        when possible, cold when not (first fit, changed kwargs, or a
        grown label space).  ``force_cold=True`` always performs a
        fresh cold fit, even on an unchanged stream, so callers can
        compare warm and cold results.
        """
        spec = MethodSpec.coerce(method, method_kwargs)
        method, method_kwargs = spec.name, spec.kwargs
        snapshot = self.stream.snapshot()
        cached = self._cache.get(method)
        if (not force_cold
                and cached is not None
                and cached.version == self.stream.version
                and cached.method_kwargs == method_kwargs):
            return cached.result

        plan = (self.policy.resolve(snapshot)
                if capabilities(method).sharding else None)
        sharded = plan is not None and plan.sharded
        use_runtime = sharded and plan.mode == "process"
        spec = spec.with_defaults(seed=self.seed)
        instance = create(
            spec, policy=plan if sharded and not use_runtime else None)
        warm = None
        if (not force_cold
                and cached is not None
                and instance.supports_warm_start
                and cached.method_kwargs == method_kwargs
                # Label codes are append-only, so a grown label space
                # warm-starts too (cached state padded below); a shrunk
                # one is impossible by construction.
                and cached.n_choices <= snapshot.n_choices
                and cached.n_tasks <= snapshot.n_tasks
                and cached.n_workers <= snapshot.n_workers
                # In-place replacements since the cached fit contradict
                # answers that fit was trained on — only a purely grown
                # stream satisfies the warm-start contract.
                and cached.replacements == self.stream.replacements):
            warm = cached.result
            if (cached.n_choices < snapshot.n_choices
                    and warm.posterior is not None):
                # Dynamic-label warm start: pad the cached posterior /
                # confusion state with seed mass for the new labels.
                warm = pad_result_labels(warm, snapshot.n_choices)
            elif cached.n_choices < snapshot.n_choices:
                warm = None  # no posterior to pad: refit cold
        if use_runtime:
            # Persistent process tier: the lease reuses warm pools, and
            # because the stream key only changes on in-place
            # replacements, a purely grown stream appends its new tail
            # to the placed segments instead of rebuilding them.
            stream_key = ("stream", self._stream_token,
                          self.stream.replacements)
            with self._lease_runtime(plan, snapshot, spec,
                                     stream_key) as runner:
                result = instance.fit(snapshot, warm_start=warm,
                                      shard_runner=runner)
        else:
            result = instance.fit(snapshot, warm_start=warm)
        self._cache[method] = _CachedFit(
            version=self.stream.version,
            replacements=self.stream.replacements,
            n_tasks=snapshot.n_tasks,
            n_workers=snapshot.n_workers,
            n_choices=snapshot.n_choices,
            method_kwargs=dict(method_kwargs),
            result=result,
        )
        return result

    def current_truth(self, method: str = "MV",
                      **method_kwargs) -> dict:
        """The inferred truth per task, keyed by external task id.

        Categorical label codes are decoded back to the external labels
        the stream ingested; numeric truths are returned as floats.
        """
        result = self.infer(method, **method_kwargs)
        snapshot = self.stream.snapshot()
        task_ids = snapshot.task_labels or [str(i) for i in
                                            range(snapshot.n_tasks)]
        if self.stream.task_type.is_categorical:
            return {
                task_ids[i]: self.stream.decode_value(result.truths[i])
                for i in range(snapshot.n_tasks)
            }
        return {task_ids[i]: float(result.truths[i])
                for i in range(snapshot.n_tasks)}

    def worker_quality(self, method: str = "MV",
                       **method_kwargs) -> dict[str, float]:
        """Each worker's fitted quality, keyed by external worker id."""
        result = self.infer(method, **method_kwargs)
        snapshot = self.stream.snapshot()
        worker_ids = snapshot.worker_labels or [str(i) for i in
                                               range(snapshot.n_workers)]
        return {worker_ids[w]: float(result.worker_quality[w])
                for w in range(snapshot.n_workers)}

    # ------------------------------------------------------------------
    # Runtime control
    # ------------------------------------------------------------------
    def _lease_runtime(self, plan, snapshot, spec: MethodSpec, stream_key):
        """Lease from the registry (retrying past concurrent closes)
        and remember the runtime for ``close()``/introspection."""
        from .runtime import get_runtime_registry

        registry = self._registry or get_runtime_registry()
        self._runtime, lease = registry.lease(
            plan, snapshot, spec, stream_key=stream_key)
        return lease

    def close(self) -> None:
        """Release the engine's shard runtime (idempotent; a no-op for
        the in-process tiers).  Shared runtimes respawn lazily on the
        next process-tier fit, so closing is always safe."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cache control
    # ------------------------------------------------------------------
    def invalidate(self, method: str | None = None) -> None:
        """Drop cached fits (all of them, or one method's)."""
        if method is None:
            self._cache.clear()
        else:
            self._cache.pop(method, None)

    def cached_methods(self) -> list[str]:
        """Method names with a cached fit."""
        return list(self._cache)

    def last_fit_was_warm(self, method: str) -> bool:
        """Whether the cached fit for ``method`` resumed from state."""
        cached = self._cache.get(method)
        if cached is None:
            return False
        return bool(cached.result.extras.get("warm_started", False))

    def __repr__(self) -> str:
        return (f"InferenceEngine({self.stream!r}, "
                f"cached={sorted(self._cache)})")
