"""Live truth-inference facade over a streaming answer set.

:class:`InferenceEngine` owns a :class:`~repro.engine.stream.StreamingAnswerSet`
and a per-method cache of the last fitted state.  Callers push answers in
with :meth:`add_answers` and read the current truth out with
:meth:`current_truth` (or :meth:`infer` for the full
:class:`~repro.core.result.InferenceResult`); the engine decides whether a
fresh fit is needed at all, and whether it can be *warm* — resumed from
the cached posterior/parameters of the previous fit — instead of cold.

A warm refit is attempted when the method supports it
(``supports_warm_start``) and the stream only grew (append-only is
guaranteed by the stream).  Label-space growth no longer forces a cold
refit: label codes are append-only too, so the cached state is padded
along the choice axis (:func:`~repro.core.warmstart.pad_result_labels`)
and the iteration resumes — new labels start with a small seed mass and
earn their posterior like any other parameter.  Methods without
warm-start support simply refit cold; results are correct either way,
warmth only changes the iteration count.
"""

from __future__ import annotations

import dataclasses
import itertools
import warnings
from typing import Iterable, Sequence

from ..core.policy import (
    ExecutionPolicy,
    MethodSpec,
    StorePolicy,
    warn_legacy,
)
from ..core.registry import capabilities, create
from ..core.result import InferenceResult
from ..core.tasktypes import TaskType
from ..core.warmstart import pad_result_labels
from ..exceptions import EngineError, RecoveryError, StoreError
from .stream import StreamingAnswerSet

_UNSET = object()


# Process-unique stream identities for runtime stream keys.  id() is
# unusable here: a dead engine's id can be reused by a new one while
# the shared runtime still holds the dead stream's placed segments.
_STREAM_TOKENS = itertools.count()


@dataclasses.dataclass
class _CachedFit:
    """Last fitted state for one method."""

    version: int
    replacements: int
    n_tasks: int
    n_workers: int
    n_choices: int
    method_kwargs: dict
    result: InferenceResult

    @property
    def shard_state(self):
        """Per-shard delta-refit cache the fit collected (or ``None``)."""
        return self.result.shard_state


class InferenceEngine:
    """Streaming truth inference with warm-started refits.

    Parameters
    ----------
    task_type:
        Task type of the stream (fixed for the engine's lifetime).
    n_choices, label_order, on_duplicate:
        Forwarded to :class:`StreamingAnswerSet`.
    seed:
        Seed forwarded to every method instantiation, so repeated fits
        are reproducible.
    policy:
        The :class:`~repro.core.policy.ExecutionPolicy` every refit
        runs under (default: unsharded in-process fits).  Resolved
        against each snapshot: the serial/thread tiers shard in
        process; the process tier leases a persistent
        :class:`~repro.engine.runtime.ShardRuntime` from ``registry``
        (default: the process-wide one), so every refit reuses the
        warm worker pools and a *grown* stream appends only its new
        answers to the placed shared-memory segments.  Methods without
        sharding support fall back to the plain fit either way.  The
        engine is a context manager — ``close()`` releases the runtime.

    The legacy spellings (``n_shards=``, ``shard_workers=``,
    ``shard_executor=``) still work — they assemble the equivalent
    policy and warn once.

    Example
    -------
    >>> engine = InferenceEngine(TaskType.DECISION_MAKING)
    >>> engine.add_answers([("t1", "w1", 1), ("t1", "w2", 1), ("t2", "w1", 0)])
    3
    >>> engine.current_truth("MV")
    {'t1': 1, 't2': 0}
    """

    def __init__(
        self,
        task_type: TaskType,
        n_choices: int | None = None,
        label_order: Sequence | None = None,
        on_duplicate: str = "keep",
        seed: int | None = 0,
        policy: ExecutionPolicy | None = None,
        registry=None,
        n_shards=_UNSET,
        shard_workers=_UNSET,
        shard_executor=_UNSET,
    ) -> None:
        legacy = {
            name: value
            for name, value in (("n_shards", n_shards),
                                ("shard_workers", shard_workers),
                                ("shard_executor", shard_executor))
            if value is not _UNSET
        }
        if legacy:
            if policy is not None:
                raise EngineError(
                    "pass either policy= or the legacy kwargs, not both"
                )
            executor = legacy.get("shard_executor", "thread")
            if executor not in ("thread", "process"):
                raise EngineError(
                    f"shard_executor must be 'thread' or 'process', "
                    f"got {executor!r}"
                )
            warn_legacy("InferenceEngine", legacy,
                        "policy=ExecutionPolicy(...)")
            policy = ExecutionPolicy.from_legacy(
                n_shards=legacy.get("n_shards", 1),
                shard_workers=legacy.get("shard_workers", 0),
                shard_executor=executor,
            )
        self.stream = StreamingAnswerSet(
            task_type=task_type,
            n_choices=n_choices,
            label_order=label_order,
            on_duplicate=on_duplicate,
        )
        self.seed = seed
        #: Default: plain unsharded fits, exactly what a bare engine
        #: always did.
        self.policy = (policy if policy is not None
                       else ExecutionPolicy(n_shards=1, executor="serial"))
        self._registry = registry
        self._runtime = None
        self._stream_token = next(_STREAM_TOKENS)
        self._cache: dict[str, _CachedFit] = {}
        #: Warm in-process shard sessions for delta refits, keyed by
        #: shard count (the serial/thread analogue of the persistent
        #: process runtime).
        self._sessions: dict = {}
        self._thread_pool = None
        # Durability (ExecutionPolicy.store): the constructor kwargs
        # are remembered verbatim — they are what the store's meta
        # must reproduce for recovery to rebuild this exact engine.
        self._init_n_choices = n_choices
        self._init_label_order = (list(label_order)
                                  if label_order is not None else None)
        self._store = None
        self._store_policy: StorePolicy | None = None
        self._spill = None
        self._snapshot_seqs: dict[str, int] = {}
        #: Lifetime fault-recovery totals over every fit this engine
        #: ran (``repro stream -v`` reports them at end of stream).
        self.fault_totals = {"respawns": 0, "retries": 0,
                             "timeouts": 0, "degraded": 0}
        if self.policy.store is not None:
            self._open_store(self.policy.store)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_answer(self, task, worker, value) -> None:
        """Absorb one ``(task, worker, value)`` triple."""
        self.stream.add_answer(task, worker, value)

    def add_answers(self, records: Iterable[tuple]) -> int:
        """Absorb a batch of triples; returns the number ingested.

        With a durable store attached (``policy.store``), the batch is
        acknowledged — this method returns — only after it is committed
        to the write-ahead answer log; a crash after that point loses
        nothing this method reported ingested.
        """
        return self.stream.add_answers(records)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The attached :class:`~repro.store.store.AnswerStore` (or None)."""
        return self._store

    def _open_store(self, store_policy: StorePolicy) -> None:
        """Open a *fresh* write-through store (constructor path).

        Writing through an existing non-empty log would interleave two
        histories, so that is refused — resuming one is
        :meth:`recover`'s job.
        """
        from ..store import AnswerStore

        store = AnswerStore(store_policy.path, sync=store_policy.sync)
        existing = len(store.log)
        if existing:
            store.close()
            raise StoreError(
                f"store at {store_policy.path} already holds {existing} "
                f"answers; resume it with InferenceEngine.recover() "
                f"instead of writing a new stream through it"
            )
        store.log.write_meta(self._store_meta())
        self._bind_store(store, store_policy)

    def _store_meta(self) -> dict:
        from ..store.log import FORMAT_VERSION, encode_field

        label_order = self._init_label_order
        return {
            "format": FORMAT_VERSION,
            "task_type": self.stream.task_type.value,
            "n_choices": self._init_n_choices,
            "label_order": ([encode_field(label) for label in label_order]
                            if label_order is not None else None),
            "on_duplicate": self.stream.on_duplicate,
            "seed": self.seed,
        }

    def _bind_store(self, store, store_policy: StorePolicy) -> None:
        self._store = store
        self._store_policy = store_policy
        if store_policy.spill_ttl is not None:
            from ..store import ShardSpill

            self._spill = ShardSpill(store.spill_dir,
                                     ttl=store_policy.spill_ttl)
        self.stream.attach_log(store.log)

    def _maybe_snapshot(self, method: str) -> None:
        """Snapshot a fresh fit when it is due (see ``snapshot_every``)."""
        cached = self._cache[method]
        last = self._snapshot_seqs.get(method)
        if last is None:
            last = self._store.snapshots.latest_seq(method)
        if last and cached.version - last < self._store_policy.snapshot_every:
            return
        self._store.snapshots.save(
            method,
            seq=cached.version,
            replacements=cached.replacements,
            payload={
                "result": cached.result,
                "method_kwargs": cached.method_kwargs,
                "n_tasks": cached.n_tasks,
                "n_workers": cached.n_workers,
                "n_choices": cached.n_choices,
            },
            keep=self._store_policy.snapshot_keep,
        )
        self._snapshot_seqs[method] = cached.version

    def spill_idle(self) -> int:
        """Spill cold shards now (see ``StorePolicy.spill_ttl``);
        returns how many spilled.  Also runs automatically after each
        refit when spilling is enabled."""
        return sum(session.spill_idle()
                   for session in self._sessions.values())

    @classmethod
    def recover(cls, path: str, *, policy: ExecutionPolicy | None = None,
                registry=None, replay_chunk: int = 65536
                ) -> "InferenceEngine":
        """Resume a persisted stream from the store at ``path`` — warm.

        Rebuilds the engine from the store's meta (task type, label
        order, duplicate policy, seed), replays every *committed* log
        record into a fresh stream (a batch interrupted mid-commit by
        a crash was never acknowledged and is invisible here), verifies
        the replay bit-faithfully against the log's version and
        replacement counters, then seeds the fit cache — and, for
        delta-capable policies, the warm shard layout — from the newest
        snapshots.  The first :meth:`infer` after recovery therefore
        resumes from the last snapshot and refits only the replayed
        tail (a delta refit when the shard cuts align), instead of
        fitting the whole history cold.

        ``policy`` defaults to plain serial fits; its ``store`` field,
        if set, must point at ``path`` (it configures snapshot cadence
        and spill for the resumed engine).
        """
        from ..store import AnswerStore
        from ..store.log import decode_field

        if policy is not None and policy.store is not None:
            store_policy = policy.store
            if store_policy.path != path:
                raise EngineError(
                    f"policy.store.path {store_policy.path!r} does not "
                    f"match the recovery path {path!r}"
                )
        else:
            store_policy = StorePolicy(path=path)
        store = AnswerStore(path, sync=store_policy.sync)
        try:
            meta = store.log.read_meta()
            if not meta:
                raise RecoveryError(
                    f"no answer store found at {path} (empty database)"
                )
            label_order = meta.get("label_order")
            if label_order is not None:
                label_order = [decode_field(label)
                               for label in label_order]
            base_policy = (policy if policy is not None
                           else ExecutionPolicy(n_shards=1,
                                                executor="serial"))
            engine = cls(
                task_type=TaskType(meta["task_type"]),
                n_choices=meta.get("n_choices"),
                label_order=label_order,
                on_duplicate=meta.get("on_duplicate", "keep"),
                seed=meta.get("seed", 0),
                policy=dataclasses.replace(base_policy, store=None),
                registry=registry,
            )
            # Replay with the log detached: replayed records must not
            # be appended to the log again.
            for chunk in store.log.replay(replay_chunk):
                engine.stream.add_answers(chunk)
            if engine.stream.version != store.log.last_seq:
                raise RecoveryError(
                    f"replay of {path} produced stream version "
                    f"{engine.stream.version} but the log ends at seq "
                    f"{store.log.last_seq}; the log is corrupt or was "
                    f"written under a different stream configuration"
                )
            if engine.stream.replacements != store.log.replace_count:
                raise RecoveryError(
                    f"replay of {path} produced "
                    f"{engine.stream.replacements} replacements but the "
                    f"log recorded {store.log.replace_count}; duplicate "
                    f"policy outcomes diverged — refusing to serve a "
                    f"non-bit-faithful recovery"
                )
        except BaseException:
            store.close()
            raise
        engine.policy = dataclasses.replace(base_policy,
                                            store=store_policy)
        engine._bind_store(store, store_policy)
        engine._seed_from_snapshots()
        return engine

    def _seed_from_snapshots(self) -> None:
        """Warm the fit cache (and shard sessions) from stored snapshots."""
        snapshot = (self.stream.snapshot() if self.stream.n_answers
                    else None)
        for method in self._store.snapshots.methods():
            row = self._store.snapshots.load_latest(
                method, max_seq=self.stream.version)
            if row is None:
                continue
            seq, replacements, payload = row
            if replacements > self.stream.replacements:
                continue  # ahead of the replayed stream: unusable
            result = payload["result"]
            self._cache[method] = _CachedFit(
                version=seq,
                replacements=replacements,
                n_tasks=payload["n_tasks"],
                n_workers=payload["n_workers"],
                n_choices=payload["n_choices"],
                method_kwargs=dict(payload["method_kwargs"]),
                result=result,
            )
            self._snapshot_seqs[method] = seq
            if (snapshot is not None
                    and result.shard_state is not None
                    and self.policy.refit == "delta"
                    # Replacements in the replayed tail contradict the
                    # snapshot; the warm gate will reject it anyway.
                    and replacements == self.stream.replacements):
                self._adopt_session(result.shard_state, snapshot)

    def _adopt_session(self, state, snapshot) -> None:
        """Seed the in-process shard session with a recovered
        :class:`~repro.inference.sharded.ShardState`'s pinned cuts, so
        the first post-recovery refit is a true delta refit."""
        from .runtime import SerialShardSession

        plan = self.policy.resolve(snapshot)
        if (not plan.sharded or plan.mode == "process"
                # The same demotions _delta_plan/_refresh would apply:
                # adopt only a layout the next refit can actually use.
                or plan.n_shards != state.n_shards
                or state.task_cuts[-1] > snapshot.n_tasks
                or snapshot.n_answers < state.n_answers
                or snapshot.n_answers > 2 * max(state.base_answers, 1)):
            return
        session = self._sessions.get(plan.n_shards)
        if session is None:
            session = SerialShardSession(plan.n_shards, spill=self._spill)
            self._sessions[plan.n_shards] = session
        stream_key = ("stream", self._stream_token,
                      self.stream.replacements)
        session.adopt(snapshot, state, stream_key=stream_key)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer(self, method: str | MethodSpec = "MV",
              force_cold: bool = False,
              **method_kwargs) -> InferenceResult:
        """Fit ``method`` on the current snapshot, reusing cached state.

        ``method`` is a registry name (extra keyword arguments become
        construction kwargs) or a :class:`~repro.core.policy.MethodSpec`.
        Returns the cached result outright when nothing changed since
        the last fit with an identical spec; otherwise refits — warm
        when possible, cold when not (first fit, changed kwargs, or a
        grown label space).  ``force_cold=True`` always performs a
        fresh cold fit, even on an unchanged stream, so callers can
        compare warm and cold results.
        """
        spec = MethodSpec.coerce(method, method_kwargs)
        method, method_kwargs = spec.name, spec.kwargs
        snapshot = self.stream.snapshot()
        cached = self._cache.get(method)
        if (not force_cold
                and cached is not None
                and cached.version == self.stream.version
                and cached.method_kwargs == method_kwargs):
            return cached.result

        plan = (self.policy.resolve(snapshot)
                if capabilities(method).sharding else None)
        sharded = plan is not None and plan.sharded
        use_runtime = sharded and plan.mode == "process"
        spec = spec.with_defaults(seed=self.seed)
        instance = create(
            spec, policy=plan if sharded and not use_runtime else None)
        if (getattr(self.policy, "refit", "full") == "delta"
                and not instance.supports_delta):
            # The method-level warning only fires when the policy is
            # handed to fit(); full-only methods never receive it here,
            # so surface the ignored refit mode at the engine too.
            warnings.warn(
                f"{method} can only refit full; ExecutionPolicy "
                f'refit="delta" is ignored (no per-family delta '
                f"contract — see Capabilities.delta)",
                UserWarning, stacklevel=2)
        warm = None
        if (not force_cold
                and cached is not None
                and instance.supports_warm_start
                and cached.method_kwargs == method_kwargs
                # Label codes are append-only, so a grown label space
                # warm-starts too (cached state padded below); a shrunk
                # one is impossible by construction.
                and cached.n_choices <= snapshot.n_choices
                and cached.n_tasks <= snapshot.n_tasks
                and cached.n_workers <= snapshot.n_workers
                # In-place replacements since the cached fit contradict
                # answers that fit was trained on — only a purely grown
                # stream satisfies the warm-start contract.
                and cached.replacements == self.stream.replacements):
            warm = cached.result
            if (cached.n_choices < snapshot.n_choices
                    and warm.posterior is not None):
                # Dynamic-label warm start: pad the cached posterior /
                # confusion state with seed mass for the new labels.
                warm = pad_result_labels(warm, snapshot.n_choices)
            elif cached.n_choices < snapshot.n_choices:
                warm = None  # no posterior to pad: refit cold
        delta = None
        if plan is not None and self.policy.refit == "delta":
            delta = self._delta_plan(plan, snapshot, cached, warm)
        if use_runtime:
            # Persistent process tier: the lease reuses warm pools, and
            # because the stream key only changes on in-place
            # replacements, a purely grown stream appends its new tail
            # to the placed segments instead of rebuilding them.
            stream_key = ("stream", self._stream_token,
                          self.stream.replacements)
            with self._lease_runtime(plan, snapshot, spec,
                                     stream_key) as runner:
                if delta is not None and delta.prev is not None \
                        and not self._lease_matches(runner, delta.prev):
                    # The runtime re-placed (rebalance, eviction, …):
                    # the cached per-shard state no longer aligns with
                    # the placed cuts.  Refit full and re-collect.
                    delta = delta.collect_only()
                result = instance.fit(snapshot, warm_start=warm,
                                      shard_runner=runner, delta=delta)
        else:
            runner = None
            if delta is not None and instance.supports_sharding:
                # In-process delta refits run over the warm session:
                # the task-sorted shard arrays and the spec's frozen
                # operators persist across refits, extended (and
                # selectively invalidated) by just the new tail.
                runner = self._session_runner(plan, snapshot, instance)
                if (delta.prev is not None
                        and not self._lease_matches(runner, delta.prev)):
                    # The session re-placed (rebalance): cached state
                    # no longer aligns.  Refit full and re-collect.
                    delta = delta.collect_only()
            result = instance.fit(snapshot, warm_start=warm,
                                  shard_runner=runner, delta=delta)
        if result.fit_stats is not None:
            for key in self.fault_totals:
                self.fault_totals[key] += getattr(result.fit_stats, key, 0)
        self._cache[method] = _CachedFit(
            version=self.stream.version,
            replacements=self.stream.replacements,
            n_tasks=snapshot.n_tasks,
            n_workers=snapshot.n_workers,
            n_choices=snapshot.n_choices,
            method_kwargs=dict(method_kwargs),
            result=result,
        )
        if self._store is not None:
            self._maybe_snapshot(method)
        if self._spill is not None:
            self.spill_idle()
        return result

    def current_truth(self, method: str = "MV",
                      **method_kwargs) -> dict:
        """The inferred truth per task, keyed by external task id.

        Categorical label codes are decoded back to the external labels
        the stream ingested; numeric truths are returned as floats.
        """
        result = self.infer(method, **method_kwargs)
        snapshot = self.stream.snapshot()
        task_ids = snapshot.task_labels or [str(i) for i in
                                            range(snapshot.n_tasks)]
        if self.stream.task_type.is_categorical:
            return {
                task_ids[i]: self.stream.decode_value(result.truths[i])
                for i in range(snapshot.n_tasks)
            }
        return {task_ids[i]: float(result.truths[i])
                for i in range(snapshot.n_tasks)}

    def worker_quality(self, method: str = "MV",
                       **method_kwargs) -> dict[str, float]:
        """Each worker's fitted quality, keyed by external worker id."""
        result = self.infer(method, **method_kwargs)
        snapshot = self.stream.snapshot()
        worker_ids = snapshot.worker_labels or [str(i) for i in
                                               range(snapshot.n_workers)]
        return {worker_ids[w]: float(result.worker_quality[w])
                for w in range(snapshot.n_workers)}

    # ------------------------------------------------------------------
    # Delta refits
    # ------------------------------------------------------------------
    def _delta_plan(self, plan, snapshot, cached: _CachedFit | None, warm):
        """The :class:`~repro.inference.sharded.DeltaPlan` this refit
        runs under (policy ``refit="delta"``).

        A true delta refit needs a warm start *and* a cached
        :class:`~repro.inference.sharded.ShardState` that still aligns
        with the stream: same shard count, no label growth, and a
        stream that has not doubled since the cuts were placed (past
        that, a full refit re-places the cuts, mirroring the runtime's
        rebalance rule).  Anything else demotes to a collecting full
        fit, so the *next* refit has a state to resume from.
        """
        from ..inference.sharded import DeltaPlan, dirty_shards

        plan_kwargs = dict(freeze_tol=self.policy.freeze_tol,
                           verify_every=self.policy.verify_every)
        state = cached.shard_state if cached is not None else None
        if (warm is None or state is None
                or cached.n_choices != snapshot.n_choices
                or state.task_cuts[-1] > snapshot.n_tasks
                or snapshot.n_answers < state.n_answers
                or snapshot.n_answers > 2 * max(state.base_answers, 1)):
            return DeltaPlan(**plan_kwargs)
        dirty = dirty_shards(state.task_cuts,
                             snapshot.tasks[state.n_answers:],
                             snapshot.n_tasks)
        return DeltaPlan(prev=state, dirty=dirty, **plan_kwargs)

    def _session_runner(self, plan, snapshot, instance):
        """A warm in-process shard runner for this refit (serial and
        thread tiers), from the per-shard-count session."""
        from .runtime import SerialShardSession

        session = self._sessions.get(plan.n_shards)
        if session is None:
            session = SerialShardSession(plan.n_shards, spill=self._spill)
            self._sessions[plan.n_shards] = session
        pool = None
        if plan.mode == "thread" and plan.max_workers > 1:
            pool = self._ensure_thread_pool(plan.max_workers)
        stream_key = ("stream", self._stream_token,
                      self.stream.replacements)
        return session.runner(snapshot, instance, stream_key=stream_key,
                              pool=pool)

    def _ensure_thread_pool(self, width: int):
        from concurrent.futures import ThreadPoolExecutor

        if self._thread_pool is not None and self._thread_pool[0] != width:
            self._thread_pool[1].shutdown(wait=True)
            self._thread_pool = None
        if self._thread_pool is None:
            self._thread_pool = (width, ThreadPoolExecutor(
                max_workers=width))
        return self._thread_pool[1]

    @staticmethod
    def _lease_matches(runner, state) -> bool:
        """Whether a lease's placed shard cuts still align with a
        cached :class:`~repro.inference.sharded.ShardState`."""
        ranges = runner.task_ranges
        if len(ranges) != state.n_shards:
            return False
        return all(start == state.task_cuts[k]
                   for k, (start, _) in enumerate(ranges)) \
            and all(stop == state.task_cuts[k + 1]
                    for k, (_, stop) in enumerate(ranges[:-1]))

    # ------------------------------------------------------------------
    # Runtime control
    # ------------------------------------------------------------------
    def _lease_runtime(self, plan, snapshot, spec: MethodSpec, stream_key):
        """Lease from the registry (retrying past concurrent closes)
        and remember the runtime for ``close()``/introspection."""
        from .runtime import get_runtime_registry

        registry = self._registry or get_runtime_registry()
        self._runtime, lease = registry.lease(
            plan, snapshot, spec, stream_key=stream_key)
        return lease

    def close(self) -> None:
        """Release the engine's shard runtime, warm sessions, thread
        pool and durable store (idempotent).  Shared runtimes respawn
        lazily on the next process-tier fit, so closing is always
        safe; the store reopens via :meth:`recover`."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None
        self._sessions.clear()
        if self._thread_pool is not None:
            self._thread_pool[1].shutdown(wait=True)
            self._thread_pool = None
        if self._store is not None:
            self.stream.attach_log(None)
            self._store.close()
            self._store = None

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cache control
    # ------------------------------------------------------------------
    def invalidate(self, method: str | None = None) -> None:
        """Drop cached fits (all of them, or one method's)."""
        if method is None:
            self._cache.clear()
        else:
            self._cache.pop(method, None)

    def cached_methods(self) -> list[str]:
        """Method names with a cached fit."""
        return list(self._cache)

    def last_fit_was_warm(self, method: str) -> bool:
        """Whether the cached fit for ``method`` resumed from state."""
        cached = self._cache.get(method)
        if cached is None:
            return False
        return bool(cached.result.extras.get("warm_started", False))

    def __repr__(self) -> str:
        return (f"InferenceEngine({self.stream!r}, "
                f"cached={sorted(self._cache)})")
