"""Streaming truth-inference engine (online serving layer).

The paper frames truth inference as a two-step iteration over a *growing*
set of worker answers, but the core library is batch-shaped: every
:meth:`~repro.core.base.TruthInferenceMethod.fit` call starts from
scratch.  This package adds the online layer:

* :class:`~repro.engine.stream.StreamingAnswerSet` — an append-only
  ``(task, worker, value)`` buffer that absorbs new answers, tasks and
  workers and emits immutable :class:`~repro.core.answers.AnswerSet`
  snapshots cheaply, reusing its incrementally maintained index/label
  tables instead of re-indexing;
* :class:`~repro.engine.engine.InferenceEngine` — a facade that owns the
  stream, caches the last fitted state per method, and serves
  ``add_answers(...)`` / ``current_truth(...)`` round trips, refitting
  *warm* whenever it can;
* :class:`~repro.engine.batch.BatchRunner` — a :mod:`concurrent.futures`
  fan-out for the (dataset, method) grids the comparison experiments run.

Streaming protocol
------------------
The stream is **append-only**: task, worker and label indices are handed
out in order of first appearance and never reassigned, so any state
fitted on an earlier snapshot remains index-compatible with every later
snapshot.  Warm starts build on exactly that guarantee: methods that set
``supports_warm_start = True`` (D&S, LFC, ZC, GLAD, LFC_N) accept a
previous :class:`~repro.core.result.InferenceResult` via
``fit(answers, warm_start=...)``, keep the fitted parameters of known
tasks/workers, seed newly arrived tasks from majority voting (and new
workers from neutral defaults), and resume the two-step iteration — which
then converges in a handful of iterations instead of tens.  Growing the
*label space* breaks index compatibility, so the engine silently falls
back to a cold fit in that case (fix ``n_choices``/``label_order`` up
front to avoid it).

Example
-------
>>> from repro.core.tasktypes import TaskType
>>> from repro.engine import InferenceEngine
>>> engine = InferenceEngine(TaskType.DECISION_MAKING, seed=0)
>>> engine.add_answers([("t1", "ann", 1), ("t1", "bob", 1),
...                     ("t2", "ann", 0), ("t2", "bob", 0),
...                     ("t2", "cyd", 0)])
5
>>> engine.current_truth("D&S")            # cold fit
{'t1': 1, 't2': 0}
>>> engine.add_answers([("t3", "cyd", 1)])  # stream grows...
1
>>> truth = engine.current_truth("D&S")     # ...warm refit
>>> engine.last_fit_was_warm("D&S")
True
"""

from .batch import BatchJob, BatchRunner
from .engine import InferenceEngine
from .stream import StreamingAnswerSet

__all__ = [
    "BatchJob",
    "BatchRunner",
    "InferenceEngine",
    "StreamingAnswerSet",
]
