"""Streaming truth-inference engine (online serving layer).

The paper frames truth inference as a two-step iteration over a *growing*
set of worker answers, but the core library is batch-shaped: every
:meth:`~repro.core.base.TruthInferenceMethod.fit` call starts from
scratch.  This package adds the online layer:

* :class:`~repro.engine.stream.StreamingAnswerSet` — an append-only
  ``(task, worker, value)`` buffer that absorbs new answers, tasks and
  workers and emits immutable :class:`~repro.core.answers.AnswerSet`
  snapshots cheaply, reusing its incrementally maintained index/label
  tables instead of re-indexing;
* :class:`~repro.engine.engine.InferenceEngine` — a facade that owns the
  stream, caches the last fitted state per method, and serves
  ``add_answers(...)`` / ``current_truth(...)`` round trips, refitting
  *warm* whenever it can;
* :class:`~repro.engine.batch.BatchRunner` — a :mod:`concurrent.futures`
  fan-out for the (dataset, method) grids the comparison experiments run,
  over threads or processes, seeding every cold fit from one shared
  majority-vote posterior per dataset;
* :class:`~repro.engine.sharded.ShardedInferenceEngine` /
  :class:`~repro.engine.sharded.ProcessShardRunner` — the multi-core
  sharded-EM tier (see below).

Streaming protocol
------------------
The stream is **append-only**: task, worker and label indices are handed
out in order of first appearance and never reassigned, so any state
fitted on an earlier snapshot remains index-compatible with every later
snapshot.  Warm starts build on exactly that guarantee: methods that set
``supports_warm_start = True`` (D&S, LFC, ZC, GLAD, LFC_N) accept a
previous :class:`~repro.core.result.InferenceResult` via
``fit(answers, warm_start=...)``, keep the fitted parameters of known
tasks/workers, seed newly arrived tasks from majority voting (and new
workers from neutral defaults), and resume the two-step iteration — which
then converges in a handful of iterations instead of tens.  Label codes
are append-only too, so a *grown label space* also warm-starts: the
engine pads the cached posterior/confusion state with a small seed mass
for the new labels (:func:`~repro.core.warmstart.pad_result_labels`)
instead of refitting cold.

Shard/merge protocol
--------------------
Every EM method above is expressed as **mergeable sufficient
statistics** over contiguous task-range shards
(:mod:`repro.inference.sharded`): E-steps map over shards (each task's
posterior depends only on that task's answers), M-steps run
``accumulate(shard, posterior_block) → SufficientStats`` per shard,
``merge`` the bundles by field-wise addition, and ``finalize`` the
totals into global parameters.  One shard *is* the plain fit,
bit-for-bit.  Execution tiers:

* **serial / threads** — ``create(method,
  policy=ExecutionPolicy(n_shards=.., executor="thread",
  max_workers=..))``; cheap, in-process, identical numbers;
* **processes** — the answer arrays live in
  :mod:`multiprocessing.shared_memory` and the phases are dispatched to
  pinned single-worker pools; prefer it for large inputs on multi-core
  hosts, where thread tiers stall on the GIL-holding NumPy kernels.
  GLAD trades one message round per gradient step, so it needs bigger
  shards than the one-round-trip statistics methods before processes
  win.  ``ExecutionPolicy(executor="auto")`` — the default — applies
  exactly that tiering automatically, and
  :class:`~repro.engine.sharded.ShardedInferenceEngine` is its facade.

How to run and what to run are first-class objects
(:class:`~repro.core.policy.ExecutionPolicy` /
:class:`~repro.core.policy.MethodSpec`), accepted as ``policy=`` /
method arguments by ``create``, ``fit``, the engines, the batch
runners and the CLI; answer input is a declared-schema
:class:`~repro.engine.sources.AnswerSource` (CSV, in-memory records,
or a live line-delimited stream such as stdin or a socket).

Pools and segments are **persistent** (:mod:`repro.engine.runtime`):
repeated fits lease a :class:`~repro.engine.runtime.ShardRuntime` from
a shared :class:`~repro.engine.runtime.RuntimeRegistry` — a method
sweep or a stream of refits spawns processes once, and a grown stream
appends only its new tail to the placed segments.
:class:`~repro.engine.sharded.ProcessShardRunner` remains the one-shot
per-fit spelling.

Example
-------
>>> from repro.core.tasktypes import TaskType
>>> from repro.engine import InferenceEngine
>>> engine = InferenceEngine(TaskType.DECISION_MAKING, seed=0)
>>> engine.add_answers([("t1", "ann", 1), ("t1", "bob", 1),
...                     ("t2", "ann", 0), ("t2", "bob", 0),
...                     ("t2", "cyd", 0)])
5
>>> engine.current_truth("D&S")            # cold fit
{'t1': 1, 't2': 0}
>>> engine.add_answers([("t3", "cyd", 1)])  # stream grows...
1
>>> truth = engine.current_truth("D&S")     # ...warm refit
>>> engine.last_fit_was_warm("D&S")
True
"""

from ..core.policy import (
    ExecutionPlan,
    ExecutionPolicy,
    MethodSpec,
    StorePolicy,
)
from .batch import BatchJob, BatchRunner
from .engine import InferenceEngine
from .runtime import (
    RuntimeLease,
    RuntimeRegistry,
    SerialShardSession,
    ShardRuntime,
    get_runtime_registry,
)
from .sharded import ProcessShardRunner, ShardedInferenceEngine
from .sources import (
    AnswerSource,
    CsvAnswerSource,
    IterableAnswerSource,
    LineAnswerSource,
    TaskSchema,
)
from .stream import StreamingAnswerSet

__all__ = [
    "AnswerSource",
    "BatchJob",
    "BatchRunner",
    "CsvAnswerSource",
    "ExecutionPlan",
    "ExecutionPolicy",
    "InferenceEngine",
    "IterableAnswerSource",
    "LineAnswerSource",
    "MethodSpec",
    "ProcessShardRunner",
    "RuntimeLease",
    "RuntimeRegistry",
    "SerialShardSession",
    "ShardRuntime",
    "ShardedInferenceEngine",
    "StorePolicy",
    "StreamingAnswerSet",
    "TaskSchema",
    "get_runtime_registry",
]
