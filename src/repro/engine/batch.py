"""Parallel fan-out of (dataset, method) inference jobs.

The comparison experiments (Table 6 and the sweeps) run many independent
``method × dataset`` fits; :class:`BatchRunner` fans them across a
:mod:`concurrent.futures` executor.  NumPy releases the GIL inside the
heavy array kernels, so the default thread pool already overlaps most of
the work without any pickling cost; ``executor="process"`` switches to a
:class:`~concurrent.futures.ProcessPoolExecutor` for grids dominated by
GIL-holding kernels (the GLAD-heavy ones).  Results come back in job
order and the first worker exception propagates to the caller.

Cold fits of every categorical EM method start from the majority-vote
posterior.  The runner computes that posterior **once per dataset** and
seeds every method that accepts it (``supports_seed_posterior``) instead
of letting each fit recompute identical vote counts — a pure dedup: the
seeded values are exactly what the methods would have derived.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..datasets.schema import Dataset
from ..experiments.runner import MethodRun, run_method

_EXECUTORS = {
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


@dataclasses.dataclass
class BatchJob:
    """One unit of work: fit ``method`` on ``dataset`` and score it."""

    dataset: Dataset
    method: str
    seed: int = 0
    golden: Mapping[int, float] | None = None
    initial_quality: object = None
    method_kwargs: dict | None = None
    #: Optional shared majority-vote posterior to seed a cold fit from;
    #: filled in by :meth:`BatchRunner.run` when left as ``None``.
    seed_posterior: np.ndarray | None = None
    #: ``"process"`` runs a sharded fit (``n_shards`` in
    #: ``method_kwargs``) on the shared persistent runtime; filled in
    #: from :attr:`BatchRunner.shard_executor` when left as ``None``.
    shard_executor: str | None = None


class BatchRunner:
    """Run a list of :class:`BatchJob` concurrently.

    Parameters
    ----------
    max_workers:
        Executor pool size; defaults to ``min(8, cpu_count)``.
    executor_factory:
        Callable returning a :class:`concurrent.futures.Executor` when
        invoked with ``max_workers=...``.  Defaults to
        :class:`ThreadPoolExecutor`.
    executor:
        Convenience selector overriding ``executor_factory``:
        ``"thread"`` or ``"process"``.  Process pools pay pickling of
        datasets/results but overlap GIL-bound kernels on real cores.
    share_mv_seed:
        Compute the majority-vote posterior once per (categorical)
        dataset and seed every supporting method's cold fit from it.
    shard_executor:
        ``"process"`` routes each *sharded* fit through the shared
        persistent :class:`~repro.engine.runtime.ShardRuntime`
        registry: a sweep of methods over one dataset places the
        answers in shared memory and spawns the worker pools once.
        Concurrent thread jobs serialise on the runtime's lease lock
        (each fit is internally parallel, so this is the intended
        schedule).  Combining it with ``executor="process"`` nests
        pools inside the job workers — legal, rarely useful.
    """

    def __init__(self, max_workers: int | None = None,
                 executor_factory=ThreadPoolExecutor,
                 executor: str | None = None,
                 share_mv_seed: bool = True,
                 shard_executor: str | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if executor is not None:
            if executor not in _EXECUTORS:
                raise ValueError(
                    f"executor must be one of {sorted(_EXECUTORS)}, "
                    f"got {executor!r}"
                )
            executor_factory = _EXECUTORS[executor]
        if shard_executor not in (None, "thread", "process"):
            raise ValueError(
                f"shard_executor must be 'thread' or 'process', "
                f"got {shard_executor!r}"
            )
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.executor_factory = executor_factory
        self.share_mv_seed = share_mv_seed
        self.shard_executor = shard_executor

    # ------------------------------------------------------------------
    def _seed_posteriors(self, jobs: Sequence[BatchJob]) -> None:
        """Fill ``job.seed_posterior`` from a per-dataset MV cache."""
        from ..core.framework import normalize_rows
        from ..core.registry import method_class

        cache: dict[int, np.ndarray] = {}
        for job in jobs:
            if job.seed_posterior is not None:
                continue
            if not job.dataset.task_type.is_categorical:
                continue
            if not getattr(method_class(job.method),
                           "supports_seed_posterior", False):
                continue
            key = id(job.dataset)
            if key not in cache:
                cache[key] = normalize_rows(job.dataset.answers.vote_counts())
            job.seed_posterior = cache[key]

    def run(self, jobs: Sequence[BatchJob]) -> list[MethodRun]:
        """Execute all jobs; results are returned in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        for job in jobs:
            if job.shard_executor is None:
                job.shard_executor = self.shard_executor
        if self.share_mv_seed:
            self._seed_posteriors(jobs)
        if len(jobs) == 1 or self.max_workers == 1:
            return [self._run_one(job) for job in jobs]
        with self.executor_factory(max_workers=self.max_workers) as pool:
            futures = [pool.submit(self._run_one, job) for job in jobs]
            return [future.result() for future in futures]

    @staticmethod
    def _run_one(job: BatchJob) -> MethodRun:
        return run_method(
            job.method,
            job.dataset,
            seed=job.seed,
            golden=job.golden,
            initial_quality=job.initial_quality,
            method_kwargs=job.method_kwargs,
            seed_posterior=job.seed_posterior,
            shard_executor=job.shard_executor,
        )

    def run_grid(
        self,
        datasets: Iterable[Dataset],
        methods: Iterable[str] | None = None,
        seed: int = 0,
        n_shards: int | None = None,
    ) -> list[MethodRun]:
        """Cross every dataset with every applicable method and run all.

        Methods inapplicable to a dataset's task type are skipped, like
        the '×' cells of the paper's Table 6.  With ``methods=None`` each
        dataset gets every registered method for its task type.
        ``n_shards`` turns on sharded EM for the methods that support it.
        """
        from ..core.registry import methods_for_task_type

        jobs = []
        for dataset in datasets:
            applicable = methods_for_task_type(dataset.task_type)
            selected = (applicable if methods is None
                        else [m for m in methods if m in applicable])
            jobs.extend(
                BatchJob(dataset=dataset, method=name, seed=seed,
                         method_kwargs=_sharding_kwargs(name, n_shards))
                for name in selected
            )
        return self.run(jobs)


def _sharding_kwargs(method: str, n_shards: int | None) -> dict | None:
    """``{"n_shards": n}`` when the method supports sharded EM."""
    from ..core.registry import method_class

    if not n_shards or n_shards <= 1:
        return None
    if not getattr(method_class(method), "supports_sharding", False):
        return None
    return {"n_shards": n_shards}
