"""Parallel fan-out of (dataset, method) inference jobs.

The comparison experiments (Table 6 and the sweeps) run many independent
``method × dataset`` fits; :class:`BatchRunner` fans them across a
:mod:`concurrent.futures` executor.  NumPy releases the GIL inside the
heavy array kernels, so the default thread pool already overlaps most of
the work without any pickling cost; results come back in job order and
the first worker exception propagates to the caller.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

from ..datasets.schema import Dataset
from ..experiments.runner import MethodRun, run_method


@dataclasses.dataclass
class BatchJob:
    """One unit of work: fit ``method`` on ``dataset`` and score it."""

    dataset: Dataset
    method: str
    seed: int = 0
    golden: Mapping[int, float] | None = None
    initial_quality: object = None
    method_kwargs: dict | None = None


class BatchRunner:
    """Run a list of :class:`BatchJob` concurrently.

    Parameters
    ----------
    max_workers:
        Executor pool size; defaults to ``min(8, cpu_count)``.
    executor_factory:
        Callable returning a :class:`concurrent.futures.Executor` when
        invoked with ``max_workers=...``.  Defaults to
        :class:`ThreadPoolExecutor`; swap in a process pool for
        pickle-friendly CPU-bound workloads that do not vectorise.
    """

    def __init__(self, max_workers: int | None = None,
                 executor_factory=ThreadPoolExecutor) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.executor_factory = executor_factory

    def run(self, jobs: Sequence[BatchJob]) -> list[MethodRun]:
        """Execute all jobs; results are returned in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if len(jobs) == 1 or self.max_workers == 1:
            return [self._run_one(job) for job in jobs]
        with self.executor_factory(max_workers=self.max_workers) as pool:
            futures = [pool.submit(self._run_one, job) for job in jobs]
            return [future.result() for future in futures]

    @staticmethod
    def _run_one(job: BatchJob) -> MethodRun:
        return run_method(
            job.method,
            job.dataset,
            seed=job.seed,
            golden=job.golden,
            initial_quality=job.initial_quality,
            method_kwargs=job.method_kwargs,
        )

    def run_grid(
        self,
        datasets: Iterable[Dataset],
        methods: Iterable[str] | None = None,
        seed: int = 0,
    ) -> list[MethodRun]:
        """Cross every dataset with every applicable method and run all.

        Methods inapplicable to a dataset's task type are skipped, like
        the '×' cells of the paper's Table 6.  With ``methods=None`` each
        dataset gets every registered method for its task type.
        """
        from ..core.registry import methods_for_task_type

        jobs = []
        for dataset in datasets:
            applicable = methods_for_task_type(dataset.task_type)
            selected = (applicable if methods is None
                        else [m for m in methods if m in applicable])
            jobs.extend(BatchJob(dataset=dataset, method=name, seed=seed)
                        for name in selected)
        return self.run(jobs)
