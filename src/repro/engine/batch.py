"""Parallel fan-out of (dataset, method) inference jobs.

The comparison experiments (Table 6 and the sweeps) run many independent
``method × dataset`` fits; :class:`BatchRunner` fans them across a
:mod:`concurrent.futures` executor.  NumPy releases the GIL inside the
heavy array kernels, so the default thread pool already overlaps most of
the work without any pickling cost; an
:class:`~concurrent.futures.ProcessPoolExecutor` ``executor_factory``
switches to process job workers for grids dominated by GIL-holding
kernels (the GLAD-heavy ones).  Results come back in job order and the
first worker exception propagates to the caller.

Each job's *fit* runs under an
:class:`~repro.core.policy.ExecutionPolicy` (job-level ``policy``
wins, else the runner's): sharded-EM methods shard accordingly, and a
process-tier policy leases the shared persistent
:class:`~repro.engine.runtime.ShardRuntime` registry, so a sweep of
methods over one dataset places the answers in shared memory and spawns
the worker pools once.  Methods without sharded EM ignore the policy.

Cold fits of every categorical EM method start from the majority-vote
posterior.  The runner computes that posterior **once per dataset** and
seeds every method that accepts it (``Capabilities.seed_posterior``)
instead of letting each fit recompute identical vote counts — a pure
dedup: the seeded values are exactly what the methods would have
derived.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.policy import ExecutionPolicy, MethodSpec, warn_legacy
from ..datasets.schema import Dataset
from ..exceptions import EngineError
from ..experiments.runner import MethodRun, run_method

_EXECUTORS = {
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}

_UNSET = object()


@dataclasses.dataclass
class BatchJob:
    """One unit of work: fit ``method`` on ``dataset`` and score it.

    ``method`` is a registry name or a
    :class:`~repro.core.policy.MethodSpec`; ``policy`` optionally
    overrides the runner's execution policy for this one job.  The
    legacy ``method_kwargs=`` / ``shard_executor=`` fields still work
    (folded into the spec / policy with one warning).
    """

    dataset: Dataset
    method: str | MethodSpec
    seed: int = 0
    golden: Mapping[int, float] | None = None
    initial_quality: object = None
    policy: ExecutionPolicy | None = None
    #: Optional shared majority-vote posterior to seed a cold fit from;
    #: filled in by :meth:`BatchRunner.run` when left as ``None``.
    seed_posterior: np.ndarray | None = None
    #: Deprecated: construction kwargs for a string ``method``; use a
    #: :class:`MethodSpec` instead.
    method_kwargs: dict | None = None
    #: Deprecated: ``"process"``/``"thread"`` shard tier; use ``policy``.
    shard_executor: str | None = None

    def __post_init__(self) -> None:
        legacy = {}
        if self.method_kwargs is not None:
            legacy["method_kwargs"] = self.method_kwargs
        if self.shard_executor is not None:
            legacy["shard_executor"] = self.shard_executor
        if not legacy:
            return
        warn_legacy("BatchJob", legacy, "MethodSpec / policy=")
        if self.method_kwargs is not None:
            self.method = MethodSpec.coerce(self.method, self.method_kwargs)
            self.method_kwargs = None
        if self.shard_executor is not None:
            base = self.policy or ExecutionPolicy(n_shards=1)
            self.policy = dataclasses.replace(base,
                                              executor=self.shard_executor)
            self.shard_executor = None

    @property
    def spec(self) -> MethodSpec:
        """The job's method as a :class:`MethodSpec`."""
        return MethodSpec.coerce(self.method)


class BatchRunner:
    """Run a list of :class:`BatchJob` concurrently.

    Parameters
    ----------
    max_workers:
        Job-pool size (how many fits overlap); defaults to
        ``min(8, cpu_count)``.
    executor_factory:
        Callable returning a :class:`concurrent.futures.Executor` when
        invoked with ``max_workers=...``.  Defaults to
        :class:`ThreadPoolExecutor`; process job pools pay pickling of
        datasets/results but overlap GIL-bound kernels on real cores.
    policy:
        Default :class:`~repro.core.policy.ExecutionPolicy` for every
        job's *fit* (jobs with their own ``policy`` win).  A
        process-tier policy routes each sharded fit through the shared
        persistent runtime registry: a sweep of methods over one
        dataset places the answers in shared memory and spawns the
        worker pools once.  Concurrent thread jobs serialise on the
        runtime's lease lock (each fit is internally parallel, so this
        is the intended schedule).
    share_mv_seed:
        Compute the majority-vote posterior once per (categorical)
        dataset and seed every supporting method's cold fit from it.

    The legacy ``executor=`` (job-pool type) and ``shard_executor=``
    spellings still work and warn once.
    """

    def __init__(self, max_workers: int | None = None,
                 executor_factory=ThreadPoolExecutor,
                 policy: ExecutionPolicy | None = None,
                 share_mv_seed: bool = True,
                 executor=_UNSET,
                 shard_executor=_UNSET) -> None:
        if max_workers is not None and max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        legacy = {}
        if executor is not _UNSET and executor is not None:
            if executor not in _EXECUTORS:
                raise EngineError(
                    f"executor must be one of {sorted(_EXECUTORS)}, "
                    f"got {executor!r}"
                )
            legacy["executor"] = executor
        if shard_executor is not _UNSET and shard_executor is not None:
            if shard_executor not in ("thread", "process"):
                raise EngineError(
                    f"shard_executor must be 'thread' or 'process', "
                    f"got {shard_executor!r}"
                )
            legacy["shard_executor"] = shard_executor
        if legacy:
            warn_legacy("BatchRunner", legacy,
                        "executor_factory= / policy=ExecutionPolicy(...)")
            if "executor" in legacy:
                executor_factory = _EXECUTORS[legacy["executor"]]
            if "shard_executor" in legacy:
                if policy is not None:
                    raise EngineError(
                        "pass either policy= or shard_executor=, not both"
                    )
                # n_shards=1, not auto: the legacy runner-level flag
                # only changed *where* sharded fits ran — the shard
                # count still came from each job's method kwargs (see
                # run_method's per-spec override).
                policy = ExecutionPolicy(
                    n_shards=1, executor=legacy["shard_executor"])
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.executor_factory = executor_factory
        self.policy = policy
        self.share_mv_seed = share_mv_seed

    # ------------------------------------------------------------------
    def _seed_posteriors(self, jobs: Sequence[BatchJob]) -> None:
        """Fill ``job.seed_posterior`` from a per-dataset MV cache."""
        from ..core.framework import normalize_rows
        from ..core.registry import capabilities

        cache: dict[int, np.ndarray] = {}
        for job in jobs:
            if job.seed_posterior is not None:
                continue
            if not job.dataset.task_type.is_categorical:
                continue
            if not capabilities(job.spec.name).seed_posterior:
                continue
            key = id(job.dataset)
            if key not in cache:
                cache[key] = normalize_rows(job.dataset.answers.vote_counts())
            job.seed_posterior = cache[key]

    def run(self, jobs: Sequence[BatchJob]) -> list[MethodRun]:
        """Execute all jobs; results are returned in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.policy is not None:
            for job in jobs:
                if job.policy is None:
                    job.policy = self.policy
        if self.share_mv_seed:
            self._seed_posteriors(jobs)
        if len(jobs) == 1 or self.max_workers == 1:
            return [self._run_one(job) for job in jobs]
        with self.executor_factory(max_workers=self.max_workers) as pool:
            futures = [pool.submit(self._run_one, job) for job in jobs]
            return [future.result() for future in futures]

    @staticmethod
    def _run_one(job: BatchJob) -> MethodRun:
        return run_method(
            job.spec,
            job.dataset,
            seed=job.seed,
            golden=job.golden,
            initial_quality=job.initial_quality,
            seed_posterior=job.seed_posterior,
            policy=job.policy,
        )

    def run_grid(
        self,
        datasets: Iterable[Dataset],
        methods: Iterable[str] | None = None,
        seed: int = 0,
        policy: ExecutionPolicy | None = None,
        n_shards=_UNSET,
    ) -> list[MethodRun]:
        """Cross every dataset with every applicable method and run all.

        Methods inapplicable to a dataset's task type are skipped, like
        the '×' cells of the paper's Table 6.  With ``methods=None`` each
        dataset gets every registered method for its task type.  A
        ``policy`` turns on sharded EM for the methods that support it
        (others ignore it); the legacy ``n_shards=`` spelling still
        works and warns once.
        """
        from ..core.registry import methods_for_task_type

        if n_shards is not _UNSET and n_shards is not None:
            warn_legacy("run_grid", ["n_shards"],
                        "policy=ExecutionPolicy(n_shards=...)")
            if policy is None and n_shards > 1:
                policy = ExecutionPolicy(n_shards=n_shards,
                                         executor="serial")
        jobs = []
        for dataset in datasets:
            applicable = methods_for_task_type(dataset.task_type)
            selected = (applicable if methods is None
                        else [m for m in methods if m in applicable])
            jobs.extend(
                BatchJob(dataset=dataset, method=name, seed=seed,
                         policy=policy)
                for name in selected
            )
        return self.run(jobs)
