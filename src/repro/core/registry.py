"""Method registry: look up algorithms and their capabilities by name.

The experiment harness and benchmarks refer to methods by the exact
names used in the paper's tables (``MV``, ``ZC``, ``GLAD``, ``D&S``,
``Minimax``, ``BCC``, ``CBCC``, ``LFC``, ``CATD``, ``PM``, ``Multi``,
``KOS``, ``VI-BP``, ``VI-MF``, ``LFC_N``, ``Mean``, ``Median``).

Besides instantiation (:func:`create`), the registry is the *only*
sanctioned way to ask what a method can do: :func:`capabilities`
returns a frozen :class:`Capabilities` struct built from the method
class's declared ``supports_*`` flags, replacing the scattered
``getattr(method_class(name), "supports_...", False)`` probes the
engine and experiment layers used to carry.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from ..exceptions import UnknownMethodError
from .base import TruthInferenceMethod
from .policy import ExecutionPlan, ExecutionPolicy, MethodSpec, warn_legacy
from .tasktypes import TaskType

_REGISTRY: dict[str, Callable[..., TruthInferenceMethod]] = {}
_CAPABILITIES: dict[str, "Capabilities"] = {}


@dataclasses.dataclass(frozen=True)
class Capabilities:
    """A method's declared abilities, as one frozen struct.

    Mirrors the ``supports_*`` ClassVars on
    :class:`~repro.core.base.TruthInferenceMethod` (see that docstring
    for what each ability means), plus the task types (paper Table 4)
    and the extension marker.
    """

    warm_start: bool
    seed_posterior: bool
    sharding: bool
    golden: bool
    initial_quality: bool
    task_types: frozenset
    is_extension: bool = False
    delta: bool = False

    @classmethod
    def of(cls, factory) -> "Capabilities":
        """The capabilities a method factory declares.

        ``register()`` accepts any factory, not only
        :class:`~repro.core.base.TruthInferenceMethod` subclasses, so
        every flag defaults to absent rather than crashing the
        registry-wide capability scans on an exotic factory.
        """
        return cls(
            warm_start=bool(getattr(factory, "supports_warm_start", False)),
            seed_posterior=bool(getattr(factory, "supports_seed_posterior",
                                        False)),
            sharding=bool(getattr(factory, "supports_sharding", False)),
            golden=bool(getattr(factory, "supports_golden", False)),
            initial_quality=bool(getattr(factory,
                                         "supports_initial_quality", False)),
            task_types=frozenset(getattr(factory, "task_types",
                                         frozenset())),
            is_extension=bool(getattr(factory, "is_extension", False)),
            delta=bool(getattr(factory, "supports_delta", False)),
        )


def register(factory: Callable[..., TruthInferenceMethod]) -> Callable:
    """Class decorator registering a method under its ``name`` attribute."""
    name = getattr(factory, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"{factory!r} must define a class-level 'name'")
    if name in _REGISTRY:
        raise ValueError(f"method {name!r} already registered")
    _REGISTRY[name] = factory
    return factory


def available_methods() -> list[str]:
    """All registered method names, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def capabilities(name: str) -> Capabilities:
    """The declared :class:`Capabilities` of a registered method.

    The one sanctioned capability probe: engines, batch runners and
    experiment harnesses ask here instead of ``getattr``-ing
    ``supports_*`` flags off the class.
    """
    cached = _CAPABILITIES.get(name)
    if cached is None:
        cached = _CAPABILITIES[name] = Capabilities.of(method_class(name))
    return cached


def create(method: str | MethodSpec, *,
           policy: ExecutionPolicy | ExecutionPlan | None = None,
           **kwargs) -> TruthInferenceMethod:
    """Instantiate a method by its paper name or :class:`MethodSpec`.

    Extra keyword arguments are forwarded to the method constructor
    (e.g. ``seed=0``, ``max_iter=50``); with a spec, the spec's kwargs
    win over same-named extras.

    ``policy`` applies an :class:`~repro.core.policy.ExecutionPolicy`
    (or an already-resolved plan) to the instance's *in-process*
    execution: methods with sharded EM get ``n_shards`` and — for the
    thread tier — ``shard_workers`` from it; other methods ignore it,
    so one policy can configure a whole grid.  The process tier needs a
    runner at fit time — pass the same policy to ``fit(policy=...)``
    or use the engines, which do.

    The legacy spellings ``create(name, n_shards=..., shard_workers=...)``
    still work but are deprecated in favour of ``policy=``.
    """
    spec = MethodSpec.coerce(method, kwargs if isinstance(method, str)
                             else None)
    build_kwargs = spec.kwargs if isinstance(method, str) else {
        **kwargs, **spec.kwargs}
    if isinstance(method, str):
        legacy = [k for k in ("n_shards", "shard_workers") if k in kwargs]
        if legacy:
            warn_legacy("create()", legacy,
                        "policy=ExecutionPolicy(n_shards=..., ...)")
    cls = method_class(spec.name)
    if policy is not None and cls.supports_sharding:
        if isinstance(policy, ExecutionPolicy):
            # The serial/thread tiers resolve without an input (the
            # thread width gets its proper default, not 0); auto and
            # process need answers, so only the shard count applies
            # here — fit(policy=) / the engines supply the rest.
            if policy.executor in ("serial", "thread"):
                policy = policy.resolve(n_answers=0)
        if isinstance(policy, ExecutionPlan):
            n_shards = policy.n_shards
            workers = (policy.max_workers
                       if policy.mode == "thread" else 0)
        else:
            n_shards = policy.resolved_shards
            workers = 0
        build_kwargs.setdefault("n_shards", n_shards)
        if workers:
            build_kwargs.setdefault("shard_workers", workers)
    instance = cls(**build_kwargs)
    # Record the spec (minus execution knobs) so fit(policy=...) can
    # rebuild the method inside worker processes.
    instance.method_spec = MethodSpec(
        spec.name, **{k: v for k, v in build_kwargs.items()
                      if k not in ("n_shards", "shard_workers")})
    return instance


def method_class(name: str) -> Callable[..., TruthInferenceMethod]:
    """The registered factory (class) for a method name, uninstantiated.

    Prefer :func:`capabilities` for capability checks; this exists for
    construction and for tests that need the raw class.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def methods_for_task_type(task_type: TaskType,
                          include_extensions: bool = False) -> list[str]:
    """Names of methods applicable to a task type (paper Table 4).

    By default only the paper's 17 methods are returned, so the
    experiment harness stays faithful to the survey; pass
    ``include_extensions=True`` to also get post-paper extensions
    (methods whose class sets ``is_extension = True``).
    """
    _ensure_loaded()
    return [
        name
        for name in _REGISTRY
        if task_type in capabilities(name).task_types
        and (include_extensions or not capabilities(name).is_extension)
    ]


def create_all(task_type: TaskType, names: Iterable[str] | None = None,
               policy: ExecutionPolicy | None = None,
               **kwargs) -> dict[str, TruthInferenceMethod]:
    """Instantiate every method applicable to ``task_type``.

    ``names`` optionally restricts (and orders) the selection; a
    ``policy`` is applied to every instance (methods that cannot shard
    ignore it).
    """
    selected = list(names) if names is not None else methods_for_task_type(task_type)
    instances = {}
    for name in selected:
        method = create(name, policy=policy, **kwargs)
        if task_type in method.task_types:
            instances[name] = method
    return instances


def _ensure_loaded() -> None:
    """Import the methods package so its decorators populate the registry."""
    from .. import methods as _methods  # noqa: F401
