"""Method registry: look up algorithms by their paper names.

The experiment harness and benchmarks refer to methods by the exact
names used in the paper's tables (``MV``, ``ZC``, ``GLAD``, ``D&S``,
``Minimax``, ``BCC``, ``CBCC``, ``LFC``, ``CATD``, ``PM``, ``Multi``,
``KOS``, ``VI-BP``, ``VI-MF``, ``LFC_N``, ``Mean``, ``Median``).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..exceptions import UnknownMethodError
from .base import TruthInferenceMethod
from .tasktypes import TaskType

_REGISTRY: dict[str, Callable[..., TruthInferenceMethod]] = {}


def register(factory: Callable[..., TruthInferenceMethod]) -> Callable:
    """Class decorator registering a method under its ``name`` attribute."""
    name = getattr(factory, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"{factory!r} must define a class-level 'name'")
    if name in _REGISTRY:
        raise ValueError(f"method {name!r} already registered")
    _REGISTRY[name] = factory
    return factory


def available_methods() -> list[str]:
    """All registered method names, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def create(name: str, **kwargs) -> TruthInferenceMethod:
    """Instantiate a method by its paper name.

    Extra keyword arguments are forwarded to the method constructor
    (e.g. ``seed=0``, ``max_iter=50``).
    """
    return method_class(name)(**kwargs)


def method_class(name: str) -> Callable[..., TruthInferenceMethod]:
    """The registered factory (class) for a method name, uninstantiated.

    Lets callers inspect class-level capability flags
    (``supports_sharding``, ``supports_seed_posterior``, ...) without
    building an instance.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def methods_for_task_type(task_type: TaskType,
                          include_extensions: bool = False) -> list[str]:
    """Names of methods applicable to a task type (paper Table 4).

    By default only the paper's 17 methods are returned, so the
    experiment harness stays faithful to the survey; pass
    ``include_extensions=True`` to also get post-paper extensions
    (methods whose class sets ``is_extension = True``).
    """
    _ensure_loaded()
    return [
        name
        for name, factory in _REGISTRY.items()
        if task_type in getattr(factory, "task_types", frozenset())
        and (include_extensions or not getattr(factory, "is_extension",
                                               False))
    ]


def create_all(task_type: TaskType, names: Iterable[str] | None = None,
               **kwargs) -> dict[str, TruthInferenceMethod]:
    """Instantiate every method applicable to ``task_type``.

    ``names`` optionally restricts (and orders) the selection.
    """
    selected = list(names) if names is not None else methods_for_task_type(task_type)
    instances = {}
    for name in selected:
        method = create(name, **kwargs)
        if task_type in method.task_types:
            instances[name] = method
    return instances


def _ensure_loaded() -> None:
    """Import the methods package so its decorators populate the registry."""
    from .. import methods as _methods  # noqa: F401
