"""Task-type taxonomy from Section 2 of the paper.

The paper distinguishes three task types:

* **decision-making** — a claim answered with true/false (binary labels);
* **single-choice** — one choice out of ``l`` fixed candidate choices;
* **numeric** — a real-valued answer with an inherent ordering.

Decision-making is modelled as single-choice with ``l = 2`` throughout the
library, matching the paper ("decision-making task is a special case of
single-choice task"). Multiple-choice tasks are handled, as the paper
suggests, by transforming them into sets of decision-making tasks (see
:func:`repro.datasets.synthetic.multiple_choice_to_decisions`).
"""

from __future__ import annotations

import enum


class TaskType(enum.Enum):
    """The three task types studied in the paper (Definition 1)."""

    DECISION_MAKING = "decision-making"
    SINGLE_CHOICE = "single-choice"
    NUMERIC = "numeric"

    @property
    def is_categorical(self) -> bool:
        """True for decision-making and single-choice tasks."""
        return self is not TaskType.NUMERIC

    @property
    def is_numeric(self) -> bool:
        """True for numeric tasks."""
        return self is TaskType.NUMERIC


#: Conventional label indices for decision-making tasks.  The paper uses
#: 'T' as the first choice and 'F' as the second; we map T -> 1 and
#: F -> 0 so that ``truth.astype(bool)`` reads naturally, and expose the
#: names here so datasets and metrics agree on the encoding.
LABEL_FALSE = 0
LABEL_TRUE = 1

#: Number of choices in a decision-making task.
DECISION_CHOICES = 2


def validate_n_choices(task_type: TaskType, n_choices: int | None) -> int:
    """Return a validated choice count for a task type.

    Decision-making tasks always have exactly two choices; single-choice
    tasks need an explicit ``n_choices >= 2``; numeric tasks have none
    (returns 0).
    """
    from ..exceptions import InvalidAnswerSetError

    if task_type is TaskType.NUMERIC:
        return 0
    if task_type is TaskType.DECISION_MAKING:
        if n_choices not in (None, DECISION_CHOICES):
            raise InvalidAnswerSetError(
                f"decision-making tasks have exactly 2 choices, got {n_choices}"
            )
        return DECISION_CHOICES
    if n_choices is None or n_choices < 2:
        raise InvalidAnswerSetError(
            f"single-choice tasks need n_choices >= 2, got {n_choices}"
        )
    return int(n_choices)
