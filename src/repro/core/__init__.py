"""Core data model and inference framework.

Public names re-exported here form the stable API of the package core:
the answer-set container, task-type taxonomy, result type, base method
classes, and the registry.
"""

from .answers import AnswerSet
from .base import (
    BinaryMethod,
    CategoricalMethod,
    GeneralMethod,
    NumericMethod,
    TruthInferenceMethod,
)
from .framework import ConvergenceTracker
from .registry import available_methods, create, create_all, methods_for_task_type
from .result import InferenceResult
from .tasktypes import LABEL_FALSE, LABEL_TRUE, TaskType

__all__ = [
    "AnswerSet",
    "BinaryMethod",
    "CategoricalMethod",
    "ConvergenceTracker",
    "GeneralMethod",
    "InferenceResult",
    "LABEL_FALSE",
    "LABEL_TRUE",
    "NumericMethod",
    "TaskType",
    "TruthInferenceMethod",
    "available_methods",
    "create",
    "create_all",
    "methods_for_task_type",
]
