"""Core data model and inference framework.

Public names re-exported here form the stable API of the package core:
the answer-set container, task-type taxonomy, result type, base method
classes, and the registry.
"""

from .answers import AnswerSet
from .base import (
    BinaryMethod,
    CategoricalMethod,
    GeneralMethod,
    NumericMethod,
    TruthInferenceMethod,
)
from .framework import ConvergenceTracker
from .policy import ExecutionPlan, ExecutionPolicy, MethodSpec, StorePolicy
from .registry import (
    Capabilities,
    available_methods,
    capabilities,
    create,
    create_all,
    method_class,
    methods_for_task_type,
)
from .result import FitStats, InferenceResult
from .shards import AnswerShard, ShardedAnswerSet, shard_by_tasks
from .tasktypes import LABEL_FALSE, LABEL_TRUE, TaskType

__all__ = [
    "AnswerSet",
    "AnswerShard",
    "BinaryMethod",
    "Capabilities",
    "CategoricalMethod",
    "ConvergenceTracker",
    "ExecutionPlan",
    "ExecutionPolicy",
    "GeneralMethod",
    "FitStats",
    "InferenceResult",
    "LABEL_FALSE",
    "LABEL_TRUE",
    "MethodSpec",
    "NumericMethod",
    "ShardedAnswerSet",
    "StorePolicy",
    "TaskType",
    "TruthInferenceMethod",
    "available_methods",
    "capabilities",
    "create",
    "create_all",
    "method_class",
    "methods_for_task_type",
    "shard_by_tasks",
]
