"""Shared machinery for the paper's iterative framework (Algorithm 1).

All 14 iterative methods in the paper follow the same loop:

1. initialise worker qualities (randomly, uniformly, or from a
   qualification test);
2. **step 1** — infer each task's truth from answers and qualities;
3. **step 2** — re-estimate each worker's quality from answers and truth;
4. repeat until the parameter change falls below a threshold
   (the paper uses 1e-3) or an iteration cap is hit.

This module provides the convergence tracker, golden-task clamping used
by the hidden-test protocol (Section 6.3.3), and small numerical helpers
shared by several methods.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..exceptions import ConvergenceError

#: Convergence threshold the paper mentions ("e.g., 1e-3").
DEFAULT_TOLERANCE = 1e-4

#: Iteration cap; generous enough that EM methods converge well before it.
DEFAULT_MAX_ITER = 100

#: Floor used when clipping probabilities away from 0/1 before taking logs.
PROBABILITY_FLOOR = 1e-10


class ConvergenceTracker:
    """Detects convergence of the two-step iteration.

    Tracks the maximum absolute change of a parameter vector between
    consecutive iterations, exactly as the paper describes ("check
    whether the change of two sets of parameters is below some defined
    threshold").

    If the parameter vector changes **length** between updates (tasks or
    workers were added between fits, e.g. by a warm-started refit on a
    grown answer set), the comparison baseline is reset rather than an
    error raised: the resized update can never trigger convergence, and
    delta tracking resumes at the next same-length update.  Each such
    reset is counted in :attr:`resets`.
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE,
                 max_iter: int = DEFAULT_MAX_ITER) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.tolerance = tolerance
        self.max_iter = max_iter
        self.iteration = 0
        self.converged = False
        #: Number of times a resized parameter vector reset the baseline.
        self.resets = 0
        self._previous: np.ndarray | None = None

    def update(self, parameters: np.ndarray) -> bool:
        """Record one iteration; return True when iteration should stop.

        ``parameters`` is any flat or multi-dimensional array capturing
        the state being iterated (e.g. the truth posterior).  Raises
        :class:`ConvergenceError` on NaN/inf parameters.
        """
        current = np.asarray(parameters, dtype=np.float64).ravel().copy()
        if not np.all(np.isfinite(current)):
            raise ConvergenceError(
                f"non-finite parameters at iteration {self.iteration}"
            )
        self.iteration += 1
        if self._previous is not None and len(self._previous) != len(current):
            self._previous = None
            self.resets += 1
        if self._previous is not None:
            delta = float(np.max(np.abs(current - self._previous)))
            if delta < self.tolerance:
                self.converged = True
                return True
        self._previous = current
        return self.iteration >= self.max_iter


def clamp_golden_posterior(posterior: np.ndarray,
                           golden: Mapping[int, int] | None) -> np.ndarray:
    """Overwrite posterior rows of golden tasks with their known truth.

    Implements the hidden-test protocol: "in step 1, we only update the
    truth of tasks with unknown truth" — golden tasks keep probability 1
    on their true label throughout the iteration.
    """
    if not golden:
        return posterior
    for task, label in golden.items():
        posterior[task, :] = 0.0
        posterior[task, int(label)] = 1.0
    return posterior


def clamp_golden_values(values: np.ndarray,
                        golden: Mapping[int, float] | None) -> np.ndarray:
    """Numeric analogue of :func:`clamp_golden_posterior`."""
    if not golden:
        return values
    for task, truth in golden.items():
        values[task] = float(truth)
    return values


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalise each row to sum to one; uniform rows where the sum is 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    sums = matrix.sum(axis=1, keepdims=True)
    n_cols = matrix.shape[1]
    safe = np.where(sums > 0, sums, 1.0)
    out = matrix / safe
    out[np.squeeze(sums, axis=1) <= 0] = 1.0 / n_cols
    return out


def log_normalize_rows(log_matrix: np.ndarray) -> np.ndarray:
    """Exponentiate and row-normalise a matrix of log scores, stably."""
    log_matrix = np.asarray(log_matrix, dtype=np.float64)
    shifted = log_matrix - log_matrix.max(axis=1, keepdims=True)
    expd = np.exp(shifted)
    return expd / expd.sum(axis=1, keepdims=True)


def clip_probability(p: np.ndarray | float) -> np.ndarray:
    """Clip probabilities into ``[floor, 1 - floor]`` before logs."""
    return np.clip(p, PROBABILITY_FLOOR, 1.0 - PROBABILITY_FLOOR)


def decode_posterior(posterior: np.ndarray, rng: np.random.Generator | None = None
                     ) -> np.ndarray:
    """Turn a truth posterior into hard labels, breaking ties randomly.

    Majority voting and several iterative methods can end with exact
    ties; the paper breaks them randomly ("it randomly infers v*_1 to
    break the tie").  With ``rng=None`` ties break toward the lowest
    label index (deterministic), which tests rely on.
    """
    posterior = np.asarray(posterior, dtype=np.float64)
    if rng is None:
        return posterior.argmax(axis=1)
    best = posterior.max(axis=1, keepdims=True)
    is_best = np.isclose(posterior, best)
    # argmax of a boolean row is its first True — identical to the
    # single candidate on untied rows, so only tied rows draw from the
    # generator (in row order, exactly as the historical per-task loop
    # did, which keeps the consumed random sequence — and therefore
    # every tie-break — bit-identical).
    labels = is_best.argmax(axis=1).astype(np.int64)
    for i in np.nonzero(is_best.sum(axis=1) > 1)[0]:
        labels[i] = rng.choice(np.nonzero(is_best[i])[0])
    return labels
