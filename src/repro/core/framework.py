"""Shared machinery for the paper's iterative framework (Algorithm 1).

All 14 iterative methods in the paper follow the same loop:

1. initialise worker qualities (randomly, uniformly, or from a
   qualification test);
2. **step 1** — infer each task's truth from answers and qualities;
3. **step 2** — re-estimate each worker's quality from answers and truth;
4. repeat until the parameter change falls below a threshold
   (the paper uses 1e-3) or an iteration cap is hit.

This module provides the convergence tracker, golden-task clamping used
by the hidden-test protocol (Section 6.3.3), and small numerical helpers
shared by several methods.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..exceptions import ConvergenceError

#: Convergence threshold the paper mentions ("e.g., 1e-3").
DEFAULT_TOLERANCE = 1e-4

#: Iteration cap; generous enough that EM methods converge well before it.
DEFAULT_MAX_ITER = 100

#: Floor used when clipping probabilities away from 0/1 before taking logs.
PROBABILITY_FLOOR = 1e-10


class ConvergenceTracker:
    """Detects convergence of the two-step iteration.

    Tracks the maximum absolute change of a parameter vector between
    consecutive iterations, exactly as the paper describes ("check
    whether the change of two sets of parameters is below some defined
    threshold").

    If the parameter vector changes **length** between updates (tasks or
    workers were added between fits, e.g. by a warm-started refit on a
    grown answer set), the comparison baseline is reset rather than an
    error raised: the resized update can never trigger convergence, and
    delta tracking resumes at the next same-length update.  Each such
    reset is counted in :attr:`resets`.
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE,
                 max_iter: int = DEFAULT_MAX_ITER) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.tolerance = tolerance
        self.max_iter = max_iter
        self.iteration = 0
        self.converged = False
        #: Number of times a resized parameter vector reset the baseline.
        self.resets = 0
        self._previous: np.ndarray | None = None

    def update(self, parameters: np.ndarray) -> bool:
        """Record one iteration; return True when iteration should stop.

        ``parameters`` is any flat or multi-dimensional array capturing
        the state being iterated (e.g. the truth posterior).  Raises
        :class:`ConvergenceError` on NaN/inf parameters.
        """
        current = np.asarray(parameters, dtype=np.float64).ravel().copy()
        if not np.all(np.isfinite(current)):
            raise ConvergenceError(
                f"non-finite parameters at iteration {self.iteration}"
            )
        self.iteration += 1
        if self._previous is not None and len(self._previous) != len(current):
            self._previous = None
            self.resets += 1
        if self._previous is not None:
            delta = float(np.max(np.abs(current - self._previous)))
            if delta < self.tolerance:
                self.converged = True
                return True
        self._previous = current
        return self.iteration >= self.max_iter


def clamp_golden_posterior(posterior: np.ndarray,
                           golden: Mapping[int, int] | None) -> np.ndarray:
    """Overwrite posterior rows of golden tasks with their known truth.

    Implements the hidden-test protocol: "in step 1, we only update the
    truth of tasks with unknown truth" — golden tasks keep probability 1
    on their true label throughout the iteration.
    """
    if not golden:
        return posterior
    for task, label in golden.items():
        posterior[task, :] = 0.0
        posterior[task, int(label)] = 1.0
    return posterior


def clamp_golden_values(values: np.ndarray,
                        golden: Mapping[int, float] | None) -> np.ndarray:
    """Numeric analogue of :func:`clamp_golden_posterior`."""
    if not golden:
        return values
    for task, truth in golden.items():
        values[task] = float(truth)
    return values


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalise each row to sum to one; uniform rows where the sum is 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n_cols = matrix.shape[1]
    if matrix.ndim != 2 or n_cols == 0:
        sums = matrix.sum(axis=1, keepdims=True)
        safe = np.where(sums > 0, sums, 1.0)
        out = matrix / safe
        out[np.squeeze(sums, axis=1) <= 0] = 1.0 / max(n_cols, 1)
        return out
    # Column-accumulated row sums: an axis-1 reduce pays per-row ufunc
    # overhead on the short label axis, while n_cols strided adds
    # stream through the matrix once — same left-to-right pairing, so
    # the sums (and the normalised rows) are bit-identical.
    sums = matrix[:, 0].copy()
    for j in range(1, n_cols):
        sums += matrix[:, j]
    safe = np.where(sums > 0, sums, 1.0)
    out = matrix / safe[:, None]
    out[sums <= 0] = 1.0 / n_cols
    return out


def log_normalize_rows(log_matrix: np.ndarray) -> np.ndarray:
    """Exponentiate and row-normalise a matrix of log scores, stably."""
    log_matrix = np.asarray(log_matrix, dtype=np.float64)
    shifted = log_matrix - log_matrix.max(axis=1, keepdims=True)
    expd = np.exp(shifted)
    return expd / expd.sum(axis=1, keepdims=True)


def clip_probability(p: np.ndarray | float) -> np.ndarray:
    """Clip probabilities into ``[floor, 1 - floor]`` before logs."""
    return np.clip(p, PROBABILITY_FLOOR, 1.0 - PROBABILITY_FLOOR)


def argmax_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise argmax of finite values, column-at-a-time.

    Bit-identical to ``matrix.argmax(axis=1)`` — the strict ``>``
    keeps the *first* maximum, exactly like argmax — but streams the
    matrix column-wise, avoiding the per-row ufunc overhead an axis-1
    reduce pays on a short label axis.  Callers must not pass NaN
    (argmax treats NaN as maximal; ``>`` never matches it).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        return matrix.argmax(axis=1)
    best = matrix[:, 0].copy()
    labels = np.zeros(matrix.shape[0], dtype=np.int64)
    for j in range(1, matrix.shape[1]):
        col = matrix[:, j]
        labels[col > best] = j
        np.maximum(best, col, out=best)
    return labels


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative integer keys, radix-accelerated.

    NumPy's ``kind="stable"`` dispatches to an O(n) radix sort only for
    integer dtypes of at most 16 bits; wider keys fall back to a
    comparison sort.  The grouping keys sorted throughout this library
    (task ids, worker ids, (task, label) cells) easily exceed 16 bits
    but are never negative, so an LSD pass over 16-bit digit slices
    reproduces the *exact* stable permutation severalfold faster.
    Anything but non-negative integers falls back to ``np.argsort``.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind not in "iu" or keys.ndim != 1 or (
            keys.dtype.kind == "i" and keys.size
            and int(keys.min()) < 0):
        return np.argsort(keys, kind="stable")
    order = np.argsort((keys & 0xFFFF).astype(np.uint16), kind="stable")
    kmax = int(keys.max(initial=0))
    shift = 16
    while kmax >> shift:
        digit = ((keys >> shift) & 0xFFFF).astype(np.uint16)
        order = order[np.argsort(digit[order], kind="stable")]
        shift += 16
    return order


def decode_posterior(posterior: np.ndarray, rng: np.random.Generator | None = None
                     ) -> np.ndarray:
    """Turn a truth posterior into hard labels, breaking ties randomly.

    Majority voting and several iterative methods can end with exact
    ties; the paper breaks them randomly ("it randomly infers v*_1 to
    break the tie").  With ``rng=None`` ties break toward the lowest
    label index (deterministic), which tests rely on.
    """
    posterior = np.asarray(posterior, dtype=np.float64)
    if rng is None:
        return posterior.argmax(axis=1)
    n_rows, n_cols = posterior.shape
    # Column-at-a-time passes: axis-1 reductions pay per-row ufunc
    # overhead on the short label axis, so the row max, the closeness
    # test, and the tie counts all stream column-wise instead.  The
    # pairing order matches the axis-1 reduce, keeping ``best`` (and
    # every downstream comparison) bit-identical.
    best = posterior[:, 0].copy()
    for j in range(1, n_cols):
        np.maximum(best, posterior[:, j], out=best)
    if np.isinf(best).any():
        # ``isclose`` calls infinities of equal sign "close"; the
        # plain tolerance test below would not.  Posteriors are finite
        # in practice, so keep the slow exact path for this edge only.
        is_best = np.isclose(posterior, best[:, None])
    else:
        # ``isclose(a, b)`` on finite input is exactly
        # ``|a - b| <= atol + rtol * |b|`` (numpy's within_tol).
        tol = 1e-08 + 1e-05 * np.abs(best)
        is_best = np.empty(posterior.shape, dtype=bool)
        for j in range(n_cols):
            np.less_equal(np.abs(posterior[:, j] - best), tol,
                          out=is_best[:, j])
    counts = np.zeros(n_rows, dtype=np.int64)
    labels = np.zeros(n_rows, dtype=np.int64)
    for j in range(n_cols):
        counts += is_best[:, j]
        labels += j * is_best[:, j]
    # Untied rows have exactly one candidate, so the weighted column
    # sum above IS its index (matching ``is_best.argmax(axis=1)``);
    # tied rows are overwritten below, and all-False rows (possible
    # only for NaN input) fall to label 0 just like argmax would.
    tied = np.nonzero(counts > 1)[0]
    if tied.size:
        # ``Generator.choice(candidates)`` draws ``integers(0, len)``
        # under the hood, and a vectorised ``integers`` call with an
        # array of bounds consumes the stream element-by-element in
        # order — so this block spends the generator exactly as the
        # historical per-task ``rng.choice`` loop did, keeping every
        # tie-break bit-identical.
        draws = rng.integers(0, counts[tied])
        rows, cols = np.nonzero(is_best[tied])
        starts = np.concatenate(([0], np.cumsum(counts[tied])[:-1]))
        rank = np.arange(rows.size) - starts[rows]
        labels[tied] = cols[rank == draws[rows]]
    return labels
