"""One execution vocabulary: :class:`ExecutionPolicy` and :class:`MethodSpec`.

Three PRs of scaling work grew five overlapping entry points, each
spelling "how to run" with a different kwarg subset (``n_shards=``,
``shard_workers=``, ``executor=``, ``shard_executor=``, ``persistent=``)
while "what to run" travelled as ``(method_name, method_kwargs)`` dict
pairs.  This module is the single configuration surface both collapse
into:

* :class:`ExecutionPolicy` — a frozen, declarative description of *how*
  a fit should execute: shard count, executor tier, pool width,
  persistence, and the auto-tiering thresholds.  ``resolve(answers)``
  turns the declaration into a concrete :class:`ExecutionPlan` for one
  answer set.  Every layer (``create``, ``fit``, the engines, the batch
  runners, the CLI, the runtime registry) accepts ``policy=``.
* :class:`MethodSpec` — a frozen ``(name, kwargs)`` description of
  *what* to run, replacing the loose string + ``method_kwargs`` dict
  pairs.  Specs are picklable, comparable (cache keys) and carry enough
  to rebuild the method in a worker process.

The policy is declarative: applying it to a method that cannot shard is
a no-op (grids set one policy globally and only the sharded-EM methods
act on it), exactly like the other per-method capability knobs — but a
policy that *names* explicit parallelism (``n_shards > 1`` or a forced
thread/process tier) makes ``fit`` emit one :class:`UserWarning` per
call saying which fields the method ignored.

Legacy spellings remain available everywhere through deprecation shims
that construct these objects and warn once per call —
:func:`warn_legacy` is the shared shim vocabulary.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from typing import Any, Mapping

__all__ = [
    "ExecutionPlan",
    "ExecutionPolicy",
    "FaultPolicy",
    "MethodSpec",
    "StorePolicy",
    "warn_legacy",
]

#: Executor tiers an :class:`ExecutionPolicy` may name.
EXECUTORS = ("auto", "serial", "thread", "process")

#: ``auto`` reaches for processes at this answer count (the threshold
#: previously hard-coded in ``repro.engine.sharded``).
DEFAULT_PROCESS_THRESHOLD = 200_000

#: ``n_shards=None`` resolves to ``max(2, min(AUTO_SHARD_CAP, cpus))``.
AUTO_SHARD_CAP = 8

#: Refit modes an :class:`ExecutionPolicy` may name.  ``"full"`` keeps
#: every warm refit a complete E/M sweep over all shards (bit-identical
#: to the historical behaviour); ``"delta"`` enables dirty-shard
#: incremental EM with converged-shard freezing
#: (:mod:`repro.inference.sharded`).
REFIT_MODES = ("full", "delta")

#: Default full-verify cadence for delta refits: every this many EM
#: iterations (and once before declaring convergence) frozen shards get
#: a fresh E-step to check for drift above the freeze tolerance.
DEFAULT_VERIFY_EVERY = 5


def warn_legacy(surface: str, names: Mapping, replacement: str,
                stacklevel: int = 3) -> None:
    """Emit the one :class:`DeprecationWarning` a legacy call gets.

    All legacy kwargs present in a single call are folded into one
    message, so a call site migrating to ``policy=`` / ``MethodSpec``
    sees exactly one warning, not one per kwarg.
    """
    spelled = ", ".join(sorted(names))
    warnings.warn(
        f"{surface}: {spelled} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


#: Default per-phase deadline (seconds) for process-tier future waits.
#: Generous — it exists to bound hangs, not to race healthy phases.
DEFAULT_PHASE_DEADLINE = 120.0


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """Declarative recovery: how the process tier survives failure.

    Parameters
    ----------
    deadline:
        Per-phase deadline in seconds for every process-tier future
        wait (phase dispatches *and* sync messages).  A phase past its
        deadline is treated like a worker crash: the worker is killed,
        the pool respawned, the phase re-dispatched.  ``None`` waits
        unboundedly (the pre-fault-tolerance behaviour).
    retries:
        Crash/timeout recovery attempts per dispatch before giving up
        on the process tier for the failing shards.
    backoff_base / backoff_cap:
        Parameters of the shared :class:`repro.faults.Backoff` delay
        between recovery attempts (capped exponential, seeded jitter).
    degrade:
        After the retry budget: execute the orphaned shards' phase
        in-process on the master via the serial spec path and keep
        going (True, default — flagged in ``FitStats``), or raise
        :class:`~repro.exceptions.WorkerCrashError` /
        :class:`~repro.exceptions.PhaseTimeoutError` (False).
    """

    deadline: float | None = DEFAULT_PHASE_DEADLINE
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.deadline is not None and not self.deadline > 0:
            raise ValueError(
                f"deadline must be positive or None, got {self.deadline}"
            )
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError(
                "backoff_base/backoff_cap must be >= 0, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """A policy resolved against one answer set: no ``auto`` left.

    Attributes
    ----------
    mode:
        ``"serial"``, ``"thread"`` or ``"process"`` — the tier that will
        actually execute.
    n_shards:
        Concrete shard count (>= 1; the shard layer still clamps to the
        task count per dataset).
    max_workers:
        Pool width: thread count for the thread tier, process-pool
        slots for the process tier, ``0`` for serial.
    persistent:
        Process tier only: lease pools/segments from the shared runtime
        registry (True) or build a one-shot runner (False).
    """

    mode: str
    n_shards: int
    max_workers: int
    persistent: bool = True
    #: Recovery policy for the process tier (repr-quiet: the plan's
    #: doctest-visible identity is the execution shape, not recovery).
    fault_policy: FaultPolicy = dataclasses.field(
        default=FaultPolicy(), repr=False)
    #: Armed fault-injection plan, if any (tests/chaos runs only).
    faults: Any = dataclasses.field(default=None, repr=False,
                                    compare=False)

    @property
    def sharded(self) -> bool:
        """Whether this plan involves more than one shard."""
        return self.n_shards > 1

    @property
    def runtime_key(self) -> tuple[int, int]:
        """``(n_shards, pool_slots)`` — the runtime-registry cache key
        this plan leases under."""
        return (self.n_shards,
                resolve_process_workers(self.n_shards, self.max_workers
                                        or None))


def resolve_process_workers(n_shards: int,
                            max_workers: int | None = None) -> int:
    """Pool-slot count for a process-tier runtime.

    The single source of truth shared by :class:`ExecutionPolicy`,
    :class:`~repro.engine.runtime.ShardRuntime` and the registry cache
    key (``max_workers=None`` and its resolved value must be the same
    configuration).
    """
    workers = max_workers or min(int(n_shards), os.cpu_count() or 1)
    return max(1, min(int(workers), int(n_shards)))


#: SQLite synchronous modes a :class:`StorePolicy` may name.
STORE_SYNC_MODES = ("off", "normal", "full")

#: Default log-sequence distance between fit snapshots.
DEFAULT_SNAPSHOT_EVERY = 50_000


@dataclasses.dataclass(frozen=True)
class StorePolicy:
    """Declarative durability: where and how a stream persists.

    Parameters
    ----------
    path:
        Store directory.  Created on first use; holds the WAL-mode
        SQLite answer log (``answers.sqlite``) and the cold-shard
        spill files (``spill/``).
    snapshot_every:
        Log-sequence distance between fit snapshots: after a fresh
        fit, a snapshot is taken when at least this many log records
        landed since the method's previous snapshot (the first fit
        always snapshots).  Smaller means shorter replay tails on
        recovery, at more write amplification.
    snapshot_keep:
        Snapshots retained per method (older ones are pruned).
    spill_ttl:
        Seconds a warm in-process shard may sit untouched before its
        task-sorted arrays spill to memory-mapped files (paged back in
        on demand).  ``None`` (default) disables spilling.
    sync:
        SQLite ``synchronous`` pragma: ``"normal"`` (default; survives
        process kill, may lose the last transactions on OS/power
        failure), ``"full"`` (survives power failure), or ``"off"``
        (fastest; tests only).
    """

    path: str
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    snapshot_keep: int = 2
    spill_ttl: float | None = None
    sync: str = "normal"

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("StorePolicy needs a store path")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.snapshot_keep < 1:
            raise ValueError(
                f"snapshot_keep must be >= 1, got {self.snapshot_keep}"
            )
        if self.spill_ttl is not None and not self.spill_ttl >= 0:
            raise ValueError(
                f"spill_ttl must be >= 0, got {self.spill_ttl}"
            )
        if self.sync not in STORE_SYNC_MODES:
            raise ValueError(
                f"sync must be one of {STORE_SYNC_MODES}, "
                f"got {self.sync!r}"
            )


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """Declarative "how to run": shards, executor tier, width, warmth.

    Parameters
    ----------
    n_shards:
        Task-range shards per fit.  ``None`` means *auto*:
        ``max(2, min(8, cpu_count))``, the default the sharded engine
        always used.  ``1`` disables sharding.
    executor:
        ``"auto"`` (default) — processes when the input has at least
        ``process_threshold`` answers and more than one core is
        available, otherwise threads (serial on a single-core host
        with no explicit width); ``"serial"`` / ``"thread"`` /
        ``"process"`` force a tier.
    max_workers:
        Pool width; ``None`` picks a tier-appropriate default
        (``min(n_shards, max(2, cpus))`` threads,
        ``min(n_shards, cpus)`` process slots).
    persistent:
        Process tier: reuse warm pools and placed shared-memory
        segments across fits via the runtime registry (default True).
    process_threshold:
        Answer count at which ``auto`` reaches for processes.
    refit:
        How warm refits on a grown stream re-run EM.  ``"full"``
        (default) keeps every refit a complete E/M sweep over all
        shards — bit-identical to the historical behaviour.
        ``"delta"`` enables dirty-shard incremental EM: only shards
        whose task range received new answers are re-primed (clean
        shards reuse their cached posterior blocks and sufficient
        statistics), and converged shards freeze out of later
        iterations until a periodic full-verify E-step shows drift.
        Only engines with a refit cache act on this; one-shot fits
        ignore it.
    freeze_tol:
        Delta refits only: a shard freezes when its E-step changed no
        posterior entry by at least this much, and a frozen shard thaws
        when a verify E-step shows at least this much drift.  ``None``
        (default) uses the fit's convergence tolerance.
    verify_every:
        Delta refits only: frozen shards get a full verify E-step every
        this many EM iterations (and always once before convergence is
        declared).
    store:
        Optional :class:`StorePolicy` — when set, engines built on
        this policy write every ingested batch through to the durable
        answer log at ``store.path``, snapshot fit state periodically,
        and (if ``store.spill_ttl`` is set) spill cold shards to
        memory-mapped files.  ``None`` (default) keeps everything
        in RAM, exactly as before.

    Examples
    --------
    >>> ExecutionPolicy().executor
    'auto'
    >>> ExecutionPolicy(n_shards=4, executor="serial").resolve(n_answers=100)
    ExecutionPlan(mode='serial', n_shards=4, max_workers=0, persistent=True)
    """

    n_shards: int | None = None
    executor: str = "auto"
    max_workers: int | None = None
    persistent: bool = True
    process_threshold: int = DEFAULT_PROCESS_THRESHOLD
    refit: str = "full"
    freeze_tol: float | None = None
    verify_every: int = DEFAULT_VERIFY_EVERY
    store: StorePolicy | None = None
    fault_policy: FaultPolicy = FaultPolicy()
    faults: Any = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.process_threshold < 0:
            raise ValueError(
                f"process_threshold must be >= 0, "
                f"got {self.process_threshold}"
            )
        if self.refit not in REFIT_MODES:
            raise ValueError(
                f"refit must be one of {REFIT_MODES}, got {self.refit!r}"
            )
        if self.freeze_tol is not None and not self.freeze_tol > 0:
            raise ValueError(
                f"freeze_tol must be positive, got {self.freeze_tol}"
            )
        if self.verify_every < 1:
            raise ValueError(
                f"verify_every must be >= 1, got {self.verify_every}"
            )
        if self.store is not None and not isinstance(self.store,
                                                     StorePolicy):
            raise ValueError(
                f"store must be a StorePolicy or None, got {self.store!r}"
            )
        if not isinstance(self.fault_policy, FaultPolicy):
            raise ValueError(
                f"fault_policy must be a FaultPolicy, "
                f"got {self.fault_policy!r}"
            )
        if self.faults is not None and not (
                hasattr(self.faults, "on_dispatch")
                and hasattr(self.faults, "on_commit")):
            raise ValueError(
                f"faults must be a repro.faults.FaultPlan or None, "
                f"got {self.faults!r}"
            )

    # ------------------------------------------------------------------
    @property
    def resolved_shards(self) -> int:
        """The concrete shard count this policy stands for."""
        if self.n_shards is not None:
            return self.n_shards
        cpus = os.cpu_count() or 1
        return max(2, min(AUTO_SHARD_CAP, cpus))

    def resolve(self, answers: Any = None, *,
                n_answers: int | None = None) -> ExecutionPlan:
        """Produce the concrete :class:`ExecutionPlan` for an input.

        ``answers`` may be anything with an ``n_answers`` attribute (an
        :class:`~repro.core.answers.AnswerSet`, a streaming set); pass
        ``n_answers=`` directly when no answer object exists yet.
        ``auto`` tiering matches the historical
        ``ShardedInferenceEngine`` behaviour exactly: processes for
        large inputs on multi-core hosts, threads otherwise, serial on
        a single-core host with no explicit pool width.
        """
        cpus = os.cpu_count() or 1
        if n_answers is None:
            n_answers = (getattr(answers, "n_answers", 0)
                         if answers is not None else 0)
        n_shards = self.resolved_shards
        mode = self.executor
        if mode == "auto":
            if n_answers >= self.process_threshold and cpus > 1:
                mode = "process"
            elif (self.max_workers or 0) > 1 or cpus > 1:
                mode = "thread"
            else:
                mode = "serial"
        if mode == "serial":
            max_workers = 0
        elif mode == "thread":
            max_workers = self.max_workers or min(
                n_shards, max(2, cpus))
        else:
            max_workers = resolve_process_workers(n_shards,
                                                  self.max_workers)
        return ExecutionPlan(mode=mode, n_shards=n_shards,
                             max_workers=max_workers,
                             persistent=self.persistent,
                             fault_policy=self.fault_policy,
                             faults=self.faults)

    # ------------------------------------------------------------------
    @classmethod
    def from_legacy(cls, n_shards: int | None = None,
                    shard_workers: int | None = None,
                    shard_executor: str | None = None,
                    persistent: bool = True) -> "ExecutionPolicy":
        """The policy a legacy kwarg triple spelled.

        ``shard_executor="process"`` maps to the process tier; a thread
        width above 1 maps to the thread tier; everything else ran
        in-process serially.  Shims call this so the legacy path is
        *literally* the ``policy=`` path plus one warning.
        """
        if shard_executor == "process":
            executor = "process"
        elif shard_workers and shard_workers > 1:
            executor = "thread"
        else:
            executor = "serial"
        return cls(n_shards=n_shards if n_shards is not None else 1,
                   executor=executor,
                   max_workers=shard_workers or None,
                   persistent=persistent)


def _freeze_kwargs(kwargs: Mapping[str, Any]) -> tuple:
    """Kwargs as a sorted items tuple (the spec's comparable form)."""
    return tuple(sorted(kwargs.items()))


@dataclasses.dataclass(frozen=True, init=False)
class MethodSpec:
    """What to run: a method name plus its construction kwargs.

    Replaces every ``(method_name, method_kwargs_dict)`` pair in the
    public API.  Frozen and comparable, so engines can key caches on it
    and worker processes can rebuild the exact same method from it.

    Examples
    --------
    >>> spec = MethodSpec("D&S", max_iter=50)
    >>> spec.name, dict(spec.kwargs)
    ('D&S', {'max_iter': 50})
    >>> spec.with_defaults(seed=0).kwargs["seed"]
    0
    """

    name: str
    _items: tuple = ()

    def __init__(self, name: str, **kwargs: Any) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"MethodSpec needs a method name string, got {name!r}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_items", _freeze_kwargs(kwargs))

    @property
    def kwargs(self) -> dict:
        """Construction kwargs (a fresh dict each call)."""
        return dict(self._items)

    def with_defaults(self, **defaults: Any) -> "MethodSpec":
        """A spec with ``defaults`` filled in where the spec is silent.

        Existing kwargs win, so engines can inject their ``seed``
        without overriding an explicit per-call choice.
        """
        merged = {**defaults, **self.kwargs}
        return MethodSpec(self.name, **merged)

    def create(self, policy: "ExecutionPolicy | ExecutionPlan | None"
               = None) -> Any:
        """Instantiate via the registry (``create(spec, policy=...)``)."""
        from .registry import create

        return create(self, policy=policy)

    def capabilities(self) -> Any:
        """The method's declared :class:`~repro.core.registry.Capabilities`."""
        from .registry import capabilities

        return capabilities(self.name)

    @classmethod
    def coerce(cls, method: "str | MethodSpec",
               kwargs: Mapping | None = None) -> "MethodSpec":
        """Normalise a ``str | MethodSpec`` (+ optional kwargs dict).

        A spec given together with extra kwargs gains them as defaults
        (the spec's own kwargs win).
        """
        if isinstance(method, MethodSpec):
            return method.with_defaults(**dict(kwargs or {}))
        return cls(method, **dict(kwargs or {}))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return (f"MethodSpec({self.name!r}{', ' if parts else ''}{parts})")
