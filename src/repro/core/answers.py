"""Sparse answer-set container (Definitions 2–3 of the paper).

The central data structure of the library: a sparse collection of
``(task, worker, value)`` triples.  Tasks and workers are referenced by
dense integer indices internally; external string identifiers are kept in
lookup tables so that datasets loaded from files round-trip faithfully.

Categorical answers (decision-making / single-choice) are stored as label
indices in ``0 .. n_choices-1``; numeric answers are stored as floats.

The container is immutable after construction.  Operations that "modify"
it — redundancy subsampling, filtering — return new instances.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidAnswerSetError
from .framework import radix_argsort
from .tasktypes import TaskType, validate_n_choices


class AnswerSet:
    """A sparse set of worker answers ``V = {v_i^w}``.

    Parameters
    ----------
    task_indices, worker_indices:
        Parallel integer arrays; entry ``k`` says worker
        ``worker_indices[k]`` answered task ``task_indices[k]``.
    values:
        Parallel array of answers.  Integer label indices for categorical
        task types, floats for numeric tasks.
    task_type:
        One of :class:`~repro.core.tasktypes.TaskType`.
    n_choices:
        Number of candidate choices for single-choice tasks.  Inferred as
        2 for decision-making; ignored for numeric.
    n_tasks, n_workers:
        Optional explicit sizes (useful when some tasks/workers received
        or gave no answers).  Default to ``max index + 1``.
    task_labels, worker_labels:
        Optional external identifiers, parallel to the index spaces.
    """

    def __init__(
        self,
        task_indices: Sequence[int],
        worker_indices: Sequence[int],
        values: Sequence,
        task_type: TaskType,
        n_choices: int | None = None,
        n_tasks: int | None = None,
        n_workers: int | None = None,
        task_labels: Sequence[str] | None = None,
        worker_labels: Sequence[str] | None = None,
    ) -> None:
        tasks = np.asarray(task_indices, dtype=np.int64)
        workers = np.asarray(worker_indices, dtype=np.int64)
        if tasks.ndim != 1 or workers.ndim != 1:
            raise InvalidAnswerSetError("task/worker indices must be 1-D")
        if len(tasks) != len(workers):
            raise InvalidAnswerSetError(
                f"length mismatch: {len(tasks)} tasks vs {len(workers)} workers"
            )

        self.task_type = task_type
        self.n_choices = validate_n_choices(task_type, n_choices)

        if task_type.is_categorical:
            vals = np.asarray(values, dtype=np.int64)
            if len(vals) and (vals.min() < 0 or vals.max() >= self.n_choices):
                raise InvalidAnswerSetError(
                    f"categorical answers must lie in [0, {self.n_choices}), "
                    f"got range [{vals.min()}, {vals.max()}]"
                )
        else:
            vals = np.asarray(values, dtype=np.float64)
            if len(vals) and not np.all(np.isfinite(vals)):
                raise InvalidAnswerSetError("numeric answers must be finite")
        if len(vals) != len(tasks):
            raise InvalidAnswerSetError(
                f"length mismatch: {len(tasks)} indices vs {len(vals)} values"
            )

        if len(tasks) and tasks.min() < 0:
            raise InvalidAnswerSetError("task indices must be non-negative")
        if len(workers) and workers.min() < 0:
            raise InvalidAnswerSetError("worker indices must be non-negative")

        inferred_tasks = int(tasks.max()) + 1 if len(tasks) else 0
        inferred_workers = int(workers.max()) + 1 if len(workers) else 0
        self.n_tasks = int(n_tasks) if n_tasks is not None else inferred_tasks
        self.n_workers = (int(n_workers) if n_workers is not None
                          else inferred_workers)
        if self.n_tasks < inferred_tasks:
            raise InvalidAnswerSetError(
                f"n_tasks={self.n_tasks} smaller than max task "
                f"index {inferred_tasks - 1}"
            )
        if self.n_workers < inferred_workers:
            raise InvalidAnswerSetError(
                f"n_workers={self.n_workers} smaller than max worker index "
                f"{inferred_workers - 1}"
            )

        self.tasks = tasks
        self.workers = workers
        self.values = vals
        self.task_labels = list(task_labels) if task_labels is not None else None
        self.worker_labels = list(worker_labels) if worker_labels is not None else None
        if self.task_labels is not None and len(self.task_labels) != self.n_tasks:
            raise InvalidAnswerSetError("task_labels length must equal n_tasks")
        if self.worker_labels is not None and len(self.worker_labels) != self.n_workers:
            raise InvalidAnswerSetError("worker_labels length must equal n_workers")

        # Lazily-built adjacency caches (CSR-style index lists).
        self._by_task: list[np.ndarray] | None = None
        self._by_worker: list[np.ndarray] | None = None

        # Freeze the underlying arrays: the container is immutable.
        for arr in (self.tasks, self.workers, self.values):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[tuple],
        task_type: TaskType,
        n_choices: int | None = None,
        label_order: Sequence | None = None,
    ) -> "AnswerSet":
        """Build an answer set from ``(task_id, worker_id, value)`` triples.

        Task and worker identifiers may be arbitrary hashables; they are
        indexed in order of first appearance.  For categorical task types,
        values may be arbitrary labels: pass ``label_order`` to fix the
        label-index mapping (e.g. ``['F', 'T']``), otherwise labels are
        indexed in sorted order.
        """
        records = list(records)
        task_index: dict = {}
        worker_index: dict = {}
        for task_id, worker_id, _ in records:
            task_index.setdefault(task_id, len(task_index))
            worker_index.setdefault(worker_id, len(worker_index))

        raw_values = [value for _, _, value in records]
        if task_type.is_categorical:
            if label_order is None:
                label_order = sorted(set(raw_values), key=repr)
            label_index = {label: k for k, label in enumerate(label_order)}
            missing = set(raw_values) - set(label_index)
            if missing:
                raise InvalidAnswerSetError(
                    f"answers contain labels not in label_order: "
                    f"{sorted(missing, key=repr)}"
                )
            values: list = [label_index[v] for v in raw_values]
            if n_choices is None and task_type is TaskType.SINGLE_CHOICE:
                n_choices = len(label_order)
        else:
            values = [float(v) for v in raw_values]

        return cls(
            task_indices=[task_index[t] for t, _, _ in records],
            worker_indices=[worker_index[w] for _, w, _ in records],
            values=values,
            task_type=task_type,
            n_choices=n_choices,
            task_labels=[str(t) for t in task_index],
            worker_labels=[str(w) for w in worker_index],
        )

    def iter_records(self, indices: Sequence[int] | None = None):
        """Yield ``(task_id, worker_id, value)`` triples.

        Task/worker identifiers are the external labels when present,
        dense integer indices otherwise; categorical values come back as
        plain ``int`` label codes, numeric values as ``float``.  The
        inverse of :meth:`from_records` (modulo label decoding), and the
        canonical way to replay an answer set into a stream.  Pass
        ``indices`` to yield only those flat answer positions.
        """
        task_ids = (self.task_labels if self.task_labels is not None
                    else list(range(self.n_tasks)))
        worker_ids = (self.worker_labels if self.worker_labels is not None
                      else list(range(self.n_workers)))
        categorical = self.task_type.is_categorical
        positions = range(self.n_answers) if indices is None else indices
        for k in positions:
            value = self.values[k]
            yield (task_ids[self.tasks[k]], worker_ids[self.workers[k]],
                   int(value) if categorical else float(value))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_answers(self) -> int:
        """Total number of collected answers ``|V|``."""
        return len(self.values)

    @property
    def redundancy(self) -> float:
        """Average answers per task, ``|V| / n`` (Table 5 column)."""
        if self.n_tasks == 0:
            return 0.0
        return self.n_answers / self.n_tasks

    def __len__(self) -> int:
        return self.n_answers

    def __repr__(self) -> str:
        return (
            f"AnswerSet(type={self.task_type.value}, tasks={self.n_tasks}, "
            f"workers={self.n_workers}, answers={self.n_answers})"
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> None:
        if self._by_task is not None:
            return
        order = radix_argsort(self.tasks)
        boundaries = np.searchsorted(self.tasks[order], np.arange(self.n_tasks + 1))
        self._by_task = [
            order[boundaries[i]:boundaries[i + 1]] for i in range(self.n_tasks)
        ]
        worder = radix_argsort(self.workers)
        wbound = np.searchsorted(self.workers[worder], np.arange(self.n_workers + 1))
        self._by_worker = [
            worder[wbound[w]:wbound[w + 1]] for w in range(self.n_workers)
        ]

    def answers_of_task(self, task: int) -> np.ndarray:
        """Indices (into the flat answer arrays) of answers to ``task``."""
        self._build_adjacency()
        assert self._by_task is not None
        return self._by_task[task]

    def answers_of_worker(self, worker: int) -> np.ndarray:
        """Indices (into the flat answer arrays) of answers by ``worker``."""
        self._build_adjacency()
        assert self._by_worker is not None
        return self._by_worker[worker]

    def workers_of_task(self, task: int) -> np.ndarray:
        """The worker set ``W_i`` for a task (Definition 2)."""
        return self.workers[self.answers_of_task(task)]

    def tasks_of_worker(self, worker: int) -> np.ndarray:
        """The task set ``T^w`` for a worker (Definition 2)."""
        return self.tasks[self.answers_of_worker(worker)]

    def task_answer_counts(self) -> np.ndarray:
        """Number of answers received by each task (length ``n_tasks``)."""
        return np.bincount(self.tasks, minlength=self.n_tasks)

    def worker_answer_counts(self) -> np.ndarray:
        """Number of answers given by each worker, ``|T^w|`` per worker."""
        return np.bincount(self.workers, minlength=self.n_workers)

    # ------------------------------------------------------------------
    # Categorical helpers
    # ------------------------------------------------------------------
    def require_categorical(self) -> None:
        """Raise unless this answer set holds categorical answers."""
        from ..exceptions import TaskTypeMismatchError

        if not self.task_type.is_categorical:
            raise TaskTypeMismatchError(
                "operation requires categorical (decision-making/single-choice) answers"
            )

    def require_numeric(self) -> None:
        """Raise unless this answer set holds numeric answers."""
        from ..exceptions import TaskTypeMismatchError

        if not self.task_type.is_numeric:
            raise TaskTypeMismatchError("operation requires numeric answers")

    def vote_counts(self) -> np.ndarray:
        """Per-task vote counts, shape ``(n_tasks, n_choices)``.

        Entry ``[i, j]`` is the number of workers who chose label ``j``
        for task ``i`` (the ``n_{i,j}`` of Section 6.2.1).
        """
        self.require_categorical()
        counts = np.zeros((self.n_tasks, self.n_choices), dtype=np.float64)
        np.add.at(counts, (self.tasks, self.values.astype(np.int64)), 1.0)
        return counts

    def onehot(self) -> np.ndarray:
        """One-hot encoding of answers, shape ``(n_answers, n_choices)``."""
        self.require_categorical()
        eye = np.eye(self.n_choices)
        return eye[self.values.astype(np.int64)]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def select(self, answer_mask: np.ndarray) -> "AnswerSet":
        """Return a new answer set containing only the masked answers.

        The task/worker index spaces (and label tables) are preserved so
        that ground truth arrays remain aligned.
        """
        mask = np.asarray(answer_mask)
        if mask.dtype == bool:
            if len(mask) != self.n_answers:
                raise InvalidAnswerSetError("boolean mask length must equal n_answers")
            idx = np.nonzero(mask)[0]
        else:
            idx = mask.astype(np.int64)
        return AnswerSet(
            task_indices=self.tasks[idx],
            worker_indices=self.workers[idx],
            values=self.values[idx],
            task_type=self.task_type,
            n_choices=self.n_choices or None,
            n_tasks=self.n_tasks,
            n_workers=self.n_workers,
            task_labels=self.task_labels,
            worker_labels=self.worker_labels,
        )

    def subsample_redundancy(self, r: int, rng: np.random.Generator) -> "AnswerSet":
        """Keep at most ``r`` randomly chosen answers per task.

        This is the protocol of Section 6.3.1: "for each specific r, we
        randomly select r out of the answers collected for each task".
        Tasks with fewer than ``r`` answers keep all of them.
        """
        if r < 1:
            raise InvalidAnswerSetError(f"redundancy must be >= 1, got {r}")
        keep: list[np.ndarray] = []
        for task in range(self.n_tasks):
            idx = self.answers_of_task(task)
            if len(idx) <= r:
                keep.append(idx)
            else:
                keep.append(rng.choice(idx, size=r, replace=False))
        flat = np.concatenate(keep) if keep else np.empty(0, dtype=np.int64)
        return self.select(np.sort(flat))

    def answers_by_worker_dict(self) -> Mapping[int, np.ndarray]:
        """Worker -> array of flat answer indices, for all workers."""
        self._build_adjacency()
        assert self._by_worker is not None
        return {w: self._by_worker[w] for w in range(self.n_workers)}

    def shard_by_tasks(self, n_shards: int):
        """Partition into contiguous task-range shards for map-reduce EM.

        Returns a :class:`~repro.core.shards.ShardedAnswerSet`; with
        ``n_shards=1`` the single shard reuses these arrays untouched.
        """
        from .shards import ShardedAnswerSet

        return ShardedAnswerSet(self, n_shards)
