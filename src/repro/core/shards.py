"""Task-range sharding of answer sets (the map-reduce layout).

Truth-inference EM is embarrassingly decomposable over tasks: the E-step
of every surveyed method updates each task's posterior from that task's
answers alone, and the M-step reduces per-answer statistics into global
worker parameters.  This module provides the storage layout that makes
the decomposition mechanical:

* :class:`AnswerShard` — a zero-copy view over a contiguous *task range*
  ``[task_start, task_stop)`` of an answer set.  Task, worker and label
  indices remain **global**: a shard never renumbers anything, so
  per-shard posterior blocks concatenate directly into the global
  posterior and per-shard worker statistics merge by plain addition.
* :class:`ShardedAnswerSet` — an answer set re-ordered (stably) by task
  plus the list of shards covering it.  With ``n_shards=1`` the original
  arrays are used as-is, unsorted — the single-shard path is *the* plain
  path, bit-for-bit.
* :func:`shard_by_tasks` — the partitioner: answer-balanced task-range
  cuts, so skewed task sizes still give even shard work.

The stable sort keeps each task's answers in their original arrival
order, which is what lets sharded E-steps reproduce the unsharded
per-task accumulation order exactly (see :mod:`repro.inference.segops`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import InvalidAnswerSetError
from .answers import AnswerSet
from .framework import radix_argsort


class AnswerShard:
    """A contiguous task-range view over (possibly re-ordered) answers.

    Parameters
    ----------
    tasks, workers, values:
        Flat answer arrays (typically slices of a task-sorted answer
        set).  All task indices must lie in ``[task_start, task_stop)``;
        worker indices and label codes are global.
    task_start, task_stop:
        The global task range this shard owns.  Every task in the range
        belongs to this shard, even tasks that received no answers.
    n_tasks, n_workers, n_choices:
        Global sizes, identical across all shards of an answer set.
    index:
        Position of this shard within its :class:`ShardedAnswerSet`
        (used as a cache key by per-shard operators).
    """

    __slots__ = ("tasks", "workers", "values", "task_start", "task_stop",
                 "n_tasks", "n_workers", "n_choices", "index",
                 "_local_tasks")

    def __init__(self, tasks: np.ndarray, workers: np.ndarray,
                 values: np.ndarray, task_start: int, task_stop: int,
                 n_tasks: int, n_workers: int, n_choices: int,
                 index: int = 0) -> None:
        if not 0 <= task_start <= task_stop <= n_tasks:
            raise InvalidAnswerSetError(
                f"shard task range [{task_start}, {task_stop}) outside "
                f"[0, {n_tasks})"
            )
        self.tasks = tasks
        self.workers = workers
        self.values = values
        self.task_start = int(task_start)
        self.task_stop = int(task_stop)
        self.n_tasks = int(n_tasks)
        self.n_workers = int(n_workers)
        self.n_choices = int(n_choices)
        self.index = int(index)
        self._local_tasks: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_local_tasks(self) -> int:
        """Number of tasks this shard owns (``task_stop - task_start``)."""
        return self.task_stop - self.task_start

    @property
    def n_answers(self) -> int:
        return len(self.tasks)

    @property
    def local_tasks(self) -> np.ndarray:
        """Task indices rebased to the shard (``tasks - task_start``)."""
        if self._local_tasks is None:
            if self.task_start == 0:
                self._local_tasks = self.tasks
            else:
                self._local_tasks = self.tasks - self.task_start
        return self._local_tasks

    def __len__(self) -> int:
        return self.n_answers

    def __repr__(self) -> str:
        return (
            f"AnswerShard(tasks=[{self.task_start}, {self.task_stop}), "
            f"answers={self.n_answers})"
        )


class ShardedAnswerSet:
    """An answer set partitioned into contiguous task-range shards.

    ``n_shards=1`` keeps the original flat arrays untouched (no sort, no
    copy): the one shard *is* the plain answer set, so single-shard EM
    reduces to the unsharded computation bit-for-bit.  With more shards
    the answers are stably sorted by task once, and each shard is a
    zero-copy slice of the sorted arrays.

    Shard task ranges are contiguous, disjoint, and cover ``[0,
    n_tasks)`` in order, so per-shard posterior blocks reassemble into
    the global posterior with a single concatenation.

    A request for more shards than there are tasks is **clamped
    deterministically** to the task count (every shard owns at least
    one task; an answer set with fewer tasks than requested shards
    simply gets fewer, never-empty ranges).  The requested value is
    kept in :attr:`requested_shards`.

    ``task_cuts`` pins the shard boundaries instead of computing
    answer-balanced ones — what a *delta* refit needs so its cached
    per-shard state stays aligned across fits (the cuts must start at
    0, be non-decreasing, and end at ``n_tasks``; the clamp does not
    apply).
    """

    def __init__(self, answers: AnswerSet, n_shards: int,
                 task_cuts: list[int] | None = None) -> None:
        if n_shards < 1:
            raise InvalidAnswerSetError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        self.answers = answers
        #: The caller's shard count, before the task-count clamp.
        self.requested_shards = int(n_shards)
        if task_cuts is not None:
            task_cuts = [int(c) for c in task_cuts]
            if (len(task_cuts) < 2 or task_cuts[0] != 0
                    or task_cuts[-1] != answers.n_tasks
                    or any(a > b for a, b in zip(task_cuts, task_cuts[1:]))):
                raise InvalidAnswerSetError(
                    f"pinned task_cuts must run 0..{answers.n_tasks} "
                    f"non-decreasingly, got {task_cuts}"
                )
            n_shards = len(task_cuts) - 1
        else:
            n_shards = max(1, min(int(n_shards), answers.n_tasks))
        self.n_shards = n_shards

        values = answers.values
        if answers.task_type.is_categorical:
            values = values.astype(np.int64, copy=False)

        if n_shards == 1:
            # Pinned or not, one shard is the original arrays untouched
            # (the plain-path invariant — bit-for-bit the unsharded EM).
            self.order = None
            tasks, workers = answers.tasks, answers.workers
            bounds = [0, answers.n_answers]
            task_cuts = [0, answers.n_tasks]
        else:
            self.order = radix_argsort(answers.tasks)
            tasks = answers.tasks[self.order]
            workers = answers.workers[self.order]
            values = values[self.order]
            if task_cuts is None:
                task_cuts = self._task_cuts(tasks, answers.n_tasks,
                                            n_shards)
            bounds = list(np.searchsorted(tasks, task_cuts, side="left"))

        # The flat (task-sorted) arrays every shard is a slice of; the
        # process runner copies these straight into shared memory.
        self.flat_tasks = tasks
        self.flat_workers = workers
        self.flat_values = values

        self.shards: list[AnswerShard] = []
        for k in range(self.n_shards):
            lo, hi = bounds[k], bounds[k + 1]
            self.shards.append(AnswerShard(
                tasks=tasks[lo:hi],
                workers=workers[lo:hi],
                values=values[lo:hi],
                task_start=task_cuts[k],
                task_stop=task_cuts[k + 1],
                n_tasks=answers.n_tasks,
                n_workers=answers.n_workers,
                n_choices=answers.n_choices,
                index=k,
            ))

    @staticmethod
    def _task_cuts(sorted_tasks: np.ndarray, n_tasks: int,
                   n_shards: int) -> list[int]:
        """Task-range boundaries balancing *answers*, not task counts.

        Interior cuts are placed at the task owning the ``k/n``-th
        answer quantile (so heavy tasks don't overload one shard), made
        non-decreasing, and clamped so every shard gets a valid —
        possibly empty — range.  Falls back to an even task split when
        there are no answers.
        """
        n_answers = len(sorted_tasks)
        cuts = [0]
        for k in range(1, n_shards):
            if n_answers:
                cut = int(sorted_tasks[(k * n_answers) // n_shards])
            else:
                cut = (k * n_tasks) // n_shards
            cuts.append(max(cut, cuts[-1]))
        cuts.append(n_tasks)
        return [min(c, n_tasks) for c in cuts]

    @property
    def task_ranges(self) -> list[tuple[int, int]]:
        """Global ``(task_start, task_stop)`` of every shard, in order."""
        return [(s.task_start, s.task_stop) for s in self.shards]

    def __len__(self) -> int:
        return self.n_shards

    def __iter__(self) -> Iterator[AnswerShard]:
        return iter(self.shards)

    def __getitem__(self, k: int) -> AnswerShard:
        return self.shards[k]

    def __repr__(self) -> str:
        return (
            f"ShardedAnswerSet(n_shards={self.n_shards}, "
            f"answers={self.answers.n_answers}, "
            f"tasks={self.answers.n_tasks})"
        )


def shard_by_tasks(answers: AnswerSet, n_shards: int) -> ShardedAnswerSet:
    """Partition an answer set into ``n_shards`` task-range shards.

    The functional spelling of :class:`ShardedAnswerSet` (also available
    as :meth:`AnswerSet.shard_by_tasks`).  ``n_shards`` greater than the
    task count is clamped deterministically to the task count.
    """
    return ShardedAnswerSet(answers, n_shards)
