"""Abstract base classes for truth-inference methods.

Every algorithm in :mod:`repro.methods` subclasses
:class:`TruthInferenceMethod` and implements :meth:`_fit`.  The base
class handles the cross-cutting concerns the paper's experiments rely on:

* task-type validation (Table 4's "Task Types" column);
* timing (Table 6's "Time" column);
* qualification-test initialisation (Section 6.3.2) — an optional
  per-worker initial-quality vector estimated from golden tasks;
* hidden-test golden truths (Section 6.3.3) — a mapping from task index
  to known truth that step 1 must not overwrite;
* a per-call random generator so that experiments are reproducible.
"""

from __future__ import annotations

import abc
import contextlib
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import ClassVar, Mapping

import numpy as np

from ..exceptions import TaskTypeMismatchError
from .answers import AnswerSet
from .framework import DEFAULT_MAX_ITER, DEFAULT_TOLERANCE
from .policy import ExecutionPlan, ExecutionPolicy, MethodSpec
from .result import InferenceResult
from .tasktypes import TaskType


class TruthInferenceMethod(abc.ABC):
    """Base class for all 17 methods.

    Class attributes
    ----------------
    name:
        Registry name, matching the paper's method name (e.g. ``"D&S"``).
    task_types:
        The task types the method supports (paper Table 4).
    supports_initial_quality:
        Whether the method can consume a qualification-test initial
        quality vector (Table 7 lists the 8 methods that can).
    supports_golden:
        Whether the method can clamp hidden-test golden truths (Section
        6.3.3 lists the 9 methods that can).
    supports_warm_start:
        Whether the method can resume from a previous
        :class:`InferenceResult` fitted on an earlier (smaller) snapshot
        of the same answer stream — see :meth:`fit`'s ``warm_start``
        parameter and :mod:`repro.core.warmstart`.
    supports_sharding:
        Whether the method's EM is expressed as mergeable sufficient
        statistics over task-range shards
        (:mod:`repro.inference.sharded`) and therefore honours the
        ``n_shards`` / ``shard_workers`` constructor knobs and the
        ``shard_runner`` fit parameter.
    supports_seed_posterior:
        Whether a cold fit can start from an externally supplied truth
        posterior (``fit(..., seed_posterior=...)``) in place of the
        majority-vote posterior it would otherwise compute — lets batch
        runs compute majority voting once per dataset and share it.
    supports_delta:
        Whether the method honours an incremental
        :class:`~repro.inference.sharded.DeltaPlan` with a cached
        ``prev`` state — its own per-family contract (dirty-shard
        statistics EM, message warm restarts, gradient restarts, Gibbs
        chain continuation).  Methods without it demote a passed plan
        to a collecting full fit; ``ExecutionPolicy(refit="delta")``
        warns when handed to such a method.
    """

    name: ClassVar[str] = "abstract"
    task_types: ClassVar[frozenset] = frozenset()
    supports_initial_quality: ClassVar[bool] = False
    supports_golden: ClassVar[bool] = False
    supports_warm_start: ClassVar[bool] = False
    supports_sharding: ClassVar[bool] = False
    supports_seed_posterior: ClassVar[bool] = False
    supports_delta: ClassVar[bool] = False
    #: True for post-paper extension methods (kept out of the faithful
    #: 17-method experiment harness unless explicitly requested).
    is_extension: ClassVar[bool] = False

    #: Filled by :func:`repro.core.registry.create`: the
    #: :class:`~repro.core.policy.MethodSpec` this instance was built
    #: from (execution knobs stripped), so ``fit(policy=...)``'s
    #: process tier can rebuild the method inside worker processes.
    #: ``None`` for instances constructed directly from the class.
    method_spec: MethodSpec | None = None

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iter: int = DEFAULT_MAX_ITER,
        seed: int | None = None,
        n_shards: int = 1,
        shard_workers: int = 0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards > 1 and not type(self).supports_sharding:
            raise ValueError(
                f"{self.name} does not support sharded EM (n_shards={n_shards})"
            )
        if shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0, got {shard_workers}"
            )
        self.tolerance = tolerance
        self.max_iter = max_iter
        self.seed = seed
        self.n_shards = n_shards
        #: Thread-pool width for in-process sharded fits (0/1 = serial).
        self.shard_workers = shard_workers

    # ------------------------------------------------------------------
    def fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None = None,
        initial_quality: np.ndarray | None = None,
        warm_start: InferenceResult | None = None,
        seed_posterior: np.ndarray | None = None,
        shard_runner=None,
        policy: ExecutionPolicy | ExecutionPlan | None = None,
        delta=None,
    ) -> InferenceResult:
        """Infer truths and worker qualities from an answer set.

        Parameters
        ----------
        answers:
            The collected answers ``V``.
        golden:
            Optional hidden-test golden tasks: mapping from task index to
            its known truth.  Ignored (with no error) by methods that set
            ``supports_golden = False``, matching the paper's observation
            that only some methods "can be easily extended to incorporate
            the golden tasks".
        initial_quality:
            Optional qualification-test estimate of each worker's
            accuracy in ``[0, 1]``, length ``n_workers``.  Ignored by
            methods that set ``supports_initial_quality = False``.
        warm_start:
            Optional :class:`InferenceResult` from a previous fit on an
            earlier snapshot of the same (append-only) answer stream.
            Methods that set ``supports_warm_start = True`` resume the
            iteration from that state — previously seen tasks/workers
            keep their fitted parameters, new ones are seeded from
            majority voting or neutral defaults — and typically converge
            in a handful of iterations.  Ignored by other methods.
        seed_posterior:
            Optional ``(n_tasks, n_choices)`` truth posterior a cold fit
            starts from *in place of* the majority-vote posterior it
            would compute itself (same values, shared across methods —
            see :class:`repro.engine.batch.BatchRunner`).  Lower
            precedence than ``warm_start`` and ``initial_quality``;
            ignored by methods without ``supports_seed_posterior``.
        shard_runner:
            Optional pre-built shard runner (e.g. a process-pool runner
            over shared-memory shards from
            :mod:`repro.engine.sharded`) that sharded EM methods use in
            place of the serial runner they would build from
            ``n_shards``.  Ignored by methods without
            ``supports_sharding``.
        policy:
            Optional :class:`~repro.core.policy.ExecutionPolicy` (or
            already-resolved plan) deciding *how this one fit* runs:
            resolved against ``answers``, it overrides the instance's
            constructor sharding knobs — serial/thread plans build the
            matching in-process runner, process plans lease the
            persistent shared-memory runtime (one-shot when the plan
            says ``persistent=False``).  Ignored by methods without
            ``supports_sharding`` and whenever ``shard_runner`` is
            supplied explicitly.
        delta:
            Optional :class:`~repro.inference.sharded.DeltaPlan` opting
            this fit into the incremental (delta-refit) EM path: with a
            cached ``prev`` state the fit primes only dirty shards and
            freezes converged ones (``warm_start`` required); with
            ``prev=None`` the fit runs full but collects the
            :class:`~repro.inference.sharded.ShardState` the next delta
            refit resumes from (returned as ``result.shard_state``).
            Driven by the engines when the policy says
            ``refit="delta"``; ignored by methods without
            ``supports_sharding``.
        """
        if answers.task_type not in self.task_types:
            raise TaskTypeMismatchError(
                f"{self.name} does not support {answers.task_type.value} tasks"
            )
        if initial_quality is not None:
            initial_quality = np.asarray(initial_quality, dtype=np.float64)
            if initial_quality.shape != (answers.n_workers,):
                raise ValueError(
                    f"initial_quality must have shape ({answers.n_workers},), "
                    f"got {initial_quality.shape}"
                )
        golden = dict(golden) if golden else None
        if golden:
            bad = [t for t in golden if not 0 <= int(t) < answers.n_tasks]
            if bad:
                raise ValueError(f"golden task indices out of range: {bad[:5]}")

        extra_kwargs = {}
        if self.supports_warm_start:
            if warm_start is not None:
                self._validate_warm_start(warm_start, answers)
            extra_kwargs["warm_start"] = warm_start
        if self.supports_seed_posterior:
            if seed_posterior is not None:
                seed_posterior = np.asarray(seed_posterior, dtype=np.float64)
                expected = (answers.n_tasks, answers.n_choices)
                if seed_posterior.shape != expected:
                    raise ValueError(
                        f"seed_posterior must have shape {expected}, "
                        f"got {seed_posterior.shape}"
                    )
            extra_kwargs["seed_posterior"] = seed_posterior
        runner_cm = contextlib.nullcontext(shard_runner)
        if (self.supports_sharding and policy is not None
                and shard_runner is None):
            runner_cm = self._policy_runner(answers, policy)
        elif policy is not None and not self.supports_sharding:
            self._warn_ignored_policy(policy)
        if (policy is not None and not self.supports_delta
                and getattr(policy, "refit", "full") == "delta"):
            warnings.warn(
                f"{self.name} can only refit full; ExecutionPolicy "
                f'refit="delta" is ignored (no per-family delta '
                f"contract — see Capabilities.delta)",
                UserWarning, stacklevel=2)

        rng = np.random.default_rng(self.seed)
        started = time.perf_counter()
        with runner_cm as runner:
            if self.supports_sharding:
                extra_kwargs["shard_runner"] = runner
                extra_kwargs["delta"] = delta
            result = self._fit(
                answers,
                golden=golden if self.supports_golden else None,
                initial_quality=(
                    initial_quality if self.supports_initial_quality else None
                ),
                rng=rng,
                **extra_kwargs,
            )
        result.elapsed_seconds = time.perf_counter() - started
        result.method = self.name
        if result.fit_stats is not None:
            result.fit_stats.total_seconds = result.elapsed_seconds
        if result.shard_state is not None:
            # Stamp the dirtiness boundary (and, for a freshly placed
            # layout, the rebalance base) for the next delta refit.
            result.shard_state.n_answers = answers.n_answers
            if not result.shard_state.base_answers:
                result.shard_state.base_answers = answers.n_answers
        return result

    def _validate_warm_start(self, warm_start: InferenceResult,
                             answers: AnswerSet) -> None:
        """Check a warm-start state is compatible with the answer set.

        The streaming protocol is append-only, so a valid warm state
        covers a *prefix* of the current task/worker index spaces and
        (for categorical tasks) the same choice count.
        """
        if not isinstance(warm_start, InferenceResult):
            raise ValueError(
                f"warm_start must be an InferenceResult, got "
                f"{type(warm_start).__name__}"
            )
        if warm_start.n_tasks > answers.n_tasks:
            raise ValueError(
                f"warm_start covers {warm_start.n_tasks} tasks but the "
                f"answer set only has {answers.n_tasks}; warm starts "
                f"require an append-only stream"
            )
        if warm_start.n_workers > answers.n_workers:
            raise ValueError(
                f"warm_start covers {warm_start.n_workers} workers but "
                f"the answer set only has {answers.n_workers}"
            )
        if answers.task_type.is_categorical:
            posterior = warm_start.posterior
            if posterior is None:
                raise ValueError(
                    "warm_start for a categorical method needs the "
                    "previous truth posterior"
                )
            if posterior.shape[1] != answers.n_choices:
                raise ValueError(
                    f"warm_start posterior has {posterior.shape[1]} "
                    f"choices, answer set has {answers.n_choices}; the "
                    f"label space must stay fixed across snapshots"
                )

    # ------------------------------------------------------------------
    # Sharded map-reduce EM (methods with supports_sharding = True)
    # ------------------------------------------------------------------
    def make_em_spec(self, n_tasks: int, n_workers: int, n_choices: int):
        """Build this method's :class:`~repro.inference.sharded.ShardedEMSpec`.

        Only meaningful for methods with ``supports_sharding = True``;
        the spec depends solely on global sizes and constructor
        configuration, so worker processes can rebuild it from the
        registry (``create(name, **kwargs).make_em_spec(...)``).
        """
        raise NotImplementedError(
            f"{self.name} does not express its EM as sharded statistics"
        )

    def _warn_ignored_policy(
            self, policy: ExecutionPolicy | ExecutionPlan) -> None:
        """Warn once per fit when a non-sharding method is handed a
        policy naming explicit parallelism it cannot honour.

        Grids legitimately set one policy for a whole method zoo, so a
        *default* policy (auto tiering, unset shard count) stays
        silent; only fields that asked for something — ``n_shards > 1``
        or a forced thread/process tier — are reported.  Driven off the
        same ``supports_sharding`` capability the registry's
        :class:`~repro.core.registry.Capabilities` table mirrors.
        """
        ignored = []
        n_shards = getattr(policy, "n_shards", None)
        if n_shards is not None and n_shards > 1:
            ignored.append(f"n_shards={n_shards}")
        if isinstance(policy, ExecutionPlan):
            if policy.mode in ("thread", "process"):
                ignored.append(f"mode={policy.mode!r}")
        elif getattr(policy, "executor", "auto") in ("thread", "process"):
            ignored.append(f"executor={policy.executor!r}")
        if ignored:
            warnings.warn(
                f"{self.name} does not support sharding; ExecutionPolicy "
                f"fields ignored: {', '.join(ignored)}",
                UserWarning, stacklevel=3)

    @contextlib.contextmanager
    def _policy_runner(self, answers: AnswerSet,
                       policy: ExecutionPolicy | ExecutionPlan):
        """Yield the shard runner a resolved execution plan calls for.

        Serial/thread plans build the in-process runner directly (the
        plan overrides the instance's constructor knobs); process plans
        lease the persistent shared-memory runtime — or a one-shot
        process runner when the plan says ``persistent=False``.
        """
        plan = (policy.resolve(answers)
                if isinstance(policy, ExecutionPolicy) else policy)
        if plan.mode == "process":
            spec = self.method_spec
            if spec is None:
                raise ValueError(
                    f"fit(policy=...) with a process plan needs a "
                    f"registry-created method so worker processes can "
                    f"rebuild it; construct {self.name} via "
                    f"create()/MethodSpec instead of the class"
                )
            if plan.persistent:
                from ..engine.runtime import get_runtime_registry

                _, lease = get_runtime_registry().lease(
                    plan, answers, spec)
                with lease as runner:
                    yield runner
            else:
                from ..engine.sharded import ProcessShardRunner

                with ProcessShardRunner(
                        answers, spec, n_shards=plan.n_shards,
                        max_workers=plan.max_workers) as runner:
                    yield runner
            return
        from ..inference.sharded import make_runner

        spec = self.make_em_spec(
            n_tasks=answers.n_tasks,
            n_workers=answers.n_workers,
            n_choices=answers.n_choices,
        )
        if (plan.mode == "thread" and plan.n_shards > 1
                and plan.max_workers > 1):
            with ThreadPoolExecutor(
                    max_workers=min(plan.max_workers, plan.n_shards)
            ) as pool:
                yield make_runner(answers, spec, plan.n_shards, pool=pool)
        else:
            yield make_runner(answers, spec, plan.n_shards)

    @contextlib.contextmanager
    def _shard_runner(self, answers: AnswerSet, shard_runner=None,
                      delta=None):
        """Yield the shard runner a sharded ``_fit`` should use.

        An externally supplied runner (e.g. the process-pool runner from
        :mod:`repro.engine.sharded`) wins; otherwise the answers are
        partitioned into ``self.n_shards`` task ranges and run serially,
        or on a transient thread pool when ``shard_workers > 1``.  A
        delta refit (``delta.prev`` set) pins the cuts the cached state
        was fitted with, so its per-shard blocks stay aligned.
        """
        if shard_runner is not None:
            yield shard_runner
            return
        from ..core.shards import ShardedAnswerSet
        from ..inference.sharded import SerialShardRunner

        task_cuts = None
        if delta is not None and getattr(delta, "prev", None) is not None:
            task_cuts = delta.prev.extended_cuts(answers.n_tasks)
        spec = self.make_em_spec(
            n_tasks=answers.n_tasks,
            n_workers=answers.n_workers,
            n_choices=answers.n_choices,
        )
        sharded = ShardedAnswerSet(answers, self.n_shards,
                                   task_cuts=task_cuts)
        if sharded.n_shards > 1 and self.shard_workers > 1:
            with ThreadPoolExecutor(
                    max_workers=min(self.shard_workers, sharded.n_shards)
            ) as pool:
                yield SerialShardRunner(spec, sharded.shards, pool=pool)
        else:
            yield SerialShardRunner(spec, sharded.shards)

    @abc.abstractmethod
    def _fit(
        self,
        answers: AnswerSet,
        golden: Mapping[int, float] | None,
        initial_quality: np.ndarray | None,
        rng: np.random.Generator,
    ) -> InferenceResult:
        """Method-specific inference; implemented by each algorithm."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CategoricalMethod(TruthInferenceMethod):
    """Base for methods over decision-making / single-choice tasks."""

    task_types = frozenset({TaskType.DECISION_MAKING, TaskType.SINGLE_CHOICE})

    @staticmethod
    def uniform_posterior(answers: AnswerSet) -> np.ndarray:
        """A flat (n_tasks, n_choices) posterior to start iterating from."""
        return np.full(
            (answers.n_tasks, answers.n_choices), 1.0 / answers.n_choices
        )

    @staticmethod
    def majority_posterior(answers: AnswerSet) -> np.ndarray:
        """Normalised vote counts — the usual EM initialisation."""
        counts = answers.vote_counts()
        from .framework import normalize_rows

        return normalize_rows(counts)


class BinaryMethod(CategoricalMethod):
    """Base for methods restricted to decision-making tasks (Table 4).

    KOS, VI-BP, VI-MF and Multi are evaluated by the paper only on the
    two decision-making datasets.
    """

    task_types = frozenset({TaskType.DECISION_MAKING})


class NumericMethod(TruthInferenceMethod):
    """Base for methods over numeric tasks."""

    task_types = frozenset({TaskType.NUMERIC})


class GeneralMethod(TruthInferenceMethod):
    """Base for methods supporting categorical *and* numeric tasks.

    In the paper's Table 4 these are CATD and PM.
    """

    task_types = frozenset(
        {TaskType.DECISION_MAKING, TaskType.SINGLE_CHOICE, TaskType.NUMERIC}
    )
