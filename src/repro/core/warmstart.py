"""Warm-start state expansion between answer-set snapshots.

The streaming protocol (see :mod:`repro.engine`) guarantees that task and
worker indices are *append-only*: when an answer set grows, every index
that existed in the previous snapshot still refers to the same task or
worker.  Warm-starting an iterative method on a grown snapshot therefore
reduces to *expanding* the previously fitted state — keeping the old
entries and filling sensible defaults for the new rows — and resuming the
two-step iteration from there.

The helpers here implement the expansions the iterative methods share:

* :func:`expand_posterior` — previous truth posterior, with newly arrived
  tasks seeded from majority voting (the paper's standard EM
  initialisation, and the documented fallback of the warm-start API);
* :func:`expand_task_vector` / :func:`expand_worker_vector` — per-task or
  per-worker parameter vectors padded with a fill value;
* :func:`diagonal_confusion` — fresh confusion matrices for workers that
  appeared after the previous fit.

Streams can also grow their **label space** (a value never seen before
arrives).  Label codes are append-only just like task/worker indices, so
fitted state expands along the choice axis the same way it does along
the task/worker axes: :func:`pad_posterior_labels`,
:func:`pad_confusion_labels` and :func:`pad_class_prior` give unseen
labels a small but non-zero probability mass (a hard zero would be
irrecoverable under multiplicative EM updates), and
:func:`pad_result_labels` applies all three to a cached
:class:`~repro.core.result.InferenceResult` so the engine can warm-start
across label growth instead of falling back to a cold refit.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .answers import AnswerSet
from .framework import normalize_rows
from .result import InferenceResult

#: Probability mass initially granted to a newly discovered label.
LABEL_PAD_EPSILON = 1e-3


def expand_posterior(previous: np.ndarray, answers: AnswerSet) -> np.ndarray:
    """Expand a previous truth posterior to cover ``answers``' tasks.

    Rows for tasks that existed when ``previous`` was fitted are kept
    as-is; rows for newly arrived tasks are seeded with normalised vote
    counts (majority voting) from the current answers.
    """
    previous = np.asarray(previous, dtype=np.float64)
    if previous.ndim != 2 or previous.shape[1] != answers.n_choices:
        raise ValueError(
            f"posterior shape {previous.shape} incompatible with "
            f"{answers.n_choices} choices"
        )
    if previous.shape[0] > answers.n_tasks:
        raise ValueError(
            f"posterior covers {previous.shape[0]} tasks but the answer "
            f"set only has {answers.n_tasks}"
        )
    if previous.shape[0] == answers.n_tasks:
        return previous.copy()
    out = normalize_rows(answers.vote_counts())
    out[: previous.shape[0]] = previous
    return out


def expand_task_vector(previous: np.ndarray, n_tasks: int,
                       fill: float | np.ndarray) -> np.ndarray:
    """Pad a per-task vector to ``n_tasks`` entries.

    ``fill`` is either a scalar or an array of length ``n_tasks`` from
    which the new tail entries are taken.
    """
    return _expand_vector(previous, n_tasks, fill, "tasks")


def expand_worker_vector(previous: np.ndarray, n_workers: int,
                         fill: float | np.ndarray) -> np.ndarray:
    """Pad a per-worker vector to ``n_workers`` entries."""
    return _expand_vector(previous, n_workers, fill, "workers")


def _expand_vector(previous: np.ndarray, size: int,
                   fill: float | np.ndarray, what: str) -> np.ndarray:
    previous = np.asarray(previous, dtype=np.float64)
    if previous.ndim != 1:
        raise ValueError(f"expected a 1-D per-{what[:-1]} vector")
    if len(previous) > size:
        raise ValueError(
            f"vector covers {len(previous)} {what} but the answer set "
            f"only has {size}"
        )
    fill_arr = np.asarray(fill, dtype=np.float64)
    if fill_arr.ndim == 0:
        out = np.full(size, float(fill_arr))
    else:
        if len(fill_arr) != size:
            raise ValueError(f"fill array must have length {size}")
        out = fill_arr.astype(np.float64).copy()
    out[: len(previous)] = previous
    return out


def pad_posterior_labels(posterior: np.ndarray, n_choices: int,
                         epsilon: float = LABEL_PAD_EPSILON) -> np.ndarray:
    """Expand a truth posterior along the label axis.

    New labels receive ``epsilon`` mass and every row is renormalised,
    so previously fitted beliefs survive (slightly discounted) while
    the new labels stay reachable by the next E-step.
    """
    posterior = np.asarray(posterior, dtype=np.float64)
    if posterior.ndim != 2:
        raise ValueError("posterior must be 2-D (n_tasks, n_choices)")
    grown = n_choices - posterior.shape[1]
    if grown < 0:
        raise ValueError(
            f"posterior already has {posterior.shape[1]} labels, cannot "
            f"shrink to {n_choices}; label codes are append-only"
        )
    if grown == 0:
        return posterior.copy()
    out = np.full((posterior.shape[0], n_choices), epsilon)
    out[:, : posterior.shape[1]] = posterior
    return normalize_rows(out)


def pad_class_prior(prior: np.ndarray, n_choices: int,
                    epsilon: float = LABEL_PAD_EPSILON) -> np.ndarray:
    """Expand a class prior with ``epsilon`` mass per new label."""
    prior = np.asarray(prior, dtype=np.float64)
    grown = n_choices - len(prior)
    if grown < 0:
        raise ValueError("label codes are append-only; cannot shrink prior")
    if grown == 0:
        return prior.copy()
    out = np.concatenate([prior, np.full(grown, epsilon)])
    return out / out.sum()


def pad_confusion_labels(confusion: np.ndarray, n_choices: int,
                         epsilon: float = LABEL_PAD_EPSILON) -> np.ndarray:
    """Expand ``(n_workers, l, l)`` confusion matrices to a grown label
    space.

    Existing truth rows get ``epsilon`` mass on the new answer columns;
    new truth rows start uniform (the worker's behaviour on a label
    nobody had seen is unknown).  All rows are renormalised.
    """
    confusion = np.asarray(confusion, dtype=np.float64)
    if confusion.ndim != 3 or confusion.shape[1] != confusion.shape[2]:
        raise ValueError("confusion must have shape (n_workers, l, l)")
    old = confusion.shape[1]
    if n_choices < old:
        raise ValueError("label codes are append-only; cannot shrink "
                         "confusion matrices")
    if n_choices == old:
        return confusion.copy()
    out = np.full((confusion.shape[0], n_choices, n_choices), epsilon)
    out[:, :old, :old] = confusion
    out[:, old:, :] = 1.0 / n_choices
    out /= out.sum(axis=2, keepdims=True)
    return out


def pad_result_labels(result: InferenceResult,
                      n_choices: int) -> InferenceResult:
    """A copy of ``result`` expanded to a grown label space.

    Pads the posterior and the label-indexed extras (``confusion``,
    ``class_prior``) so the copy satisfies the warm-start contract of a
    snapshot with ``n_choices`` labels; everything else is shared.
    """
    if result.posterior is None:
        raise ValueError(
            "cannot pad a result without a posterior across label growth"
        )
    extras = dict(result.extras)
    if extras.get("confusion") is not None:
        extras["confusion"] = pad_confusion_labels(
            extras["confusion"], n_choices)
    if extras.get("class_prior") is not None:
        extras["class_prior"] = pad_class_prior(
            extras["class_prior"], n_choices)
    return dataclasses.replace(
        result,
        posterior=pad_posterior_labels(result.posterior, n_choices),
        extras=extras,
    )


def neutral_accuracy(previous_quality: np.ndarray) -> float:
    """Seed accuracy for workers unseen by the previous fit.

    The mean quality of the known pool, clipped into ``[0.5, 0.95]`` so
    a newcomer neither dominates nor gets written off; ``0.7`` when the
    previous fit saw no workers at all.
    """
    previous_quality = np.asarray(previous_quality, dtype=np.float64)
    if previous_quality.size == 0:
        return 0.7
    return float(np.clip(np.mean(previous_quality), 0.5, 0.95))


def diagonal_confusion(n_workers: int, n_choices: int,
                       accuracy: float = 0.7) -> np.ndarray:
    """Fresh ``(n_workers, l, l)`` confusion matrices for unseen workers.

    Each worker gets ``accuracy`` on the diagonal and the remaining mass
    spread uniformly off it — the same shape qualification tests produce.
    """
    accuracy = float(np.clip(accuracy, 1e-3, 1 - 1e-3))
    off = (1.0 - accuracy) / max(n_choices - 1, 1)
    confusion = np.full((n_workers, n_choices, n_choices), off)
    idx = np.arange(n_choices)
    confusion[:, idx, idx] = accuracy
    return confusion
