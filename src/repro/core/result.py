"""Result container returned by every truth-inference method.

The paper's Algorithm 1 returns two things: the inferred truth ``v*_i``
for every task and the quality ``q^w`` for every worker.  We additionally
keep the full truth posterior for categorical methods (useful for
analysis and for the hidden-test protocol), convergence diagnostics, and
wall-clock time, which Table 6 reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np


@dataclasses.dataclass
class InferenceResult:
    """Output of a truth-inference run.

    Attributes
    ----------
    method:
        Registry name of the method that produced this result.
    truths:
        Array of length ``n_tasks``.  Integer label indices for
        categorical tasks, floats for numeric tasks.
    worker_quality:
        Array of length ``n_workers`` with each worker's scalar quality
        summary ``q^w``.  Methods with richer models (confusion matrices,
        bias/variance) expose the full parameters via ``extras`` and
        summarise them here (e.g. mean diagonal of the confusion matrix).
    posterior:
        Optional ``(n_tasks, n_choices)`` array of truth probabilities
        for categorical methods; ``None`` for numeric methods.
    n_iterations:
        Number of framework iterations executed (0 for direct methods).
    converged:
        Whether the parameter change dropped below the threshold before
        the iteration cap.
    elapsed_seconds:
        Wall-clock inference time (the "Time" column of Table 6).
    extras:
        Method-specific parameters, e.g. ``confusion`` matrices for D&S,
        ``task_difficulty`` for GLAD, ``bias``/``variance`` for Multi.
    """

    method: str
    truths: np.ndarray
    worker_quality: np.ndarray
    posterior: np.ndarray | None = None
    n_iterations: int = 0
    converged: bool = True
    elapsed_seconds: float = 0.0
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.truths = np.asarray(self.truths)
        self.worker_quality = np.asarray(self.worker_quality, dtype=np.float64)
        if self.posterior is not None:
            self.posterior = np.asarray(self.posterior, dtype=np.float64)

    @property
    def n_tasks(self) -> int:
        """Number of tasks the result covers."""
        return len(self.truths)

    @property
    def n_workers(self) -> int:
        """Number of workers the result covers."""
        return len(self.worker_quality)

    def truth_of(self, task: int):
        """The inferred truth of a single task."""
        return self.truths[task]

    def top_workers(self, k: int = 10) -> np.ndarray:
        """Indices of the ``k`` highest-quality workers, best first."""
        order = np.argsort(-self.worker_quality, kind="stable")
        return order[: min(k, len(order))]

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        state = "converged" if self.converged else "iteration cap"
        return (
            f"{self.method}: {self.n_tasks} tasks, {self.n_workers} workers, "
            f"{self.n_iterations} iterations ({state}), "
            f"{self.elapsed_seconds:.3f}s"
        )
