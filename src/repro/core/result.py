"""Result container returned by every truth-inference method.

The paper's Algorithm 1 returns two things: the inferred truth ``v*_i``
for every task and the quality ``q^w`` for every worker.  We additionally
keep the full truth posterior for categorical methods (useful for
analysis and for the hidden-test protocol), convergence diagnostics, and
wall-clock time, which Table 6 reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np


@dataclasses.dataclass
class FitStats:
    """Telemetry of one EM fit: what the iteration actually did.

    Produced by :func:`repro.inference.sharded.run_em_sharded` for every
    sharded-EM fit (``mode="full"``) and filled in detail by delta
    refits (``mode="delta"``), where the per-iteration active/frozen
    shard counts show how much work the freeze protocol skipped.
    Wall-time is split into the EM loop proper (``em_seconds``) and
    everything around it (``overhead_seconds`` — runner construction,
    warm-start assembly, result packaging), which is what the runtime
    and delta-refit benchmarks report.
    """

    mode: str = "full"
    n_shards: int = 1
    iterations: int = 0
    #: Dirty shards at priming (delta refits; ``None`` for full fits).
    dirty_shards: int | None = None
    #: Active (non-frozen) shard count entering each EM iteration.
    active_shards: list[int] = dataclasses.field(default_factory=list)
    #: Frozen shard count entering each EM iteration.
    frozen_shards: list[int] = dataclasses.field(default_factory=list)
    #: Per-shard E-step evaluations, verify passes included.
    e_block_calls: int = 0
    #: Per-shard M-step statistic evaluations actually computed
    #: (cached :class:`~repro.inference.sharded.SufficientStats` reuse
    #: does not count).
    accumulate_calls: int = 0
    #: Full-verify E-steps over the frozen set (delta refits).
    verify_passes: int = 0
    #: Shards thawed by a verify pass showing drift (delta refits).
    thaws: int = 0
    #: Wall-clock seconds inside the EM loop.
    em_seconds: float = 0.0
    #: Wall-clock seconds of the whole ``fit()`` call (stamped by the
    #: method base class alongside ``elapsed_seconds``).
    total_seconds: float = 0.0
    #: Worker pools respawned after a crash or deadline blow-through.
    respawns: int = 0
    #: Phase dispatches re-tried after a crash/timeout recovery.
    retries: int = 0
    #: Phase futures that blew their per-phase deadline.
    timeouts: int = 0
    #: Shard-phase executions degraded to the in-process serial path
    #: after the retry budget ran out.
    degraded: int = 0

    @property
    def overhead_seconds(self) -> float:
        """Fit wall-time spent outside the EM loop."""
        return max(self.total_seconds - self.em_seconds, 0.0)

    def summary(self) -> str:
        """One-line human-readable description (``repro stream -v``)."""
        parts = [f"{self.mode} refit", f"{self.iterations} iterations",
                 f"{self.n_shards} shards"]
        if self.mode == "delta":
            parts.append(f"{self.dirty_shards} dirty at prime")
            if self.active_shards:
                parts.append(
                    "active/iter "
                    + ",".join(str(a) for a in self.active_shards))
            parts.append(f"{self.verify_passes} verifies"
                         + (f" ({self.thaws} thaws)" if self.thaws else ""))
        parts.append(f"{self.e_block_calls} E-blocks")
        parts.append(f"{self.accumulate_calls} stat-blocks")
        parts.append(f"em {self.em_seconds * 1000:.1f}ms"
                     f" + overhead {self.overhead_seconds * 1000:.1f}ms")
        if self.respawns or self.retries or self.timeouts or self.degraded:
            parts.append(
                f"faults: {self.respawns} respawns, {self.retries} "
                f"retries, {self.timeouts} timeouts, {self.degraded} "
                f"degraded")
        return ", ".join(parts)

    def record_faults(self, events: dict | None) -> None:
        """Fold a runner's fault-event counters into the stats."""
        if not events:
            return
        self.respawns += events.get("respawns", 0)
        self.retries += events.get("retries", 0)
        self.timeouts += events.get("timeouts", 0)
        self.degraded += events.get("degraded", 0)

    def as_dict(self) -> dict:
        """JSON-ready form (the benchmarks' ``--json`` emitters)."""
        data = dataclasses.asdict(self)
        data["overhead_seconds"] = self.overhead_seconds
        return data


@dataclasses.dataclass
class InferenceResult:
    """Output of a truth-inference run.

    Attributes
    ----------
    method:
        Registry name of the method that produced this result.
    truths:
        Array of length ``n_tasks``.  Integer label indices for
        categorical tasks, floats for numeric tasks.
    worker_quality:
        Array of length ``n_workers`` with each worker's scalar quality
        summary ``q^w``.  Methods with richer models (confusion matrices,
        bias/variance) expose the full parameters via ``extras`` and
        summarise them here (e.g. mean diagonal of the confusion matrix).
    posterior:
        Optional ``(n_tasks, n_choices)`` array of truth probabilities
        for categorical methods; ``None`` for numeric methods.
    n_iterations:
        Number of framework iterations executed (0 for direct methods).
    converged:
        Whether the parameter change dropped below the threshold before
        the iteration cap.
    elapsed_seconds:
        Wall-clock inference time (the "Time" column of Table 6).
    extras:
        Method-specific parameters, e.g. ``confusion`` matrices for D&S,
        ``task_difficulty`` for GLAD, ``bias``/``variance`` for Multi.
    fit_stats:
        Optional :class:`FitStats` telemetry of the EM loop (sharded-EM
        methods fill it; direct methods leave it ``None``).
    shard_state:
        Optional per-shard posterior/statistics cache emitted by a fit
        that was asked to collect one (the seed of the next *delta*
        refit — see :mod:`repro.inference.sharded`).  Internal to the
        engines; carries large arrays, excluded from ``repr``.
    """

    method: str
    truths: np.ndarray
    worker_quality: np.ndarray
    posterior: np.ndarray | None = None
    n_iterations: int = 0
    converged: bool = True
    elapsed_seconds: float = 0.0
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)
    fit_stats: FitStats | None = dataclasses.field(default=None, repr=False)
    shard_state: Any = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.truths = np.asarray(self.truths)
        self.worker_quality = np.asarray(self.worker_quality, dtype=np.float64)
        if self.posterior is not None:
            self.posterior = np.asarray(self.posterior, dtype=np.float64)

    @property
    def n_tasks(self) -> int:
        """Number of tasks the result covers."""
        return len(self.truths)

    @property
    def n_workers(self) -> int:
        """Number of workers the result covers."""
        return len(self.worker_quality)

    def truth_of(self, task: int):
        """The inferred truth of a single task."""
        return self.truths[task]

    def top_workers(self, k: int = 10) -> np.ndarray:
        """Indices of the ``k`` highest-quality workers, best first."""
        order = np.argsort(-self.worker_quality, kind="stable")
        return order[: min(k, len(order))]

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        state = "converged" if self.converged else "iteration cap"
        return (
            f"{self.method}: {self.n_tasks} tasks, {self.n_workers} workers, "
            f"{self.n_iterations} iterations ({state}), "
            f"{self.elapsed_seconds:.3f}s"
        )
