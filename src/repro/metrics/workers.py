"""Per-worker statistics behind Figures 2 and 3 of the paper.

* **Worker redundancy** (Figure 2) — number of tasks each worker
  answered; the paper observes a long-tail distribution.
* **Worker quality** (Figure 3) — each worker's accuracy against ground
  truth (categorical) or RMSE (numeric); the paper observes wide,
  dataset-dependent spreads.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.answers import AnswerSet


def worker_redundancy(answers: AnswerSet) -> np.ndarray:
    """Tasks answered per worker — the x-axis population of Figure 2."""
    return answers.worker_answer_counts()


def worker_accuracy(answers: AnswerSet, truth: np.ndarray,
                    truth_mask: np.ndarray | None = None) -> np.ndarray:
    """Per-worker accuracy against ground truth (Figure 3a–d).

    ``truth_mask`` marks tasks whose ground truth is known — some paper
    datasets (S_Rel, S_Adult) publish truth only for a subset, and
    worker accuracy is computed on that subset only.  Workers with no
    evaluable answers get NaN.
    """
    answers.require_categorical()
    truth = np.asarray(truth)
    evaluable = np.ones(answers.n_tasks, dtype=bool)
    if truth_mask is not None:
        evaluable = np.asarray(truth_mask, dtype=bool)

    edge_ok = evaluable[answers.tasks]
    correct = (answers.values.astype(np.int64) == truth[answers.tasks]) & edge_ok
    hits = np.bincount(answers.workers, weights=correct.astype(float),
                       minlength=answers.n_workers)
    totals = np.bincount(answers.workers, weights=edge_ok.astype(float),
                         minlength=answers.n_workers)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = hits / totals
    out[totals == 0] = np.nan
    return out


def worker_rmse(answers: AnswerSet, truth: np.ndarray) -> np.ndarray:
    """Per-worker RMSE against numeric ground truth (Figure 3e)."""
    answers.require_numeric()
    truth = np.asarray(truth, dtype=np.float64)
    errors = (answers.values - truth[answers.tasks]) ** 2
    sums = np.bincount(answers.workers, weights=errors,
                       minlength=answers.n_workers)
    counts = answers.worker_answer_counts().astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.sqrt(sums / counts)
    out[counts == 0] = np.nan
    return out


@dataclasses.dataclass
class Histogram:
    """A simple named histogram, serialisable into benchmark reports."""

    edges: np.ndarray
    counts: np.ndarray

    def rows(self) -> list[tuple[float, float, int]]:
        """(lo, hi, count) triples for printing."""
        return [
            (float(self.edges[k]), float(self.edges[k + 1]), int(self.counts[k]))
            for k in range(len(self.counts))
        ]


def histogram(values: np.ndarray, bins: int = 10,
              value_range: tuple[float, float] | None = None) -> Histogram:
    """Histogram of finite values; NaNs are dropped."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    return Histogram(edges=edges, counts=counts)


def redundancy_histogram(answers: AnswerSet, bins: int = 10) -> Histogram:
    """Figure 2 histogram for one dataset."""
    return histogram(worker_redundancy(answers).astype(float), bins=bins)


def quality_histogram(answers: AnswerSet, truth: np.ndarray,
                      truth_mask: np.ndarray | None = None,
                      bins: int = 10) -> Histogram:
    """Figure 3 histogram for one dataset (accuracy or RMSE)."""
    if answers.task_type.is_categorical:
        values = worker_accuracy(answers, truth, truth_mask)
        return histogram(values, bins=bins, value_range=(0.0, 1.0))
    return histogram(worker_rmse(answers, truth), bins=bins)


def long_tail_ratio(answers: AnswerSet, head_fraction: float = 0.2) -> float:
    """Share of all answers contributed by the most active workers.

    A value well above ``head_fraction`` confirms the long-tail shape
    the paper observes ("most workers answer a few tasks and only a few
    workers answer plenty of tasks").
    """
    counts = np.sort(worker_redundancy(answers))[::-1]
    total = counts.sum()
    if total == 0:
        return float("nan")
    head = max(1, int(np.ceil(head_fraction * len(counts))))
    return float(counts[:head].sum() / total)
