"""Data-consistency statistic C (paper Section 6.2.1).

Measures whether workers agree with each other, independently of any
ground truth:

* **Categorical** — average per-task entropy of the answer distribution,
  with log base ``l`` so C ∈ [0, 1]; lower = more consistent.  The paper
  reports C = 0.38, 0.85, 0.82, 0.39 for its four categorical datasets.
* **Numeric** — average per-task root-mean-square deviation from the
  task's median answer; C ∈ [0, ∞), lower = more consistent.  The paper
  reports C = 20.44 for N_Emotion.
"""

from __future__ import annotations

import numpy as np

from ..core.answers import AnswerSet


def categorical_consistency(answers: AnswerSet) -> float:
    """Average normalised answer entropy over tasks with answers."""
    answers.require_categorical()
    counts = answers.vote_counts()
    totals = counts.sum(axis=1)
    answered = totals > 0
    if not answered.any():
        return float("nan")
    fractions = counts[answered] / totals[answered][:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        log_terms = np.where(fractions > 0,
                             fractions * np.log(fractions), 0.0)
    entropy = -log_terms.sum(axis=1) / np.log(answers.n_choices)
    return float(entropy.mean())


def numeric_consistency(answers: AnswerSet) -> float:
    """Average RMS deviation from the per-task median answer."""
    answers.require_numeric()
    deviations = []
    for task in range(answers.n_tasks):
        idx = answers.answers_of_task(task)
        if len(idx) == 0:
            continue
        values = answers.values[idx]
        median = np.median(values)
        deviations.append(np.sqrt(np.mean((values - median) ** 2)))
    if not deviations:
        return float("nan")
    return float(np.mean(deviations))


def consistency(answers: AnswerSet) -> float:
    """Dispatch to the categorical or numeric definition of C."""
    if answers.task_type.is_categorical:
        return categorical_consistency(answers)
    return numeric_consistency(answers)
