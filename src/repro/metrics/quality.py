"""Evaluation metrics from Section 6.1.2 of the paper.

* **Accuracy** (Equation 3) — fraction of tasks whose truth is inferred
  correctly; used for decision-making and single-choice tasks.
* **F1-score** (Equation 4) — harmonic mean of precision and recall on
  the positive ('T') class; the paper's preferred metric for imbalanced
  entity-resolution data (D_Product).
* **MAE / RMSE** (Equation 5) — numeric-task errors; RMSE penalises
  large errors more.

All functions accept an optional ``mask`` restricting evaluation to a
subset of tasks — the hidden-test experiments evaluate only on the
non-golden tasks ``T − T'``.
"""

from __future__ import annotations

import numpy as np

from ..core.tasktypes import LABEL_TRUE


def _prepare(truth: np.ndarray, inferred: np.ndarray,
             mask: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth)
    inferred = np.asarray(inferred)
    if truth.shape != inferred.shape:
        raise ValueError(
            f"shape mismatch: truth {truth.shape} vs inferred {inferred.shape}"
        )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        truth = truth[mask]
        inferred = inferred[mask]
    return truth, inferred


def accuracy(truth: np.ndarray, inferred: np.ndarray,
             mask: np.ndarray | None = None) -> float:
    """Fraction of correctly inferred truths (paper Equation 3)."""
    truth, inferred = _prepare(truth, inferred, mask)
    if len(truth) == 0:
        return float("nan")
    return float(np.mean(truth == inferred))


def f1_score(truth: np.ndarray, inferred: np.ndarray,
             positive_label: int = LABEL_TRUE,
             mask: np.ndarray | None = None) -> float:
    """F1 on the positive class (paper Equation 4).

    Follows the paper's formulation ``2 Σ 1{v*=T} 1{v̂*=T} /
    Σ (1{v*=T} + 1{v̂*=T})``; returns 0 when neither the truth nor the
    prediction contains any positive, matching the convention the paper
    applies to BCC at redundancy 1 ("the F1-score is 0").
    """
    truth, inferred = _prepare(truth, inferred, mask)
    actual = truth == positive_label
    predicted = inferred == positive_label
    denominator = int(actual.sum()) + int(predicted.sum())
    if denominator == 0:
        return 0.0
    return float(2.0 * np.sum(actual & predicted) / denominator)


def precision_recall(truth: np.ndarray, inferred: np.ndarray,
                     positive_label: int = LABEL_TRUE,
                     mask: np.ndarray | None = None) -> tuple[float, float]:
    """(precision, recall) on the positive class; NaN when undefined."""
    truth, inferred = _prepare(truth, inferred, mask)
    actual = truth == positive_label
    predicted = inferred == positive_label
    true_positive = float(np.sum(actual & predicted))
    precision = true_positive / predicted.sum() if predicted.sum() else float("nan")
    recall = true_positive / actual.sum() if actual.sum() else float("nan")
    return precision, recall


def mae(truth: np.ndarray, inferred: np.ndarray,
        mask: np.ndarray | None = None) -> float:
    """Mean absolute error (paper Equation 5, left)."""
    truth, inferred = _prepare(truth, inferred, mask)
    if len(truth) == 0:
        return float("nan")
    return float(np.mean(np.abs(truth.astype(float) - inferred.astype(float))))


def rmse(truth: np.ndarray, inferred: np.ndarray,
         mask: np.ndarray | None = None) -> float:
    """Root mean squared error (paper Equation 5, right)."""
    truth, inferred = _prepare(truth, inferred, mask)
    if len(truth) == 0:
        return float("nan")
    return float(np.sqrt(np.mean((truth.astype(float) - inferred.astype(float)) ** 2)))


def evaluate(task_type, truth: np.ndarray, inferred: np.ndarray,
             mask: np.ndarray | None = None) -> dict[str, float]:
    """All metrics appropriate for a task type, keyed by metric name.

    Decision-making: accuracy + f1.  Single-choice: accuracy.  Numeric:
    mae + rmse.  This mirrors exactly which columns each dataset
    contributes to Table 6.
    """
    from ..core.tasktypes import TaskType

    if task_type is TaskType.DECISION_MAKING:
        return {
            "accuracy": accuracy(truth, inferred, mask),
            "f1": f1_score(truth, inferred, mask=mask),
        }
    if task_type is TaskType.SINGLE_CHOICE:
        return {"accuracy": accuracy(truth, inferred, mask)}
    return {
        "mae": mae(truth, inferred, mask),
        "rmse": rmse(truth, inferred, mask),
    }
