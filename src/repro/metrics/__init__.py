"""Evaluation metrics and crowd-data statistics (paper Sections 6.1–6.2)."""

from .agreement import cohen_kappa, fleiss_kappa, pairwise_agreement_matrix
from .consistency import categorical_consistency, consistency, numeric_consistency
from .quality import accuracy, evaluate, f1_score, mae, precision_recall, rmse
from .workers import (
    Histogram,
    histogram,
    long_tail_ratio,
    quality_histogram,
    redundancy_histogram,
    worker_accuracy,
    worker_redundancy,
    worker_rmse,
)

__all__ = [
    "Histogram",
    "accuracy",
    "categorical_consistency",
    "cohen_kappa",
    "fleiss_kappa",
    "pairwise_agreement_matrix",
    "consistency",
    "evaluate",
    "f1_score",
    "histogram",
    "long_tail_ratio",
    "mae",
    "numeric_consistency",
    "precision_recall",
    "quality_histogram",
    "redundancy_histogram",
    "rmse",
    "worker_accuracy",
    "worker_redundancy",
    "worker_rmse",
]
