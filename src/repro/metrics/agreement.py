"""Inter-worker agreement statistics.

Complements the paper's consistency statistic C (Section 6.2.1) with
the standard chance-corrected agreement coefficients used throughout
the crowdsourcing literature:

* :func:`fleiss_kappa` — chance-corrected agreement over all tasks with
  at least two answers (the dataset-level "are workers answering the
  same thing?" number);
* :func:`cohen_kappa` — pairwise chance-corrected agreement between two
  workers on their shared tasks;
* :func:`pairwise_agreement_matrix` — raw co-answer agreement between
  every worker pair, the input to clique/community analyses (CBCC's
  communities are visible in this matrix).
"""

from __future__ import annotations

import numpy as np

from ..core.answers import AnswerSet


def fleiss_kappa(answers: AnswerSet) -> float:
    """Fleiss' kappa over the tasks with >= 2 answers.

    Returns NaN when no task has two answers or when agreement is
    degenerate (all answers identical everywhere gives P_e = 1).
    """
    answers.require_categorical()
    counts = answers.vote_counts()
    totals = counts.sum(axis=1)
    usable = totals >= 2
    if not usable.any():
        return float("nan")
    counts = counts[usable]
    totals = totals[usable]

    # Per-task observed agreement, normalised for varying redundancy.
    pairs = (counts * (counts - 1)).sum(axis=1)
    possible = totals * (totals - 1)
    p_observed = float((pairs / possible).mean())

    # Chance agreement from the marginal label distribution.
    marginals = counts.sum(axis=0) / counts.sum()
    p_expected = float((marginals**2).sum())
    if np.isclose(p_expected, 1.0):
        return float("nan")
    return (p_observed - p_expected) / (1.0 - p_expected)


def cohen_kappa(answers: AnswerSet, worker_a: int, worker_b: int) -> float:
    """Cohen's kappa between two workers on their shared tasks.

    NaN when the workers share fewer than two tasks or when the chance
    agreement is degenerate.
    """
    answers.require_categorical()
    idx_a = answers.answers_of_worker(worker_a)
    idx_b = answers.answers_of_worker(worker_b)
    map_a = dict(zip(answers.tasks[idx_a].tolist(),
                     answers.values[idx_a].tolist()))
    map_b = dict(zip(answers.tasks[idx_b].tolist(),
                     answers.values[idx_b].tolist()))
    shared = sorted(set(map_a) & set(map_b))
    if len(shared) < 2:
        return float("nan")

    a = np.array([map_a[t] for t in shared])
    b = np.array([map_b[t] for t in shared])
    p_observed = float(np.mean(a == b))
    p_expected = 0.0
    for label in range(answers.n_choices):
        p_expected += float(np.mean(a == label)) * float(np.mean(b == label))
    if np.isclose(p_expected, 1.0):
        return float("nan")
    return (p_observed - p_expected) / (1.0 - p_expected)


def pairwise_agreement_matrix(answers: AnswerSet,
                              min_shared: int = 1) -> np.ndarray:
    """Raw agreement rate between every worker pair on shared tasks.

    Entry ``[a, b]`` is the fraction of tasks answered by both where
    the answers coincide; NaN where fewer than ``min_shared`` tasks are
    shared.  Diagonal entries are 1 (a worker agrees with themselves).
    """
    answers.require_categorical()
    n_workers = answers.n_workers
    # task -> {worker: answer} lookup built once.
    per_task: list[dict[int, int]] = [dict() for _ in range(answers.n_tasks)]
    for task, worker, value in zip(answers.tasks, answers.workers,
                                   answers.values):
        per_task[task][int(worker)] = int(value)

    agree = np.zeros((n_workers, n_workers))
    shared = np.zeros((n_workers, n_workers))
    for lookup in per_task:
        members = sorted(lookup)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                shared[a, b] += 1
                if lookup[a] == lookup[b]:
                    agree[a, b] += 1

    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = agree / shared
    matrix[shared < min_shared] = np.nan
    matrix = np.where(np.isnan(matrix) & ~np.isnan(matrix.T),
                      matrix.T, matrix)
    lower = np.tril_indices(n_workers, k=-1)
    matrix[lower] = matrix.T[lower]
    np.fill_diagonal(matrix, 1.0)
    return matrix
