"""Qualification-test experiment: Table 7 (Section 6.3.2).

Protocol from the paper:

1. simulate each worker's answers for a 20-task qualification test via
   **bootstrap sampling** from their real answers ("sample with
   replacement to sample 20 times ... then we assume the 20 tasks'
   truth are known");
2. initialise the worker's quality from their accuracy on those 20;
3. run each method with that initialisation and report the quality
   change Δ = c̃ − c against the uninitialised baseline.

Only the 8 methods flagged ``supports_initial_quality`` participate,
matching the paper's "there are only 8 methods that can initialize
workers' qualities using qualification test".
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from ..core.registry import create, methods_for_task_type
from ..datasets.schema import Dataset
from .runner import average_scores, repeat_with_seeds, run_method

#: The 8 methods of Table 7.
QUALIFICATION_METHODS = ("ZC", "GLAD", "D&S", "LFC", "CATD", "PM",
                         "VI-MF", "LFC_N")


def bootstrap_initial_quality(dataset: Dataset, n_golden: int,
                              rng: np.random.Generator) -> np.ndarray:
    """Per-worker initial quality from bootstrap-sampled golden answers.

    For each worker, draw ``n_golden`` of their answers with replacement
    and score them against the tasks' ground truth (treated as known
    golden labels).  Categorical: fraction correct.  Numeric: an RMSE
    mapped into [0, 1] against the answer spread.
    """
    answers = dataset.answers
    quality = np.full(answers.n_workers, 0.5)
    categorical = dataset.task_type.is_categorical
    spread = float(np.std(answers.values)) or 1.0
    for worker in range(answers.n_workers):
        idx = answers.answers_of_worker(worker)
        if len(idx) == 0:
            continue
        sampled = rng.choice(idx, size=n_golden, replace=True)
        given = answers.values[sampled]
        truth = dataset.truth[answers.tasks[sampled]]
        if categorical:
            quality[worker] = float(np.mean(given == truth))
        else:
            error = float(np.sqrt(np.mean((given - truth) ** 2)))
            quality[worker] = float(np.clip(1.0 - error / (2 * spread),
                                            0.0, 1.0))
    return quality


@dataclasses.dataclass
class QualificationOutcome:
    """Table 7 cell: quality with the test, and the benefit Δ."""

    method: str
    dataset: str
    baseline: dict[str, float]
    with_test: dict[str, float]

    @property
    def delta(self) -> dict[str, float]:
        return {metric: self.with_test[metric] - self.baseline[metric]
                for metric in self.baseline}


def qualification_experiment(
    dataset: Dataset,
    methods: Iterable[str] | None = None,
    n_golden: int = 20,
    n_repeats: int = 5,
    base_seed: int = 0,
) -> list[QualificationOutcome]:
    """Run Table 7 for one dataset.

    The paper repeats 100 times; ``n_repeats`` is configurable for
    benchmark wall-clock.
    """
    applicable = set(methods_for_task_type(dataset.task_type))
    names = [m for m in (methods or QUALIFICATION_METHODS)
             if m in applicable and create(m).supports_initial_quality]

    outcomes = []
    for name in names:
        baseline = run_method(name, dataset, seed=base_seed).scores

        def one_repeat(seed: int, name=name) -> dict[str, float]:
            rng = np.random.default_rng(seed)
            initial = bootstrap_initial_quality(dataset, n_golden, rng)
            return run_method(name, dataset, seed=seed,
                              initial_quality=initial).scores

        repeats = repeat_with_seeds(one_repeat, n_repeats, base_seed)
        averaged = average_scores([
            _as_run(name, dataset.name, scores) for scores in repeats
        ])
        outcomes.append(QualificationOutcome(
            method=name, dataset=dataset.name,
            baseline=baseline, with_test=averaged,
        ))
    return outcomes


def _as_run(method: str, dataset: str, scores: dict[str, float]):
    from .runner import MethodRun

    return MethodRun(method=method, dataset=dataset, scores=scores,
                     elapsed_seconds=0.0, n_iterations=0, converged=True)
