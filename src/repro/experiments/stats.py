"""Dataset-statistics experiments: Table 5, Figures 2–3, Section 6.2.

These characterise the crowd data itself, before any inference:
per-dataset size statistics, answer consistency C, worker-redundancy
histograms (long tail) and worker-quality histograms.
"""

from __future__ import annotations

from typing import Mapping

from ..datasets.schema import Dataset
from ..metrics.consistency import consistency
from ..metrics.workers import (
    Histogram,
    long_tail_ratio,
    quality_histogram,
    redundancy_histogram,
)


def table5(datasets: Mapping[str, Dataset]) -> list[dict]:
    """Table 5 rows plus the Section 6.2.1 consistency column."""
    rows = []
    for dataset in datasets.values():
        row = dataset.statistics()
        row["consistency_C"] = round(consistency(dataset.answers), 2)
        rows.append(row)
    return rows


def figure2(datasets: Mapping[str, Dataset], bins: int = 10
            ) -> dict[str, Histogram]:
    """Worker-redundancy histogram per dataset (Figure 2)."""
    return {name: redundancy_histogram(ds.answers, bins=bins)
            for name, ds in datasets.items()}


def figure2_tail_shares(datasets: Mapping[str, Dataset],
                        head_fraction: float = 0.2) -> dict[str, float]:
    """Long-tail summary: answer share of the busiest 20% of workers."""
    return {name: long_tail_ratio(ds.answers, head_fraction)
            for name, ds in datasets.items()}


def figure3(datasets: Mapping[str, Dataset], bins: int = 10
            ) -> dict[str, Histogram]:
    """Worker-quality histogram per dataset (Figure 3).

    Categorical datasets use per-worker accuracy against ground truth;
    the numeric dataset uses per-worker RMSE, exactly as the paper's
    Figure 3(e).
    """
    out = {}
    for name, dataset in datasets.items():
        out[name] = quality_histogram(
            dataset.answers, dataset.truth,
            truth_mask=dataset.truth_mask, bins=bins,
        )
    return out
