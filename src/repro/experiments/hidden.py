"""Hidden-test experiment: Figures 7, 8 and 9 (Section 6.3.3).

Protocol from the paper: "we randomly select p% in the task set T as the
golden tasks (T').  Then we take T' and workers' answers V as the input
to different methods, and further test different methods' quality by
comparing the inferred truth of T − T' with their ground truth.  We vary
p ∈ [0, 50]."

Only the 9 methods flagged ``supports_golden`` participate ("there are 9
methods that can be easily extended to incorporate the golden tasks").
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from ..core.registry import create, methods_for_task_type
from ..datasets.schema import Dataset
from .runner import average_scores, repeat_with_seeds, run_method

#: The 9 methods of Section 6.3.3.
HIDDEN_TEST_METHODS = ("ZC", "GLAD", "D&S", "Minimax", "LFC", "CATD",
                       "PM", "VI-MF", "LFC_N")


def sample_golden(dataset: Dataset, percentage: float,
                  rng: np.random.Generator) -> dict[int, float]:
    """Pick p% of the *evaluable* tasks as golden, with their truths.

    Golden tasks are drawn from tasks whose truth is known (you cannot
    plant a golden task you have no label for), which also guarantees
    the evaluation set T − T' stays non-empty for p ≤ 50.
    """
    if not 0.0 <= percentage <= 100.0:
        raise ValueError(f"percentage must be in [0, 100], got {percentage}")
    candidates = np.nonzero(dataset.evaluation_mask())[0]
    n_golden = int(round(len(candidates) * percentage / 100.0))
    chosen = rng.choice(candidates, size=n_golden, replace=False)
    return {int(t): dataset.truth[t] for t in chosen}


@dataclasses.dataclass
class HiddenTestSweep:
    """Metric series per method over the golden-percentage axis."""

    dataset: str
    percentages: list[float]
    series: dict[str, dict[str, list[float]]]

    def series_for(self, metric: str) -> dict[str, list[float]]:
        return self.series[metric]


def hidden_test_experiment(
    dataset: Dataset,
    percentages: Sequence[float] = (0, 10, 20, 30, 40, 50),
    methods: Iterable[str] | None = None,
    n_repeats: int = 5,
    base_seed: int = 0,
) -> HiddenTestSweep:
    """Run the hidden-test sweep for one dataset."""
    applicable = set(methods_for_task_type(dataset.task_type))
    names = [m for m in (methods or HIDDEN_TEST_METHODS)
             if m in applicable and create(m).supports_golden]

    metric_names: list[str] | None = None
    series: dict[str, dict[str, list[float]]] = {}
    for p in percentages:
        def one_repeat(seed: int, p=p) -> dict[str, dict[str, float]]:
            rng = np.random.default_rng(seed)
            golden = sample_golden(dataset, p, rng)
            return {
                name: run_method(name, dataset, seed=seed,
                                 golden=golden).scores
                for name in names
            }

        repeats = repeat_with_seeds(one_repeat, n_repeats, base_seed)
        for name in names:
            averaged = average_scores([
                _as_run(name, dataset.name, rep[name]) for rep in repeats
            ])
            if metric_names is None:
                metric_names = list(averaged)
                for metric in metric_names:
                    series[metric] = {m: [] for m in names}
            for metric, value in averaged.items():
                series[metric][name].append(value)

    return HiddenTestSweep(
        dataset=dataset.name,
        percentages=[float(p) for p in percentages],
        series=series,
    )


def _as_run(method: str, dataset: str, scores: dict[str, float]):
    from .runner import MethodRun

    return MethodRun(method=method, dataset=dataset, scores=scores,
                     elapsed_seconds=0.0, n_iterations=0, converged=True)
