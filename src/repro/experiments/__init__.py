"""Experiment harness reproducing every table and figure of Section 6."""

from .comparison import TABLE6_ORDER, table6, table6_rows
from .hidden import (
    HIDDEN_TEST_METHODS,
    HiddenTestSweep,
    hidden_test_experiment,
    sample_golden,
)
from .qualification import (
    QUALIFICATION_METHODS,
    QualificationOutcome,
    bootstrap_initial_quality,
    qualification_experiment,
)
from .redundancy import RedundancySweep, sweep_redundancy
from .reporting import format_series, format_table, percentage
from .runner import (
    MethodRun,
    average_scores,
    repeat_with_seeds,
    run_grid,
    run_many,
    run_method,
)
from .stats import figure2, figure2_tail_shares, figure3, table5

__all__ = [
    "HIDDEN_TEST_METHODS",
    "HiddenTestSweep",
    "MethodRun",
    "QUALIFICATION_METHODS",
    "QualificationOutcome",
    "RedundancySweep",
    "TABLE6_ORDER",
    "average_scores",
    "bootstrap_initial_quality",
    "figure2",
    "figure2_tail_shares",
    "figure3",
    "format_series",
    "format_table",
    "hidden_test_experiment",
    "percentage",
    "qualification_experiment",
    "repeat_with_seeds",
    "run_grid",
    "run_many",
    "run_method",
    "sample_golden",
    "sweep_redundancy",
    "table5",
    "table6",
    "table6_rows",
]
