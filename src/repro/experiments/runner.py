"""Common experiment-running utilities.

Every experiment in Section 6 repeats the same pattern: build methods,
run them on (possibly transformed) answer sets, score against ground
truth, repeat over seeds, average.  This module centralises that loop so
the per-figure modules only express *what varies*.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Mapping

import numpy as np

from ..core.policy import ExecutionPolicy, MethodSpec, warn_legacy
from ..core.registry import capabilities, create, methods_for_task_type
from ..datasets.schema import Dataset

_UNSET = object()


@dataclasses.dataclass
class MethodRun:
    """One method × dataset execution: scores plus timing."""

    method: str
    dataset: str
    scores: dict[str, float]
    elapsed_seconds: float
    n_iterations: int
    converged: bool


def _coerce_legacy_executor(surface: str, executor):
    """Map the legacy job-pool ``executor=`` kwarg to a pool factory
    (warning once); None when the kwarg was not passed."""
    if executor is _UNSET or executor is None:
        return None
    from ..engine.batch import _EXECUTORS

    if executor not in _EXECUTORS:
        raise ValueError(
            f"executor must be one of {sorted(_EXECUTORS)}, "
            f"got {executor!r}"
        )
    warn_legacy(surface, ["executor"],
                "BatchRunner(executor_factory=...)")
    return _EXECUTORS[executor]


def _coerce_legacy_policy(surface: str, policy: ExecutionPolicy | None,
                          n_shards, shard_workers, shard_executor,
                          ) -> ExecutionPolicy | None:
    """Fold the legacy sharding kwargs into a policy, warning once."""
    legacy = {
        name: value
        for name, value in (("n_shards", n_shards),
                            ("shard_workers", shard_workers),
                            ("shard_executor", shard_executor))
        if value is not _UNSET and value is not None
    }
    if not legacy:
        return policy
    warn_legacy(surface, legacy, "policy=ExecutionPolicy(...)")
    if policy is not None:
        raise ValueError(
            "pass either policy= or the legacy sharding kwargs, not both"
        )
    return ExecutionPolicy.from_legacy(
        n_shards=legacy.get("n_shards"),
        shard_workers=legacy.get("shard_workers"),
        shard_executor=legacy.get("shard_executor"),
    )


def run_method(
    method: str | MethodSpec,
    dataset: Dataset,
    seed: int = 0,
    golden: Mapping[int, float] | None = None,
    initial_quality: np.ndarray | None = None,
    seed_posterior: np.ndarray | None = None,
    policy: ExecutionPolicy | None = None,
    method_kwargs=_UNSET,
    n_shards=_UNSET,
    shard_workers=_UNSET,
    shard_executor=_UNSET,
) -> MethodRun:
    """Run one method on one dataset and score it.

    ``method`` is a registry name or a
    :class:`~repro.core.policy.MethodSpec` carrying construction
    kwargs.  With ``golden`` supplied, scoring excludes the golden
    tasks (hidden-test protocol: evaluate on ``T − T'``).
    ``seed_posterior`` forwards a shared majority-vote posterior to
    methods that accept one.  ``policy`` decides how the fit executes:
    sharded EM for methods that support it (ignored for the rest, so
    grids can set one globally), and its process tier leases a
    persistent :class:`~repro.engine.runtime.ShardRuntime` from the
    shared registry — repeated calls on the same ``dataset.answers``
    (a method sweep) reuse the warm pools and placed segments.

    The legacy ``method_kwargs=`` / ``n_shards=`` / ``shard_workers=``
    / ``shard_executor=`` spellings still work and warn once.
    """
    if method_kwargs is not _UNSET and method_kwargs is not None:
        warn_legacy("run_method", ["method_kwargs"],
                    "MethodSpec(name, **kwargs)")
        method = MethodSpec.coerce(method, method_kwargs)
    policy = _coerce_legacy_policy("run_method", policy, n_shards,
                                   shard_workers, shard_executor)
    spec = MethodSpec.coerce(method).with_defaults(seed=seed)
    caps = capabilities(spec.name)
    plan = None
    if policy is not None and caps.sharding:
        # A shard count spelled in the spec's own kwargs wins over the
        # grid-level policy, matching the historical method_kwargs
        # precedence (and what lets a runner-level executor choice
        # combine with per-job shard counts).
        spec_shards = spec.kwargs.get("n_shards")
        if spec_shards is not None:
            policy = dataclasses.replace(policy, n_shards=spec_shards)
        plan = policy.resolve(dataset.answers)
    instance = create(spec)
    # fit(policy=...) owns the tier dispatch (in-process runners,
    # persistent-runtime leases); an unsharded plan means the plain fit.
    result = instance.fit(dataset.answers, golden=golden,
                          initial_quality=initial_quality,
                          seed_posterior=seed_posterior,
                          policy=plan if plan is not None
                          and plan.sharded else None)
    exclude = set(int(t) for t in golden) if golden else None
    scores = dataset.score(result, exclude=exclude)
    return MethodRun(
        method=spec.name,
        dataset=dataset.name,
        scores=scores,
        elapsed_seconds=result.elapsed_seconds,
        n_iterations=result.n_iterations,
        converged=result.converged,
    )


def run_many(
    dataset: Dataset,
    methods: Iterable[str | MethodSpec] | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    policy: ExecutionPolicy | None = None,
    n_shards=_UNSET,
    executor=_UNSET,
    shard_executor=_UNSET,
    method_names=_UNSET,
    **kwargs,
) -> list[MethodRun]:
    """Run several methods (default: all applicable) on one dataset.

    With ``max_workers`` set, the fits fan out across the engine's
    :class:`~repro.engine.batch.BatchRunner` pool instead of running
    serially; results keep method order either way.  ``policy`` decides
    how each fit executes — sharded EM for the methods that support it,
    and its process tier runs those fits on the shared persistent
    runtime (one pool spawn + data placement for the whole sweep).

    The legacy ``n_shards=`` / ``executor=`` (job-pool type) /
    ``shard_executor=`` spellings still work and warn once.
    """
    executor_factory = _coerce_legacy_executor("run_many", executor)
    policy = _coerce_legacy_policy("run_many", policy, n_shards,
                                   _UNSET, shard_executor)
    if method_names is not _UNSET:
        warn_legacy("run_many", ["method_names"], "methods=")
        if methods is None:
            methods = method_names
    if methods is None:
        methods = methods_for_task_type(dataset.task_type)
    method_kwargs = kwargs.pop("method_kwargs", None)
    if method_kwargs:
        warn_legacy("run_many", ["method_kwargs"],
                    "MethodSpec(name, **kwargs)")
    # Materialise up front: the capability scans below iterate the
    # names before the run loop does, which would drain a generator.
    specs = [MethodSpec.coerce(m, method_kwargs) for m in methods]
    if max_workers is not None:
        from ..engine.batch import BatchJob, BatchRunner
        from concurrent.futures import ThreadPoolExecutor

        jobs = [
            BatchJob(dataset=dataset, method=spec, seed=seed,
                     policy=policy, **kwargs)
            for spec in specs
        ]
        return BatchRunner(
            max_workers=max_workers,
            executor_factory=executor_factory or ThreadPoolExecutor,
        ).run(jobs)
    # Serial path: still share one majority-vote posterior per dataset
    # across every method that can start from it.
    seed_posterior = None
    if dataset.task_type.is_categorical and any(
            capabilities(spec.name).seed_posterior for spec in specs):
        from ..core.framework import normalize_rows

        seed_posterior = normalize_rows(dataset.answers.vote_counts())
    return [run_method(spec, dataset, seed=seed, policy=policy,
                       seed_posterior=seed_posterior, **kwargs)
            for spec in specs]


def run_grid(
    datasets: Iterable[Dataset],
    methods: Iterable[str] | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    policy: ExecutionPolicy | None = None,
    n_shards=_UNSET,
    executor=_UNSET,
    shard_executor=_UNSET,
) -> list[MethodRun]:
    """Cross datasets with applicable methods, optionally in parallel.

    Thin wrapper over :meth:`repro.engine.batch.BatchRunner.run_grid`
    so the comparison experiments can fan out without importing the
    engine package directly.  ``policy`` configures each fit's
    execution; the legacy ``n_shards=`` / ``executor=`` /
    ``shard_executor=`` spellings still work and warn once.
    """
    from concurrent.futures import ThreadPoolExecutor

    from ..engine.batch import BatchRunner

    executor_factory = _coerce_legacy_executor("run_grid", executor)
    policy = _coerce_legacy_policy("run_grid", policy, n_shards,
                                   _UNSET, shard_executor)
    return BatchRunner(
        max_workers=max_workers or 1,
        executor_factory=executor_factory or ThreadPoolExecutor,
        policy=policy,
    ).run_grid(datasets, methods=methods, seed=seed)


def average_scores(runs: list[MethodRun]) -> dict[str, float]:
    """Average each metric over repeated runs of the same method."""
    if not runs:
        return {}
    keys = runs[0].scores.keys()
    return {key: float(np.mean([run.scores[key] for run in runs]))
            for key in keys}


def repeat_with_seeds(
    build_and_run,
    n_repeats: int,
    base_seed: int = 0,
) -> list:
    """Call ``build_and_run(seed)`` for ``n_repeats`` derived seeds.

    The paper repeats its subsampling experiments 30 (redundancy) or 100
    (qualification / hidden test) times; the benchmarks use smaller
    counts, configurable per call.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    seeds = np.random.SeedSequence(base_seed).spawn(n_repeats)
    return [build_and_run(int(s.generate_state(1)[0] % (2**31)))
            for s in seeds]


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "Timer":
        self.started = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.started
