"""Common experiment-running utilities.

Every experiment in Section 6 repeats the same pattern: build methods,
run them on (possibly transformed) answer sets, score against ground
truth, repeat over seeds, average.  This module centralises that loop so
the per-figure modules only express *what varies*.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Iterable, Mapping

import numpy as np

from ..core.registry import create, method_class, methods_for_task_type
from ..datasets.schema import Dataset


@dataclasses.dataclass
class MethodRun:
    """One method × dataset execution: scores plus timing."""

    method: str
    dataset: str
    scores: dict[str, float]
    elapsed_seconds: float
    n_iterations: int
    converged: bool


def run_method(
    method_name: str,
    dataset: Dataset,
    seed: int = 0,
    golden: Mapping[int, float] | None = None,
    initial_quality: np.ndarray | None = None,
    method_kwargs: dict | None = None,
    seed_posterior: np.ndarray | None = None,
    n_shards: int | None = None,
    shard_workers: int | None = None,
    shard_executor: str | None = None,
) -> MethodRun:
    """Run one method on one dataset and score it.

    With ``golden`` supplied, scoring excludes the golden tasks
    (hidden-test protocol: evaluate on ``T − T'``).  ``seed_posterior``
    forwards a shared majority-vote posterior to methods that accept
    one; ``n_shards``/``shard_workers`` turn on sharded EM for methods
    that support it (ignored for the rest, so grids can set them
    globally).  ``shard_executor="process"`` runs the sharded fit on a
    persistent :class:`~repro.engine.runtime.ShardRuntime` leased from
    the shared registry: repeated calls on the same ``dataset.answers``
    (a method sweep) reuse the warm pools and placed segments.
    """
    supports_sharding = getattr(
        method_class(method_name), "supports_sharding", False)
    kwargs = dict(method_kwargs or {})
    if n_shards and n_shards > 1 and supports_sharding:
        kwargs.setdefault("n_shards", n_shards)
        if shard_workers:
            kwargs.setdefault("shard_workers", shard_workers)
    effective_shards = kwargs.get("n_shards", 0)
    method = create(method_name, seed=seed, **kwargs)
    runner_cm = contextlib.nullcontext(None)
    if (shard_executor == "process" and supports_sharding
            and effective_shards > 1):
        from ..engine.runtime import get_runtime_registry

        _, runner_cm = get_runtime_registry().lease(
            effective_shards,
            kwargs.get("shard_workers") or shard_workers or None,
            dataset.answers, method_name, {"seed": seed, **kwargs})
    with runner_cm as shard_runner:
        result = method.fit(dataset.answers, golden=golden,
                            initial_quality=initial_quality,
                            seed_posterior=seed_posterior,
                            shard_runner=shard_runner)
    exclude = set(int(t) for t in golden) if golden else None
    scores = dataset.score(result, exclude=exclude)
    return MethodRun(
        method=method_name,
        dataset=dataset.name,
        scores=scores,
        elapsed_seconds=result.elapsed_seconds,
        n_iterations=result.n_iterations,
        converged=result.converged,
    )


def run_many(
    dataset: Dataset,
    method_names: Iterable[str] | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    n_shards: int | None = None,
    executor: str | None = None,
    shard_executor: str | None = None,
    **kwargs,
) -> list[MethodRun]:
    """Run several methods (default: all applicable) on one dataset.

    With ``max_workers`` set, the fits fan out across the engine's
    :class:`~repro.engine.batch.BatchRunner` pool (threads by default,
    ``executor="process"`` for a process pool) instead of running
    serially; results keep method order either way.  ``n_shards`` turns
    on sharded EM for the methods that support it, and
    ``shard_executor="process"`` runs those fits on the shared
    persistent runtime (one pool spawn + data placement for the whole
    sweep).
    """
    if method_names is None:
        method_names = methods_for_task_type(dataset.task_type)
    # Materialise up front: the capability scans below iterate the
    # names before the run loop does, which would drain a generator.
    method_names = list(method_names)
    if max_workers is not None:
        from ..engine.batch import BatchJob, BatchRunner, _sharding_kwargs

        method_kwargs = kwargs.pop("method_kwargs", None) or {}
        # Caller-supplied method_kwargs win over the grid-level default,
        # matching run_method's setdefault on the serial path.
        jobs = [
            BatchJob(dataset=dataset, method=name, seed=seed,
                     method_kwargs={**(_sharding_kwargs(name, n_shards)
                                       or {}),
                                    **method_kwargs},
                     **kwargs)
            for name in method_names
        ]
        return BatchRunner(max_workers=max_workers, executor=executor,
                           shard_executor=shard_executor).run(jobs)
    # Serial path: still share one majority-vote posterior per dataset
    # across every method that can start from it.
    seed_posterior = None
    if dataset.task_type.is_categorical and any(
            getattr(method_class(name), "supports_seed_posterior", False)
            for name in method_names):
        from ..core.framework import normalize_rows

        seed_posterior = normalize_rows(dataset.answers.vote_counts())
    return [run_method(name, dataset, seed=seed, n_shards=n_shards,
                       seed_posterior=seed_posterior,
                       shard_executor=shard_executor, **kwargs)
            for name in method_names]


def run_grid(
    datasets: Iterable[Dataset],
    methods: Iterable[str] | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    n_shards: int | None = None,
    executor: str | None = None,
    shard_executor: str | None = None,
) -> list[MethodRun]:
    """Cross datasets with applicable methods, optionally in parallel.

    Thin wrapper over :meth:`repro.engine.batch.BatchRunner.run_grid`
    so the comparison experiments can fan out without importing the
    engine package directly.
    """
    from ..engine.batch import BatchRunner

    return BatchRunner(max_workers=max_workers or 1, executor=executor,
                       shard_executor=shard_executor).run_grid(
        datasets, methods=methods, seed=seed, n_shards=n_shards
    )


def average_scores(runs: list[MethodRun]) -> dict[str, float]:
    """Average each metric over repeated runs of the same method."""
    if not runs:
        return {}
    keys = runs[0].scores.keys()
    return {key: float(np.mean([run.scores[key] for run in runs]))
            for key in keys}


def repeat_with_seeds(
    build_and_run,
    n_repeats: int,
    base_seed: int = 0,
) -> list:
    """Call ``build_and_run(seed)`` for ``n_repeats`` derived seeds.

    The paper repeats its subsampling experiments 30 (redundancy) or 100
    (qualification / hidden test) times; the benchmarks use smaller
    counts, configurable per call.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    seeds = np.random.SeedSequence(base_seed).spawn(n_repeats)
    return [build_and_run(int(s.generate_state(1)[0] % (2**31)))
            for s in seeds]


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "Timer":
        self.started = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.started
